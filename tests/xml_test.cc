// XML DOM, parser and serializer tests.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xprel::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto doc = ParseXml("<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().size(), 1);
  EXPECT_EQ(doc.value().node(1).name, "a");
  EXPECT_EQ(doc.value().node(1).depth, 1);
}

TEST(XmlParserTest, NestedStructureAndIds) {
  // Ids are preorder positions, like paper Figure 1(b).
  auto doc = ParseXml("<A><B><C/><C/></B><B/></A>").value();
  EXPECT_EQ(doc.size(), 5);
  EXPECT_EQ(doc.node(1).name, "A");
  EXPECT_EQ(doc.node(2).name, "B");
  EXPECT_EQ(doc.node(3).name, "C");
  EXPECT_EQ(doc.node(4).name, "C");
  EXPECT_EQ(doc.node(5).name, "B");
  EXPECT_EQ(doc.node(4).parent, 2);
  EXPECT_EQ(doc.node(5).parent, 1);
  EXPECT_EQ(doc.node(4).sibling_ordinal, 2);
  EXPECT_EQ(doc.RootToNodePath(4).value(), "/A/B/C");
}

TEST(XmlParserTest, AttributesAndEntities) {
  auto doc =
      ParseXml(R"(<a x="1" y="a&amp;b" z='q&#65;'>&lt;text&gt;</a>)").value();
  EXPECT_EQ(*doc.FindAttribute(1, "x"), "1");
  EXPECT_EQ(*doc.FindAttribute(1, "y"), "a&b");
  EXPECT_EQ(*doc.FindAttribute(1, "z"), "qA");
  EXPECT_EQ(doc.FindAttribute(1, "missing"), nullptr);
  EXPECT_EQ(doc.StringValue(1), "<text>");
}

TEST(XmlParserTest, WhitespaceTextDroppedByDefault) {
  auto doc = ParseXml("<a>\n  <b>x</b>\n</a>").value();
  EXPECT_EQ(doc.size(), 3);  // a, b, "x"
  ParseOptions keep;
  keep.keep_whitespace_text = true;
  auto doc2 = ParseXml("<a>\n  <b>x</b>\n</a>", keep).value();
  EXPECT_EQ(doc2.size(), 5);
}

TEST(XmlParserTest, CommentsCdataAndPis) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in -->"
      "<![CDATA[<raw&>]]><?pi data?></a><!-- post -->");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().StringValue(1), "<raw&>");
}

TEST(XmlParserTest, DoctypeSkipped) {
  auto doc = ParseXml(
      "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [ <!ENTITY x \"y\"> ]><a/>");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());               // unclosed
  EXPECT_FALSE(ParseXml("<a></b>").ok());           // mismatched
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());          // two roots
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());          // unquoted attribute
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());  // unknown entity
  EXPECT_FALSE(ParseXml("<1a/>").ok());             // bad name
}

TEST(XmlSerializerTest, RoundTrip) {
  const char* text =
      R"(<site><item id="i1" featured="yes">hello <b>world</b> &amp; more</item><empty/></site>)";
  auto doc = ParseXml(text).value();
  std::string out = SerializeXml(doc);
  auto doc2 = ParseXml(out).value();
  EXPECT_EQ(SerializeXml(doc2), out);
  EXPECT_EQ(doc2.size(), doc.size());
  EXPECT_EQ(doc2.StringValue(1), doc.StringValue(1));
}

TEST(XmlSerializerTest, EscapesSpecials) {
  Builder b;
  b.StartElement("a");
  b.AddAttribute("q", "<\"&'>");
  b.AddText("1 < 2 & 3 > 2");
  b.EndElement();
  Document doc = std::move(b).Finish().value();
  std::string out = SerializeXml(doc);
  EXPECT_EQ(out,
            "<a q=\"&lt;&quot;&amp;&apos;&gt;\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlBuilderTest, StringValueConcatenatesDescendants) {
  Builder b;
  b.StartElement("title");
  b.AddText("Indexing");
  b.StartElement("sup");
  b.AddText("2");
  b.EndElement();
  b.AddText(" structures");
  b.EndElement();
  Document doc = std::move(b).Finish().value();
  EXPECT_EQ(doc.StringValue(1), "Indexing2 structures");
  EXPECT_EQ(doc.CountElements(), 2);
}

}  // namespace
}  // namespace xprel::xml
