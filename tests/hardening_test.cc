// Robustness tests: malformed-input corpus replay, hard resource limits,
// memory-budget accounting, builder misuse, and — in fault-injection builds
// (the `fault-injection` preset) — the deterministic fault sweep: every
// registered injection point is fired in turn and the operation above it
// must fail with a Status (never crash or leak) and leave the engine fully
// usable afterwards.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/memory_budget.h"
#include "data/xmark.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "engine/engine.h"
#include "rex/regex.h"
#include "service/query_service.h"
#include "xml/parser.h"
#include "xpath/parser.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using engine::Backend;
using engine::XPathEngine;

// ---------------------------------------------------------------------------
// MemoryBudget units
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, AccountsAndEnforcesCap) {
  MemoryBudget b(1000);
  ASSERT_TRUE(b.Reserve(600, "x").ok());
  EXPECT_EQ(b.used(), 600u);
  ASSERT_TRUE(b.Reserve(400, "x").ok());
  EXPECT_EQ(b.used(), 1000u);
  auto s = b.Reserve(1, "x");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.used(), 1000u);  // refused reservation rolled back
  b.Release(500);
  EXPECT_EQ(b.used(), 500u);
  ASSERT_TRUE(b.Reserve(500, "x").ok());
  EXPECT_EQ(b.peak(), 1000u);
}

TEST(MemoryBudgetTest, ZeroCapOnlyAccounts) {
  MemoryBudget b(0);
  ASSERT_TRUE(b.Reserve(size_t{8} << 30, "huge").ok());
  EXPECT_EQ(b.used(), size_t{8} << 30);
  EXPECT_EQ(b.peak(), size_t{8} << 30);
  b.Release(size_t{8} << 30);
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryBudgetTest, ParentChainChargesBothAndRollsBack) {
  MemoryBudget parent(1000);
  MemoryBudget a(0, &parent);
  MemoryBudget b(0, &parent);
  ASSERT_TRUE(a.Reserve(700, "a").ok());
  EXPECT_EQ(parent.used(), 700u);
  // b fits its own (uncapped) budget but the parent refuses; the local
  // charge must be rolled back so b stays consistent.
  auto s = b.Reserve(400, "b");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(parent.used(), 700u);
  a.Release(700);
  EXPECT_EQ(parent.used(), 0u);
  ASSERT_TRUE(b.Reserve(400, "b").ok());
  EXPECT_EQ(parent.used(), 400u);
}

TEST(MemoryBudgetTest, ReleaseClampsAtZero) {
  MemoryBudget b(0);
  ASSERT_TRUE(b.Reserve(10, "x").ok());
  b.Release(100);  // over-release must not underflow
  EXPECT_EQ(b.used(), 0u);
}

// ---------------------------------------------------------------------------
// Hard input limits
// ---------------------------------------------------------------------------

std::string NestedXml(int depth) {
  std::string s;
  for (int i = 0; i < depth; ++i) s += "<d>";
  s += "x";
  for (int i = 0; i < depth; ++i) s += "</d>";
  return s;
}

TEST(InputLimitsTest, XmlNestingDepthIsBounded) {
  auto deep = xml::ParseXml(NestedXml(300));
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kResourceExhausted);

  // Just inside the default limit parses fine.
  EXPECT_TRUE(xml::ParseXml(NestedXml(256)).ok());

  // The limit is tunable, and 0 disables it.
  xml::ParseOptions opt;
  opt.max_depth = 16;
  EXPECT_FALSE(xml::ParseXml(NestedXml(17), opt).ok());
  opt.max_depth = 0;
  EXPECT_TRUE(xml::ParseXml(NestedXml(300), opt).ok());
}

TEST(InputLimitsTest, XPathExpressionLengthIsBounded) {
  // A syntactically valid but absurdly long expression: /a/a/a/...
  std::string longpath;
  while (longpath.size() <= xpath::kMaxXPathBytes) longpath += "/aaaaaaaa";
  auto r = xpath::ParseXPath(longpath);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(xpath::ParseXPath("/site/regions").ok());
}

TEST(InputLimitsTest, RegexNfaStateCountIsBounded) {
  // Nested bounded repeats multiply: 256 * 256 byte-states busts the
  // 64K-state cap. This must fail fast (construction is cut off at the
  // cap), not after materialising the full automaton.
  auto big = rex::Regex::Compile("(a{256}){256}");
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);

  // Deeper nesting would be ~16M states if construction weren't cut off.
  auto huge = rex::Regex::Compile("((a{200}){200}){200}");
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kResourceExhausted);

  // A large-but-legal pattern still compiles and matches.
  auto ok = rex::Regex::Compile("(ab{4}){8}c*");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value().Matches("abbbbabbbbabbbbabbbbabbbbabbbbabbbbabbbbcc"));
}

// ---------------------------------------------------------------------------
// Builder misuse surfaces Status, not aborts
// ---------------------------------------------------------------------------

TEST(BuilderMisuseTest, UnclosedElementsFailFinish) {
  xml::Builder b;
  b.StartElement("a");
  b.StartElement("b");
  auto r = std::move(b).Finish();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(BuilderMisuseTest, ContentAtTopLevelLatchesError) {
  xml::Builder b;
  EXPECT_EQ(b.AddText("stray"), xml::kNoNode);
  b.AddAttribute("x", "1");
  b.EndElement();
  EXPECT_FALSE(b.error().ok());
  auto r = std::move(b).Finish();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(BuilderMisuseTest, RootToNodePathRejectsBadIds) {
  auto doc = xml::ParseXml("<a>t<b/></a>").value();
  EXPECT_EQ(doc.RootToNodePath(1).value(), "/a");
  auto out_of_range = doc.RootToNodePath(99);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  ASSERT_FALSE(doc.RootToNodePath(0).ok());
  auto text_node = doc.RootToNodePath(2);  // the text node "t"
  ASSERT_FALSE(text_node.ok());
  EXPECT_EQ(text_node.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Malformed-input corpus replay
// ---------------------------------------------------------------------------

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CorpusTest, EveryMalformedXmlFileIsRejected) {
  int seen = 0;
  for (const auto& ent : std::filesystem::directory_iterator(XPREL_CORPUS_DIR)) {
    if (ent.path().extension() != ".xml") continue;
    ++seen;
    auto r = xml::ParseXml(ReadFile(ent.path()));
    EXPECT_FALSE(r.ok()) << ent.path().filename()
                         << " parsed but the corpus says it must not";
  }
  EXPECT_GE(seen, 6) << "corpus directory looks incomplete: " << XPREL_CORPUS_DIR;
}

TEST(CorpusTest, EveryMalformedXPathLineIsRejected) {
  std::istringstream in(ReadFile(std::filesystem::path(XPREL_CORPUS_DIR) /
                                 "bad.xpath"));
  std::string line;
  int seen = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++seen;
    EXPECT_FALSE(xpath::ParseXPath(line).ok()) << "accepted: " << line;
  }
  EXPECT_GE(seen, 5);
}

TEST(CorpusTest, EveryMalformedRegexLineIsRejected) {
  std::istringstream in(ReadFile(std::filesystem::path(XPREL_CORPUS_DIR) /
                                 "bad.regex"));
  std::string line;
  int seen = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++seen;
    EXPECT_FALSE(rex::Regex::Compile(line).ok()) << "accepted: " << line;
  }
  EXPECT_GE(seen, 5);
}

// Every malformed snapshot in the corpus — truncated header, flipped magic,
// bad header/section CRC, future format version — must yield a clean
// InvalidArgument from the durability reader, never UB. (Recovery treats
// exactly this status as "snapshot gone, degrade".)
TEST(CorpusTest, EveryMalformedSnapshotIsRejectedCleanly) {
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();
  int seen = 0;
  for (const auto& ent :
       std::filesystem::directory_iterator(XPREL_CORPUS_DIR)) {
    if (ent.path().extension() != ".snap") continue;
    ++seen;
    auto r = durability::ReadSnapshotFile(ent.path().string(), graph);
    ASSERT_FALSE(r.ok()) << ent.path().filename()
                         << " loaded but the corpus says it must not";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << ent.path().filename() << ": " << r.status().ToString();
  }
  EXPECT_GE(seen, 4) << "snapshot corpus looks incomplete: "
                     << XPREL_CORPUS_DIR;
}

// Malformed WAL segments either fail with a clean InvalidArgument (corrupt
// header — nothing in the file is trustworthy) or truncate to the valid
// record prefix with the torn flag set (corrupt tail — the defined crash
// outcome). Nothing else.
TEST(CorpusTest, EveryMalformedWalFailsOrTruncatesCleanly) {
  int seen = 0;
  for (const auto& ent :
       std::filesystem::directory_iterator(XPREL_CORPUS_DIR)) {
    if (ent.path().extension() != ".wal") continue;
    ++seen;
    auto r = durability::ReadWalSegment(ent.path().string());
    if (r.ok()) {
      EXPECT_TRUE(r.value().torn)
          << ent.path().filename() << " read fully but the corpus is corrupt";
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
          << ent.path().filename() << ": " << r.status().ToString();
    }
  }
  EXPECT_GE(seen, 4) << "wal corpus looks incomplete: " << XPREL_CORPUS_DIR;
}

// ---------------------------------------------------------------------------
// The fault sweep
// ---------------------------------------------------------------------------

// One full pass over the stack, crossing every registered injection point:
// XML parse, engine build (schema shred, edge shred, accelerator build),
// then queries chosen to reach every executor structure — merge joins,
// hash probes, semi-join builds, EXISTS memos, DISTINCT, regex-planned
// Edge translation. Returns the first error, or OK plus the node set of
// the reference query for identity checks.
struct WorkloadResult {
  Status status = Status::Ok();
  std::vector<xml::NodeId> nodes;
};

const char* const kSweepQueries[] = {
    "//keyword/ancestor::listitem",                       // merge + hash join
    "/site/people/person[address and (phone or homepage)]",  // semi-joins
    "/site/people/person[not(homepage)]",
    "/site/open_auctions/open_auction[bidder/date = interval/start]",
};

WorkloadResult RunSweepWorkload(const xml::Document& doc,
                                const xsd::SchemaGraph& graph) {
  WorkloadResult out;
  auto parsed = xml::ParseXml("<a><b>hi</b><b x=\"1\"/></a>");
  if (!parsed.ok()) {
    out.status = parsed.status();
    return out;
  }
  auto engine = XPathEngine::Build(doc, graph);
  if (!engine.ok()) {
    out.status = engine.status();
    return out;
  }
  for (const char* q : kSweepQueries) {
    auto r = engine.value()->Run(Backend::kPpf, q);
    if (!r.ok()) {
      out.status = r.status();
      return out;
    }
    if (q == kSweepQueries[0]) out.nodes = r.value().nodes;
  }
  // The Edge translation plants path regexes, reaching the planner's regex
  // compilation point.
  auto edge = engine.value()->Run(Backend::kEdgePpf, "//keyword");
  if (!edge.ok()) {
    out.status = edge.status();
    return out;
  }
  return out;
}

// True for points whose dedicated sweep lives elsewhere: "dml." points are
// walked by dml_test / dml_oracle_test, "wal." / "snap." points by
// durability_test's crash-recovery sweep. The read-only workload here is
// not expected to reach them.
bool HasDedicatedSweep(const std::string& point) {
  return point.rfind("dml.", 0) == 0 || point.rfind("wal.", 0) == 0 ||
         point.rfind("snap.", 0) == 0;
}

// Both directions of the registry cross-check: every point the workload
// crossed must be in the canonical AllKnownPoints() list (a new
// XPREL_FAULT_POINT without a registry entry fails here), and every known
// point without a dedicated sweep must be crossed by the workload (a
// refactor that stops reaching a point fails here, not never).
TEST(FaultSweepTest, RegistryMatchesCrossedPoints) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  data::XMarkOptions opt;
  opt.scale = 0.005;
  xml::Document doc = data::GenerateXMark(opt);
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();

  auto& inj = fault::FaultInjector::Instance();
  inj.Clear();
  WorkloadResult base = RunSweepWorkload(doc, graph);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();

  const std::vector<std::string>& known = fault::AllKnownPoints();
  for (const std::string& crossed : inj.RegisteredPoints()) {
    EXPECT_NE(std::find(known.begin(), known.end(), crossed), known.end())
        << "fault point " << crossed
        << " is not in AllKnownPoints() - add it to the registry";
  }
  std::vector<std::string> crossed = inj.RegisteredPoints();
  for (const std::string& point : known) {
    if (HasDedicatedSweep(point)) continue;
    EXPECT_NE(std::find(crossed.begin(), crossed.end(), point), crossed.end())
        << "workload no longer reaches fault point " << point;
  }
}

TEST(FaultSweepTest, EveryRegisteredPointFailsCleanlyAndRecovers) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  data::XMarkOptions opt;
  opt.scale = 0.005;
  xml::Document doc = data::GenerateXMark(opt);
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();

  auto& inj = fault::FaultInjector::Instance();
  inj.Clear();

  // Record pass: register every point the workload crosses.
  WorkloadResult base = RunSweepWorkload(doc, graph);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_FALSE(base.nodes.empty());
  // (Coverage of the registered set against the canonical registry is
  // asserted by RegistryMatchesCrossedPoints above.)
  std::vector<std::string> points = inj.RegisteredPoints();

  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    inj.DisarmAll();
    inj.ResetCounts();
    inj.Arm(point, 1, StatusCode::kResourceExhausted);
    WorkloadResult r = RunSweepWorkload(doc, graph);
    EXPECT_FALSE(r.status.ok())
        << "injected fault at " << point << " did not surface";
    EXPECT_EQ(inj.FiredCount(point), 1u);

    // Disarmed, the exact same workload must succeed with identical output:
    // nothing was poisoned by the failure.
    inj.DisarmAll();
    WorkloadResult ok = RunSweepWorkload(doc, graph);
    EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
    EXPECT_EQ(ok.nodes, base.nodes);
  }
  inj.DisarmAll();
}

// Executor points on a persistent engine with a warm plan cache: arm at
// the first and at a later crossing, and after each failure the very same
// engine must produce the exact baseline node set.
TEST(FaultSweepTest, WarmEngineSurvivesMidExecutionFaults) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  data::XMarkOptions opt;
  opt.scale = 0.01;
  xml::Document doc = data::GenerateXMark(opt);
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();
  auto engine = XPathEngine::Build(doc, graph).value();

  auto& inj = fault::FaultInjector::Instance();
  inj.Clear();

  for (const char* q : kSweepQueries) {
    SCOPED_TRACE(q);
    auto base = engine->Run(Backend::kPpf, q);
    ASSERT_TRUE(base.ok()) << base.status().ToString();

    for (const std::string& point : inj.RegisteredPoints()) {
      if (point.rfind("rel.", 0) != 0) continue;  // executor points only
      for (uint64_t nth : {uint64_t{1}, uint64_t{5}}) {
        SCOPED_TRACE(point + " nth=" + std::to_string(nth));
        inj.DisarmAll();
        inj.ResetCounts();
        inj.Arm(point, nth, StatusCode::kResourceExhausted);
        auto r = engine->Run(Backend::kPpf, q);
        if (inj.FiredCount(point) > 0) {
          EXPECT_FALSE(r.ok()) << "fired fault did not surface";
          EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
        }
        // (If the point is crossed fewer than nth times by this query the
        // run legitimately succeeds; the arm is cleared below either way.)
        inj.DisarmAll();
        auto again = engine->Run(Backend::kPpf, q);
        ASSERT_TRUE(again.ok()) << again.status().ToString();
        EXPECT_EQ(again.value().nodes, base.value().nodes);
      }
    }
  }
  inj.DisarmAll();
}

// Morsel-parallel execution must unwind injected faults exactly like the
// serial path: the first failing morsel's error surfaces (never the
// sibling-abort status), every budget reservation — coordinator,
// per-morsel children, shared hash/semi-join build state — is released,
// and a clean re-run on the same warm engine is bit-identical. Runs at
// scale 0.4 so the sweep queries genuinely shard into concurrent morsels.
TEST(FaultSweepTest, ParallelExecutionReleasesBudgetOnEveryInjectedFault) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  data::XMarkOptions opt;
  opt.scale = 0.4;
  xml::Document doc = data::GenerateXMark(opt);
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();
  auto engine = XPathEngine::Build(doc, graph).value();

  service::ThreadPool pool(4);
  MemoryBudget meter(0);
  rel::ExecControl control;
  control.budget = &meter;
  control.runner = &pool.intra_runner();
  control.parallelism = 4;

  auto& inj = fault::FaultInjector::Instance();
  inj.Clear();

  // Both queries shard at this scale (merge-join staircase; seq scan under
  // a semi-join) and together cross the hash/merge/semi-join/emit points.
  const char* const queries[] = {
      "//keyword/ancestor::listitem",
      "/site/people/person[not(homepage)]",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    auto base = engine->Run(Backend::kPpf, q, &control);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    ASSERT_GT(base.value().stats.morsels_scheduled, 1u)
        << "query did not shard - the parallel sweep would test nothing";
    ASSERT_EQ(meter.used(), 0u);

    for (const std::string& point : inj.RegisteredPoints()) {
      if (point.rfind("rel.", 0) != 0) continue;  // executor points only
      for (uint64_t nth : {uint64_t{1}, uint64_t{5}}) {
        SCOPED_TRACE(point + " nth=" + std::to_string(nth));
        inj.DisarmAll();
        inj.ResetCounts();
        inj.Arm(point, nth, StatusCode::kResourceExhausted);
        auto r = engine->Run(Backend::kPpf, q, &control);
        if (inj.FiredCount(point) > 0) {
          EXPECT_FALSE(r.ok()) << "fired fault did not surface";
          EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
              << r.status().ToString();
        }
        // Whatever happened, every reservation made by the coordinator,
        // the morsel sub-budgets, and the shared build state is gone.
        EXPECT_EQ(meter.used(), 0u);
        inj.DisarmAll();
        auto again = engine->Run(Backend::kPpf, q, &control);
        ASSERT_TRUE(again.ok()) << again.status().ToString();
        EXPECT_EQ(again.value().nodes, base.value().nodes);
        EXPECT_EQ(meter.used(), 0u);
      }
    }
  }
  inj.DisarmAll();
}

// A query that fails mid-execution must not leave a poisoned result-cache
// entry in the serving layer: the next identical request re-executes and
// caches the correct result.
TEST(FaultSweepTest, FailedQueryLeavesNoPoisonedResultCacheEntry) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  data::XMarkOptions opt;
  opt.scale = 0.01;
  xml::Document doc = data::GenerateXMark(opt);
  xsd::Schema schema = xsd::ParseXsd(data::XMarkXsd()).value();
  xsd::SchemaGraph graph = xsd::SchemaGraph::Build(schema).value();
  auto engine = XPathEngine::Build(doc, graph).value();

  auto baseline = engine->Run(Backend::kPpf, "//keyword/ancestor::listitem");
  ASSERT_TRUE(baseline.ok());

  service::QueryService svc(*engine, {});
  auto& inj = fault::FaultInjector::Instance();
  inj.DisarmAll();
  inj.ResetCounts();
  inj.Arm("rel.emit_row", 1, StatusCode::kResourceExhausted);

  service::QueryRequest req;
  req.xpath = "//keyword/ancestor::listitem";
  auto r1 = svc.Run(std::move(req));
  inj.DisarmAll();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.metrics().resource_exhausted.load(), 1u);

  // The failure was not cached: this run executes (miss) and succeeds.
  service::QueryRequest req2;
  req2.xpath = "//keyword/ancestor::listitem";
  auto r2 = svc.Run(std::move(req2));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.value().cache_hit);
  EXPECT_EQ(r2.value().nodes, baseline.value().nodes);

  // And now the good result is served from cache.
  service::QueryRequest req3;
  req3.xpath = "//keyword/ancestor::listitem";
  auto r3 = svc.Run(std::move(req3));
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().cache_hit);
  EXPECT_EQ(r3.value().nodes, baseline.value().nodes);
}

}  // namespace
}  // namespace xprel
