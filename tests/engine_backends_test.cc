// Cross-backend integration tests: every backend must agree with the
// reference evaluator on the paper's XMark and DBLP query sets.

#include <memory>

#include <gtest/gtest.h>

#include "data/dblp.h"
#include "data/xmark.h"
#include "engine/engine.h"
#include "tests/queries.h"
#include "xpatheval/evaluator.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using engine::Backend;
using engine::XPathEngine;
using testutil::NamedQuery;

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
  std::unique_ptr<xpatheval::XPathEvaluator> oracle;
};

std::unique_ptr<Corpus> MakeCorpus(xml::Document doc, const char* xsd) {
  auto c = std::make_unique<Corpus>();
  c->doc = std::move(doc);
  auto schema = xsd::ParseXsd(xsd);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  if (!schema.ok()) return nullptr;
  c->schema = std::move(schema).value();
  auto graph = xsd::SchemaGraph::Build(c->schema);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return nullptr;
  c->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());
  auto eng = XPathEngine::Build(c->doc, *c->graph);
  EXPECT_TRUE(eng.ok()) << eng.status().ToString();
  if (!eng.ok()) return nullptr;
  c->engine = std::move(eng).value();
  c->oracle = std::make_unique<xpatheval::XPathEvaluator>(c->doc);
  return c;
}

Corpus& XMarkCorpus() {
  static Corpus* corpus = [] {
    data::XMarkOptions opt;
    opt.scale = 0.01;  // ~220 items: fast but structurally complete
    return MakeCorpus(data::GenerateXMark(opt), data::XMarkXsd()).release();
  }();
  return *corpus;
}

Corpus& DblpCorpus() {
  static Corpus* corpus = [] {
    data::DblpOptions opt;
    opt.inproceedings = 600;
    opt.articles = 300;
    opt.books = 40;
    return MakeCorpus(data::GenerateDblp(opt), data::DblpXsd()).release();
  }();
  return *corpus;
}

void ExpectBackendMatches(Corpus& c, Backend backend, const NamedQuery& q,
                          bool allow_unsupported) {
  auto expected = c.oracle->EvaluateString(q.xpath);
  ASSERT_TRUE(expected.ok()) << q.id << ": " << expected.status().ToString();
  auto actual = c.engine->Run(backend, q.xpath);
  if (!actual.ok()) {
    if (allow_unsupported &&
        actual.status().code() == StatusCode::kUnsupported) {
      GTEST_SKIP() << q.id << " unsupported on " << BackendName(backend)
                   << ": " << actual.status().message();
    }
    FAIL() << q.id << " on " << BackendName(backend) << ": "
           << actual.status().ToString();
  }
  EXPECT_EQ(expected.value(), actual.value().nodes)
      << q.id << " on " << BackendName(backend)
      << "\nSQL: " << actual.value().sql;
}

struct Case {
  Backend backend;
  const NamedQuery* query;
  bool dblp;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string b;
  switch (info.param.backend) {
    case Backend::kPpf:
      b = "Ppf";
      break;
    case Backend::kEdgePpf:
      b = "Edge";
      break;
    case Backend::kAccelerator:
      b = "Accel";
      break;
    case Backend::kStaircase:
      b = "Staircase";
      break;
    case Backend::kNaive:
      b = "Naive";
      break;
  }
  return b + "_" + info.param.query->id;
}

class BackendAgreementTest : public ::testing::TestWithParam<Case> {};

TEST_P(BackendAgreementTest, MatchesOracle) {
  const Case& c = GetParam();
  Corpus& corpus = c.dblp ? DblpCorpus() : XMarkCorpus();
  // The naive (conventional) backend legitimately rejects queries needing
  // the path index; the paper's commercial baseline supported only three of
  // the XPathMark queries.
  bool allow_unsupported = c.backend == Backend::kNaive;
  ExpectBackendMatches(corpus, c.backend, *c.query, allow_unsupported);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (Backend b : {Backend::kPpf, Backend::kEdgePpf, Backend::kAccelerator,
                    Backend::kStaircase, Backend::kNaive}) {
    for (const NamedQuery& q : testutil::kXMarkQueries) {
      cases.push_back({b, &q, false});
    }
    for (const NamedQuery& q : testutil::kDblpQueries) {
      cases.push_back({b, &q, true});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendAgreementTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(EngineExecutionTest, PlanCacheReusedAndExistsMemoCounted) {
  Corpus& corpus = XMarkCorpus();
  XPathEngine& eng = *corpus.engine;
  // XPathMark Q23: three correlated EXISTS predicates per person.
  const char* q = "/site/people/person[address and (phone or homepage)]";
  auto first = eng.Run(Backend::kPpf, q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  size_t cached = eng.plan_cache_size();
  EXPECT_GE(cached, 1u);
  auto second = eng.Run(Backend::kPpf, q);
  ASSERT_TRUE(second.ok());
  // Same query: answered from the plan cache, identical result.
  EXPECT_EQ(eng.plan_cache_size(), cached);
  EXPECT_EQ(first.value().nodes, second.value().nodes);
  // The EXISTS memo counters must account for every subquery evaluation.
  const rel::QueryStats& stats = second.value().stats;
  EXPECT_GT(stats.subquery_evals, 0u);
  EXPECT_GT(stats.exists_cache_misses, 0u);
  EXPECT_EQ(stats.exists_cache_hits + stats.exists_cache_misses,
            stats.subquery_evals);
}

}  // namespace
}  // namespace xprel
