// Dewey encoding tests: representation, lemmas, and random-tree properties.

#include <random>

#include <gtest/gtest.h>

#include "encoding/dewey.h"

namespace xprel::encoding {
namespace {

TEST(DeweyTest, ComponentsRoundTrip) {
  std::vector<uint32_t> comps = {1, 2, 0x7FFFFF, 0, 42};
  std::string pos = Dewey::FromComponents(comps);
  EXPECT_EQ(pos.size(), comps.size() * 3);
  auto back = Dewey::ToComponents(pos);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), comps);
}

TEST(DeweyTest, DottedRoundTrip) {
  auto pos = Dewey::FromDotted("1.1.2");
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(Dewey::ToDotted(pos.value()), "1.1.2");
  EXPECT_EQ(Dewey::Level(pos.value()), 3);
  EXPECT_EQ(Dewey::LastOrdinal(pos.value()), 2u);
  EXPECT_EQ(Dewey::ToDotted(Dewey::Parent(pos.value())), "1.1");
}

TEST(DeweyTest, InvalidInputs) {
  EXPECT_FALSE(Dewey::ToComponents("ab").ok());          // not multiple of 3
  EXPECT_FALSE(Dewey::ToComponents("\xFF\x00\x00").ok());  // top bit set
  EXPECT_FALSE(Dewey::FromDotted("1.x").ok());
  EXPECT_FALSE(Dewey::FromDotted("1.9999999999").ok());  // out of range
}

TEST(DeweyTest, Lemma1Descendant) {
  std::string a = Dewey::FromComponents({1, 2});
  std::string child = Dewey::FromComponents({1, 2, 1});
  std::string deep = Dewey::FromComponents({1, 2, 7, 4});
  std::string sibling = Dewey::FromComponents({1, 3});
  std::string self = a;

  EXPECT_TRUE(Dewey::IsDescendant(child, a));
  EXPECT_TRUE(Dewey::IsDescendant(deep, a));
  EXPECT_FALSE(Dewey::IsDescendant(sibling, a));
  EXPECT_FALSE(Dewey::IsDescendant(self, a));  // strict
  EXPECT_FALSE(Dewey::IsDescendant(a, child));

  // The lemma's exact form: d > a and d < a || 0xFF.
  EXPECT_GT(child, a);
  EXPECT_LT(child, Dewey::UpperBound(a));
  EXPECT_GT(sibling, Dewey::UpperBound(a));
}

TEST(DeweyTest, Lemma2Following) {
  std::string a = Dewey::FromComponents({1, 2});
  std::string desc = Dewey::FromComponents({1, 2, 5});
  std::string next = Dewey::FromComponents({1, 3});
  std::string ancestor = Dewey::FromComponents({1});

  EXPECT_TRUE(Dewey::IsFollowing(next, a));
  EXPECT_FALSE(Dewey::IsFollowing(desc, a));      // descendants don't follow
  EXPECT_FALSE(Dewey::IsFollowing(ancestor, a));  // ancestors don't follow
  EXPECT_TRUE(Dewey::IsPreceding(a, next));
  EXPECT_FALSE(Dewey::IsPreceding(ancestor, a));  // ancestors don't precede
}

TEST(DeweyTest, MaxComponentBoundary) {
  // A component of 0x7FFFFF must still sort below the 0xFF upper-bound
  // byte (the first byte of every component has its top bit clear).
  std::string parent = Dewey::FromComponents({1});
  std::string extreme = Dewey::FromComponents({1, Dewey::kMaxComponent});
  EXPECT_TRUE(Dewey::IsDescendant(extreme, parent));
  std::string deeper = Dewey::Child(extreme, Dewey::kMaxComponent);
  EXPECT_TRUE(Dewey::IsDescendant(deeper, parent));
  EXPECT_TRUE(Dewey::IsDescendant(deeper, extreme));
}

// Property: on a random tree, the Dewey relations agree with the tree
// relations computed structurally.
TEST(DeweyTest, RandomTreeProperty) {
  std::mt19937_64 rng(1234);
  struct Node {
    int parent;
    std::string dewey;
  };
  std::vector<Node> nodes;
  nodes.push_back({-1, Dewey::FromComponents({1})});
  std::vector<uint32_t> child_count = {0};
  for (int i = 1; i < 400; ++i) {
    int parent = static_cast<int>(rng() % nodes.size());
    child_count[static_cast<size_t>(parent)]++;
    nodes.push_back(
        {parent, Dewey::Child(nodes[static_cast<size_t>(parent)].dewey,
                              child_count[static_cast<size_t>(parent)])});
    child_count.push_back(0);
  }

  auto is_ancestor = [&](int a, int d) {
    for (int cur = nodes[static_cast<size_t>(d)].parent; cur >= 0;
         cur = nodes[static_cast<size_t>(cur)].parent) {
      if (cur == a) return true;
    }
    return false;
  };

  for (int trial = 0; trial < 4000; ++trial) {
    int a = static_cast<int>(rng() % nodes.size());
    int b = static_cast<int>(rng() % nodes.size());
    if (a == b) continue;
    const std::string& da = nodes[static_cast<size_t>(a)].dewey;
    const std::string& db = nodes[static_cast<size_t>(b)].dewey;
    EXPECT_EQ(Dewey::IsDescendant(db, da), is_ancestor(a, b));
    // following = after in document order (dewey order) and not descendant.
    bool structurally_following = db > da && !is_ancestor(a, b);
    EXPECT_EQ(Dewey::IsFollowing(db, da), structurally_following)
        << Dewey::ToDotted(da) << " vs " << Dewey::ToDotted(db);
  }
}

}  // namespace
}  // namespace xprel::encoding
