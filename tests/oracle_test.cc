// Reference-evaluator tests on a hand-built document with known answers,
// including the features only the oracle supports (position()).

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpatheval/evaluator.h"

namespace xprel::xpatheval {
namespace {

// <r>                          1
//   <a i="1"><x>1</x></a>      2 (x=3)
//   <b><x>2</x><x>3</x></b>    5 (x=6, x=8)
//   <a><y>zz</y></a>           10 (y=11)
// </r>
class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseXml(
        "<r><a i=\"1\"><x>1</x></a><b><x>2</x><x>3</x></b>"
        "<a><y>zz</y></a></r>");
    ASSERT_TRUE(doc.ok());
    doc_ = std::make_unique<xml::Document>(std::move(doc).value());
    eval_ = std::make_unique<XPathEvaluator>(*doc_);
  }

  std::vector<xml::NodeId> Eval(const char* q) {
    auto r = eval_->EvaluateString(q);
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    return r.ok() ? r.value() : std::vector<xml::NodeId>{};
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<XPathEvaluator> eval_;
};

TEST_F(OracleTest, BasicAxes) {
  EXPECT_EQ(Eval("/r"), (std::vector<xml::NodeId>{1}));
  EXPECT_EQ(Eval("/r/a"), (std::vector<xml::NodeId>{2, 10}));
  EXPECT_EQ(Eval("//x"), (std::vector<xml::NodeId>{3, 6, 8}));
  EXPECT_EQ(Eval("/r/b/x/parent::b"), (std::vector<xml::NodeId>{5}));
  EXPECT_EQ(Eval("//y/ancestor::*"), (std::vector<xml::NodeId>{1, 10}));
  EXPECT_EQ(Eval("/r/a/following-sibling::b"), (std::vector<xml::NodeId>{5}));
  EXPECT_EQ(Eval("/r/b/preceding-sibling::a"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/b/following::y"), (std::vector<xml::NodeId>{11}));
  EXPECT_EQ(Eval("//y/preceding::x"), (std::vector<xml::NodeId>{3, 6, 8}));
  EXPECT_EQ(Eval("/r/a/.."), (std::vector<xml::NodeId>{1}));
  EXPECT_EQ(Eval("/r/a/."), (std::vector<xml::NodeId>{2, 10}));
}

TEST_F(OracleTest, PrecedingExcludesAncestors) {
  // preceding of the first x (node 3): nothing (a and r are ancestors).
  EXPECT_EQ(Eval("/r/a[1]/x/preceding::*"), (std::vector<xml::NodeId>{}));
  // preceding of y's parent a (node 10): a, x, b, x, x — not r.
  EXPECT_EQ(Eval("//y/parent::a/preceding::*"),
            (std::vector<xml::NodeId>{2, 3, 5, 6, 8}));
}

TEST_F(OracleTest, Predicates) {
  EXPECT_EQ(Eval("/r/a[@i]"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/a[@i='1']"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/a[x]"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/a[not(x)]"), (std::vector<xml::NodeId>{10}));
  EXPECT_EQ(Eval("/r/a[x or y]"), (std::vector<xml::NodeId>{2, 10}));
  EXPECT_EQ(Eval("/r/a[x and y]"), (std::vector<xml::NodeId>{}));
  EXPECT_EQ(Eval("//b[x=2]"), (std::vector<xml::NodeId>{5}));
  EXPECT_EQ(Eval("//b[x=9]"), (std::vector<xml::NodeId>{}));
  EXPECT_EQ(Eval("//x[. >= 2]"), (std::vector<xml::NodeId>{6, 8}));
}

TEST_F(OracleTest, PositionPredicates) {
  EXPECT_EQ(Eval("/r/a[1]"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/a[2]"), (std::vector<xml::NodeId>{10}));
  EXPECT_EQ(Eval("/r/b/x[position()=2]"), (std::vector<xml::NodeId>{8}));
  // Reverse axis proximity: nearest preceding sibling is position 1.
  EXPECT_EQ(Eval("/r/a[2]/preceding-sibling::*[1]"),
            (std::vector<xml::NodeId>{5}));
  EXPECT_EQ(Eval("//y/ancestor::*[1]"), (std::vector<xml::NodeId>{10}));
  EXPECT_EQ(Eval("//y/ancestor::*[2]"), (std::vector<xml::NodeId>{1}));
}

TEST_F(OracleTest, PathToPathComparison) {
  // a/x = b/x is false (1 vs {2,3}); x-to-x within b true for inequality.
  EXPECT_EQ(Eval("/r[a/x = b/x]"), (std::vector<xml::NodeId>{}));
  EXPECT_EQ(Eval("/r[a/x != b/x]"), (std::vector<xml::NodeId>{1}));
}

TEST_F(OracleTest, TextProjection) {
  EXPECT_EQ(Eval("//x/text()"), (std::vector<xml::NodeId>{3, 6, 8}));
  EXPECT_EQ(Eval("/r/text()"), (std::vector<xml::NodeId>{}));  // no text
}

TEST_F(OracleTest, AttributeFinalStep) {
  EXPECT_EQ(Eval("/r/a/@i"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(Eval("/r/b/@i"), (std::vector<xml::NodeId>{}));
}

TEST_F(OracleTest, Union) {
  EXPECT_EQ(Eval("//y | //x | /r"), (std::vector<xml::NodeId>{1, 3, 6, 8, 11}));
}

TEST_F(OracleTest, Unsupported) {
  EXPECT_EQ(eval_->EvaluateString("/").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(eval_->EvaluateString("//@i/x").status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace xprel::xpatheval
