// Randomized mutate-vs-reshred oracle: a long random sequence of subtree
// inserts, deletes and text updates applied incrementally must leave the
// engine indistinguishable from shredding the mutated document from
// scratch — same query results on every backend, same live Paths summary.
// The fault-injection preset additionally arms each DML fault point mid-
// sequence, so rolled-back mutations are part of the checked history.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/rng.h"
#include "data/xmark.h"
#include "dml/mutator.h"
#include "engine/engine.h"
#include "shred/schema_map.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using dml::DocumentMutator;
using engine::Backend;
using engine::XPathEngine;

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

std::unique_ptr<Corpus> MakeCorpus(xml::Document doc) {
  auto c = std::make_unique<Corpus>();
  c->doc = std::move(doc);
  auto schema = xsd::ParseXsd(data::XMarkXsd());
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  if (!schema.ok()) return nullptr;
  c->schema = std::move(schema).value();
  auto graph = xsd::SchemaGraph::Build(c->schema);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return nullptr;
  c->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());
  auto eng = XPathEngine::Build(c->doc, *c->graph);
  EXPECT_TRUE(eng.ok()) << eng.status().ToString();
  if (!eng.ok()) return nullptr;
  c->engine = std::move(eng).value();
  return c;
}

// Serialized live subtree of each result node, sorted — a node-id-free
// fingerprint comparable between the mutated and the reshredded engines.
std::vector<std::string> Shapes(const xml::Document& doc,
                                const std::vector<xml::NodeId>& nodes) {
  struct Ser {
    const xml::Document& d;
    void Node(xml::NodeId n, std::string& s) const {
      const xml::Node& node = d.node(n);
      if (node.kind == xml::NodeKind::kText) {
        s += xml::EscapeXml(node.text);
        return;
      }
      s += '<';
      s += node.name;
      for (const xml::Attribute& a : node.attributes) {
        s += ' ';
        s += a.name;
        s += "=\"";
        s += xml::EscapeXml(a.value);
        s += '"';
      }
      s += '>';
      for (xml::NodeId c : node.children) Node(c, s);
      s += "</";
      s += node.name;
      s += '>';
    }
  };
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (xml::NodeId id : nodes) {
    std::string frag;
    Ser{doc}.Node(id, frag);
    out.push_back(std::move(frag));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Live path strings of a store's Paths table (ids are allocation-order
// dependent and legitimately differ between incremental and from-scratch).
std::multiset<std::string> LivePathSet(const rel::Database& db) {
  std::multiset<std::string> out;
  const rel::Table* paths = db.FindTable(shred::kPathsTable);
  if (paths == nullptr) return out;
  for (rel::RowId r = 0; r < static_cast<rel::RowId>(paths->row_count());
       ++r) {
    if (paths->row_dead(r)) continue;
    out.insert(paths->at(r, 1).AsString());
  }
  return out;
}

std::string ItemFragment(int id, bool keyword, int incategories) {
  std::string s = "<item id=\"oracle" + std::to_string(id) + "\">";
  s += "<location>Honduras</location><quantity>2</quantity>";
  s += "<name>oracle item " + std::to_string(id) + "</name>";
  s += "<payment>Cash</payment><description><text>generated ";
  if (keyword) s += "<keyword>oraclekw</keyword> ";
  s += "payload</text></description>";
  s += "<shipping>Will ship only within country</shipping>";
  for (int i = 0; i < incategories; ++i) {
    s += "<incategory category=\"category0\"/>";
  }
  s += "</item>";
  return s;
}

const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};

const char* kQueries[] = {
    "//item",
    "//item/name",
    "//keyword",
    "/site/regions/africa/item",
    "/site/regions/samerica/item/location",
    "//item[incategory/@category = 'category0']/name",
    "//description//keyword",
    "/site/people/person/name",
};

void RunOracle(int mutations, bool sweep_faults) {
  data::XMarkOptions opt;
  opt.scale = 0.004;
  auto live = MakeCorpus(data::GenerateXMark(opt));
  ASSERT_NE(live, nullptr);
  DocumentMutator mut(live->doc, *live->engine);
  data::Rng rng(0xD31);

  std::vector<const char*> fault_points = {
      "dml.apply",      "dml.ppf_insert", "dml.edge_insert",
      "dml.ppf_delete", "dml.edge_delete", "dml.ppf_dewey",
      "dml.edge_dewey", "dml.ppf_text",   "dml.edge_text"};
  size_t next_fault = 0;

  for (int i = 0; i < mutations; ++i) {
    if (sweep_faults && !fault_points.empty()) {
      // Arm a different point each round; whichever op crosses it first
      // fails and must roll back without corrupting the history.
      fault::FaultInjector::Instance().Arm(
          fault_points[next_fault++ % fault_points.size()]);
    }
    const uint64_t dice = rng.Below(10);
    if (dice < 5) {
      const char* region = kRegions[rng.Below(6)];
      std::string parent = std::string("/site/regions/") + region;
      auto r = mut.InsertFragmentAt(
          parent, static_cast<size_t>(rng.Below(4)),
          ItemFragment(i, rng.Below(2) == 0,
                       static_cast<int>(rng.Below(3))));
      if (!sweep_faults) {
        ASSERT_TRUE(r.ok()) << "insert " << i << ": "
                            << r.status().ToString();
      }
    } else if (dice < 8) {
      const char* region = kRegions[rng.Below(6)];
      auto r = mut.DeleteSubtreeAt(std::string("/site/regions/") + region +
                                   "/item");
      // A region can legitimately run out of items; only hard errors count.
      if (!sweep_faults && !r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
            << r.status().ToString();
      }
    } else {
      auto r = mut.UpdateTextAt("//item/name",
                                "updated name " + std::to_string(i));
      if (!sweep_faults) {
        ASSERT_TRUE(r.ok()) << "update " << i << ": "
                            << r.status().ToString();
      }
    }
  }
  if (sweep_faults) fault::FaultInjector::Instance().DisarmAll();
  EXPECT_GE(mut.stats().mutations_applied, 1u);

  // Ground truth: serialize the mutated document, reparse, reshred.
  auto parsed = xml::ParseXml(xml::SerializeXml(live->doc));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto fresh = MakeCorpus(std::move(parsed).value());
  ASSERT_NE(fresh, nullptr);

  // Paths summaries must agree exactly (as path-string sets).
  EXPECT_EQ(LivePathSet(live->engine->ppf_store()->db()),
            LivePathSet(fresh->engine->ppf_store()->db()))
      << "schema-aware Paths diverged from reshred";
  EXPECT_EQ(LivePathSet(live->engine->edge_store()->db()),
            LivePathSet(fresh->engine->edge_store()->db()))
      << "Edge Paths diverged from reshred";
  EXPECT_EQ(live->engine->ppf_store()->live_paths(),
            fresh->engine->ppf_store()->live_paths());

  // Every backend of the mutated engine must match the reshredded truth.
  const Backend backends[] = {Backend::kPpf, Backend::kEdgePpf,
                              Backend::kAccelerator, Backend::kStaircase,
                              Backend::kNaive};
  for (const char* q : kQueries) {
    auto expected_out = fresh->engine->Run(Backend::kPpf, q);
    ASSERT_TRUE(expected_out.ok()) << q << ": "
                                   << expected_out.status().ToString();
    auto expected = Shapes(fresh->doc, expected_out.value().nodes);
    for (Backend b : backends) {
      auto out = live->engine->Run(b, q);
      ASSERT_TRUE(out.ok())
          << q << " on " << BackendName(b) << ": " << out.status().ToString();
      EXPECT_EQ(Shapes(live->doc, out.value().nodes), expected)
          << q << " on " << BackendName(b) << " diverges from reshred";
    }
  }
}

TEST(DmlOracle, RandomMutationsMatchFromScratchShred) {
  RunOracle(/*mutations=*/60, /*sweep_faults=*/false);
}

TEST(DmlOracle, RandomMutationsUnderFaultSweepStayConsistent) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  RunOracle(/*mutations=*/30, /*sweep_faults=*/true);
}

}  // namespace
}  // namespace xprel
