// Tests for end-to-end query observability: QueryStats/StepStats merge
// semantics, per-step EXPLAIN ANALYZE actuals (serial == parallel), the
// TraceContext span tree under concurrency, the service's trace ring and
// slow-query log, histogram percentile edge cases, and the Prometheus
// exposition. The concurrent sections double as the tsan targets for the
// trace ring and StepStats accumulation.

#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "data/xmark.h"
#include "durability/manager.h"
#include "engine/engine.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "tests/queries.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using engine::Backend;
using engine::XPathEngine;
using service::LatencyHistogram;
using service::MetricsRegistry;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryService;
using service::ServiceOptions;
using service::ThreadPool;
using service::TraceRecord;

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

Corpus* BuildCorpus(double scale) {
  auto* c = new Corpus();
  data::XMarkOptions opt;
  opt.scale = scale;
  c->doc = data::GenerateXMark(opt);
  c->schema = xsd::ParseXsd(data::XMarkXsd()).value();
  c->graph = std::make_unique<xsd::SchemaGraph>(
      xsd::SchemaGraph::Build(c->schema).value());
  c->engine = XPathEngine::Build(c->doc, *c->graph).value();
  return c;
}

Corpus& SmallCorpus() {
  static Corpus* corpus = BuildCorpus(0.01);
  return *corpus;
}

// Big enough that per-tag tables pass the morsel split floor, so parallel
// runs genuinely shard (see service_test's ParallelCorpus).
Corpus& BigCorpus() {
  static Corpus* corpus = BuildCorpus(0.4);
  return *corpus;
}

// ---------------------------------------------------------------------------
// QueryStats / StepStats merge semantics
// ---------------------------------------------------------------------------

TEST(QueryStatsMergeTest, CountersSumAndHighWatersMax) {
  rel::QueryStats a;
  a.rows_scanned = 10;
  a.output_rows = 3;
  a.bytes_reserved_peak = 100;
  a.parallel_threads = 2;
  a.batch_size = 512;
  rel::QueryStats b;
  b.rows_scanned = 5;
  b.output_rows = 4;
  b.bytes_reserved_peak = 250;
  b.parallel_threads = 1;
  b.batch_size = 1024;

  a.MergeFrom(b);
  EXPECT_EQ(a.rows_scanned, 15u);
  EXPECT_EQ(a.output_rows, 7u);       // counters sum, including output rows
  EXPECT_EQ(a.bytes_reserved_peak, 250u);  // high-water marks take the max
  EXPECT_EQ(a.parallel_threads, 2u);
  EXPECT_EQ(a.batch_size, 1024u);
}

TEST(StepStatsMergeTest, SumsCountersAndTracksMorselSkew) {
  rel::StepStats a;
  a.rows_in = 100;
  a.rows_out = 40;
  a.batches = 2;
  a.time_us = 10;
  a.SealMorsel();  // morsels=1, min=max=40

  rel::StepStats b;
  b.rows_in = 50;
  b.rows_out = 10;
  b.batches = 1;
  b.time_us = 5;
  b.SealMorsel();

  rel::StepStats total;
  total.MergeFrom(a);
  total.MergeFrom(b);
  EXPECT_EQ(total.rows_in, 150u);
  EXPECT_EQ(total.rows_out, 50u);
  EXPECT_EQ(total.batches, 3u);
  EXPECT_EQ(total.time_us, 15u);
  EXPECT_EQ(total.morsels, 2u);
  EXPECT_EQ(total.min_rows, 10u);
  EXPECT_EQ(total.max_rows, 40u);
}

TEST(StepStatsMergeTest, MergingUnsealedStatsLeavesSkewUntouched) {
  rel::StepStats total;
  rel::StepStats serial;
  serial.rows_out = 7;  // never sealed: a serial run has no morsels
  total.MergeFrom(serial);
  EXPECT_EQ(total.rows_out, 7u);
  EXPECT_EQ(total.morsels, 0u);
}

// ---------------------------------------------------------------------------
// Histogram percentile edge cases
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyHistogramReportsZeroPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileUs(0.50), 0u);
  EXPECT_EQ(h.PercentileUs(0.95), 0u);
  EXPECT_EQ(h.PercentileUs(0.99), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanUs(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleReportsBucketMidpoint) {
  LatencyHistogram h;
  h.RecordUs(100);  // bucket [64, 128): midpoint 96
  EXPECT_EQ(h.PercentileUs(0.50), 96u);
  EXPECT_EQ(h.PercentileUs(0.99), 96u);

  LatencyHistogram h0;
  h0.RecordUs(0);  // bucket [0, 2): midpoint 1
  EXPECT_EQ(h0.PercentileUs(0.50), 1u);
}

TEST(LatencyHistogramTest, MultiSampleReportsUpperBucketEdge) {
  LatencyHistogram h;
  h.RecordUs(100);
  h.RecordUs(100);
  EXPECT_EQ(h.PercentileUs(0.50), 128u);
}

// ---------------------------------------------------------------------------
// TraceContext
// ---------------------------------------------------------------------------

TEST(TraceContextTest, SpanTreeRendersNestingAndNotes) {
  TraceContext ctx(42);
  int root = ctx.BeginSpan("queue");
  ctx.EndSpan(root);
  int exec = ctx.BeginSpan("execute");
  int child = ctx.BeginSpan("morsel", exec);
  ctx.Annotate(child, "rows=5");
  ctx.EndSpan(child);
  ctx.EndSpan(exec);

  std::string r = ctx.Render();
  EXPECT_NE(r.find("trace 42"), std::string::npos) << r;
  EXPECT_NE(r.find("queue"), std::string::npos) << r;
  EXPECT_NE(r.find("  morsel"), std::string::npos) << r;  // indented child
  EXPECT_NE(r.find("[rows=5]"), std::string::npos) << r;
  // No-ops must not crash or add spans.
  ctx.EndSpan(-1);
  ctx.Annotate(-1, "ignored");
  EXPECT_EQ(ctx.span_count(), 3u);
}

TEST(TraceContextTest, SpanCountIsBounded) {
  TraceContext ctx(1);
  for (size_t i = 0; i < TraceContext::kMaxSpans + 10; ++i) {
    ctx.BeginSpan("s");
  }
  EXPECT_EQ(ctx.span_count(), TraceContext::kMaxSpans);
  EXPECT_EQ(ctx.BeginSpan("overflow"), -1);
}

TEST(TraceContextTest, ConcurrentSpansFromManyThreadsStaySane) {
  TraceContext ctx(7);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ctx]() {
      for (int i = 0; i < 20; ++i) {
        int id = ctx.BeginSpan("worker");
        ctx.Annotate(id, "i");
        ctx.EndSpan(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ctx.span_count(), 80u);
  EXPECT_FALSE(ctx.Render().empty());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

TEST(ExplainAnalyzeTest, AnnotatesEveryStepWithActuals) {
  Corpus& c = SmallCorpus();
  auto r = c.engine->ExplainAnalyze(Backend::kPpf, "//keyword");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& text = r.value();
  EXPECT_NE(text.find("-- actual:"), std::string::npos) << text;
  EXPECT_NE(text.find("est=? act: in="), std::string::npos) << text;
  EXPECT_NE(text.find("time="), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, StaircaseIsRejected) {
  Corpus& c = SmallCorpus();
  auto r = c.engine->ExplainAnalyze(Backend::kStaircase, "//keyword");
  EXPECT_FALSE(r.ok());
}

TEST(ExplainAnalyzeTest, StaticallyEmptyQueryShortCircuits) {
  Corpus& c = SmallCorpus();
  auto r = c.engine->ExplainAnalyze(Backend::kPpf, "/site/nonexistent_tag");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("statically empty"), std::string::npos);
}

// The acceptance bar for parallel tracing: per-step rows in/out totals are
// bit-identical between serial and parallelism=4 runs — morsel-local stats
// merge in Dewey order, so only the skew fields may differ.
TEST(ExplainAnalyzeTest, ParallelStepActualsMatchSerial) {
  Corpus& c = BigCorpus();
  ThreadPool pool(4);
  for (const testutil::NamedQuery& q : testutil::kXMarkQueries) {
    rel::ExecTrace serial_trace;
    auto serial = c.engine->Run(Backend::kPpf, q.xpath, nullptr, &serial_trace);
    ASSERT_TRUE(serial.ok()) << q.id << ": " << serial.status().ToString();

    rel::ExecControl control;
    control.runner = &pool.intra_runner();
    control.parallelism = 4;
    rel::ExecTrace par_trace;
    auto par = c.engine->Run(Backend::kPpf, q.xpath, &control, &par_trace);
    ASSERT_TRUE(par.ok()) << q.id << ": " << par.status().ToString();

    ASSERT_EQ(par_trace.blocks.size(), serial_trace.blocks.size()) << q.id;
    for (size_t b = 0; b < serial_trace.blocks.size(); ++b) {
      ASSERT_EQ(par_trace.blocks[b].size(), serial_trace.blocks[b].size());
      for (size_t s = 0; s < serial_trace.blocks[b].size(); ++s) {
        EXPECT_EQ(par_trace.blocks[b][s].rows_out,
                  serial_trace.blocks[b][s].rows_out)
            << q.id << " block " << b << " step " << s;
        EXPECT_EQ(par_trace.blocks[b][s].rows_in,
                  serial_trace.blocks[b][s].rows_in)
            << q.id << " block " << b << " step " << s;
      }
    }
  }
}

TEST(ExplainAnalyzeTest, ParallelRunReportsMorselSkew) {
  Corpus& c = BigCorpus();
  ThreadPool pool(4);
  rel::ExecControl control;
  control.runner = &pool.intra_runner();
  control.parallelism = 4;
  auto r = c.engine->ExplainAnalyze(Backend::kPpf, "//*[@id]", &control);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().find("morsels="), std::string::npos) << r.value();
  EXPECT_NE(r.value().find("rows/morsel="), std::string::npos) << r.value();
}

// ---------------------------------------------------------------------------
// Service tracing: ring, slow-query log, Prometheus
// ---------------------------------------------------------------------------

TEST(ServiceTraceTest, CompletedQueryLandsInTheRingWithSpans) {
  Corpus& c = SmallCorpus();
  ServiceOptions opts;
  opts.workers = 2;
  QueryService svc(*c.engine, opts);
  auto r = svc.Run({.xpath = "//keyword"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().trace_id, 0u);

  auto traces = svc.RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const TraceRecord& rec = traces.back();
  EXPECT_EQ(rec.trace_id, r.value().trace_id);
  EXPECT_EQ(rec.outcome, "ok");
  EXPECT_NE(rec.spans.find("queue"), std::string::npos) << rec.spans;
  EXPECT_NE(rec.spans.find("execute"), std::string::npos) << rec.spans;
  EXPECT_NE(rec.step_actuals.find("step 1:"), std::string::npos)
      << rec.step_actuals;
  EXPECT_NE(svc.RenderLastTrace().find("outcome=ok"), std::string::npos);
}

TEST(ServiceTraceTest, TraceLevelZeroRecordsNothing) {
  Corpus& c = SmallCorpus();
  ServiceOptions opts;
  opts.workers = 2;
  opts.trace_level = 0;
  QueryService svc(*c.engine, opts);
  auto r = svc.Run({.xpath = "//keyword"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().trace_id, 0u);
  EXPECT_TRUE(svc.RecentTraces().empty());
  EXPECT_NE(svc.RenderLastTrace().find("no traces"), std::string::npos);
}

TEST(ServiceTraceTest, FailedQueryLandsInTheSlowLog) {
  Corpus& c = SmallCorpus();
  ServiceOptions opts;
  opts.workers = 2;
  QueryService svc(*c.engine, opts);

  auto cancel = std::make_shared<service::CancelToken>();
  cancel->Cancel();  // pre-cancelled: deterministic failure
  QueryRequest req;
  req.xpath = "//keyword";
  req.cancel = cancel;
  auto r = svc.Run(std::move(req));
  ASSERT_FALSE(r.ok());

  auto slow = svc.SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow.back().outcome, "cancelled");
  EXPECT_FALSE(slow.back().spans.empty());
}

TEST(ServiceTraceTest, RingStaysBoundedUnderConcurrentTraffic) {
  Corpus& c = SmallCorpus();
  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 0;
  opts.parallelism = 4;
  opts.trace_ring_capacity = 8;
  QueryService svc(*c.engine, opts);

  std::vector<std::future<Result<QueryResponse>>> futs;
  for (int i = 0; i < 32; ++i) {
    QueryRequest req;
    req.xpath = i % 2 == 0 ? "//keyword" : "//*[@id]";
    req.bypass_cache = true;
    futs.push_back(svc.Submit(std::move(req)));
  }
  for (auto& f : futs) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto traces = svc.RecentTraces();
  EXPECT_EQ(traces.size(), 8u);
  for (const TraceRecord& rec : traces) {
    EXPECT_EQ(rec.outcome, "ok");
    EXPECT_FALSE(rec.spans.empty());
  }
}

TEST(ServiceTraceTest, PrometheusExportCoversCountersAndHistograms) {
  Corpus& c = SmallCorpus();
  ServiceOptions opts;
  opts.workers = 2;
  QueryService svc(*c.engine, opts);
  ASSERT_TRUE(svc.Run({.xpath = "//keyword"}).ok());
  ASSERT_TRUE(svc.Run({.xpath = "//keyword"}).ok());  // cache hit

  std::string prom = svc.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE xprel_queries_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("xprel_queries_submitted_total 2"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("xprel_result_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(
      prom.find("xprel_queries_total{backend=\"ppf\",outcome=\"ok\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("xprel_queries_total{backend=\"ppf\",outcome=\"cache_hit\"} 1"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE xprel_query_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("xprel_query_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("xprel_query_latency_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("xprel_queue_depth"), std::string::npos);
  EXPECT_NE(prom.find("xprel_pool_tasks_run_total{lane=\"main\"}"),
            std::string::npos);
}

// An attached durability manager's WAL/checkpoint counters ride along in
// both exports, and a recovery leaves its span tree and counters visible.
TEST(DurabilityObservabilityTest, RecoveryMetricsAndSpansAreExported) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "xprel_obs_durability";
  fs::remove_all(dir);

  data::XMarkOptions opt;
  opt.scale = 0.004;
  const std::string xml_src = xml::SerializeXml(data::GenerateXMark(opt));
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema).value();

  // A short durable run: one insert, one text update, one checkpoint.
  {
    xml::Document doc = xml::ParseXml(xml_src).value();
    auto engine = XPathEngine::Build(doc, graph).value();
    auto mgr = durability::DurabilityManager::Create(dir.string(), doc,
                                                     *engine, {});
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    auto africa = engine->Run(Backend::kPpf, "/site/regions/africa");
    ASSERT_TRUE(africa.ok());
    ASSERT_FALSE(africa.value().nodes.empty());
    ASSERT_TRUE(mgr.value()
                    ->InsertFragment(africa.value().nodes[0], 0,
                                     "<item id=\"obs1\"><name>obs</name>"
                                     "</item>")
                    .ok());
    auto name = engine->Run(Backend::kPpf, "//item/name");
    ASSERT_TRUE(name.ok());
    ASSERT_FALSE(name.value().nodes.empty());
    ASSERT_TRUE(
        mgr.value()->UpdateText(name.value().nodes[0], "observed").ok());
    ASSERT_TRUE(mgr.value()->Checkpoint().ok());

    // Live counters surface through an attached service even pre-recovery.
    QueryService svc(*engine, {.workers = 1});
    svc.AttachDurability(mgr.value().get());
    std::string dump = svc.DumpMetrics();
    EXPECT_NE(dump.find("durability: wal_records=2"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("checkpoints=1"), std::string::npos) << dump;
    svc.AttachDurability(nullptr);  // detach before the manager dies
    EXPECT_EQ(svc.DumpMetrics().find("durability:"), std::string::npos);
  }

  // Recover with an external trace context: the span tree must show the
  // recovery phases, and the report must land in the manager + exports.
  TraceContext trace(0xD0D0);
  auto recovered = durability::OpenOrRecover(dir.string(), graph, {}, {},
                                             &trace);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const durability::RecoveryReport& report = recovered.value().report;
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_NE(report.trace.find("recover"), std::string::npos) << report.trace;
  EXPECT_NE(report.trace.find("recover.snapshot"), std::string::npos)
      << report.trace;
  EXPECT_NE(report.trace.find("recover.replay"), std::string::npos)
      << report.trace;
  std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("recover.snapshot"), std::string::npos)
      << rendered;

  QueryService svc(*recovered.value().engine, {.workers = 1});
  svc.AttachDurability(recovered.value().manager.get());
  ASSERT_TRUE(svc.Run({.xpath = "//item/name"}).ok());

  std::string dump = svc.DumpMetrics();
  EXPECT_NE(dump.find("recovery: used_snapshot=1"), std::string::npos)
      << dump;
  std::string prom = svc.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE xprel_wal_records_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("xprel_checkpoints_total"), std::string::npos);
  EXPECT_NE(prom.find("xprel_recovery_replayed_total"), std::string::npos);
  EXPECT_NE(prom.find("xprel_applied_lsn"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ServiceTraceTest, CumulativeBucketsAreMonotone) {
  MetricsRegistry reg;
  reg.latency.RecordUs(10);
  reg.latency.RecordUs(100);
  reg.latency.RecordUs(1000);
  std::string prom = reg.RenderPrometheus();
  // Parse the latency bucket lines and check monotonicity.
  uint64_t prev = 0;
  size_t pos = 0;
  int seen = 0;
  while ((pos = prom.find("xprel_query_latency_us_bucket{le=", pos)) !=
         std::string::npos) {
    size_t space = prom.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    uint64_t v = std::stoull(prom.substr(space + 2));
    EXPECT_GE(v, prev);
    prev = v;
    ++seen;
    pos = space;
  }
  EXPECT_GE(seen, 3);
  EXPECT_EQ(prev, 3u);  // +Inf bucket equals count
}

}  // namespace
}  // namespace xprel
