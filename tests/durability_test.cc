// Durability subsystem tests: WAL and snapshot round trips, checkpointed
// recovery, the deterministic crash-recovery sweep (every wal./snap. fault
// point plus byte-granular torn-tail truncation — the recovered engine must
// be indistinguishable from the dml_oracle reshred oracle on every
// backend), the abort-marker protocol, and checkpoint-vs-mutator-vs-reader
// concurrency (this binary is part of the TSAN suite).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/rng.h"
#include "data/xmark.h"
#include "dml/mutator.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "engine/engine.h"
#include "shred/schema_map.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xsd/xsd_parser.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XPREL_TSAN_BUILD 1
#endif
#endif

namespace xprel {
namespace {

using dml::DocumentMutator;
using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::OpenOrRecover;
using durability::RecoveredEngine;
using engine::Backend;
using engine::XPathEngine;

namespace fs = std::filesystem;

#ifdef XPREL_TSAN_BUILD
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif

// --- oracle scaffolding (the dml_oracle_test methodology) ---

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

std::unique_ptr<Corpus> MakeCorpus(xml::Document doc) {
  auto c = std::make_unique<Corpus>();
  c->doc = std::move(doc);
  auto schema = xsd::ParseXsd(data::XMarkXsd());
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  if (!schema.ok()) return nullptr;
  c->schema = std::move(schema).value();
  auto graph = xsd::SchemaGraph::Build(c->schema);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return nullptr;
  c->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());
  auto eng = XPathEngine::Build(c->doc, *c->graph);
  EXPECT_TRUE(eng.ok()) << eng.status().ToString();
  if (!eng.ok()) return nullptr;
  c->engine = std::move(eng).value();
  return c;
}

// Serialized live subtree of each result node, sorted — a node-id-free
// fingerprint comparable between independently shredded engines.
std::vector<std::string> Shapes(const xml::Document& doc,
                                const std::vector<xml::NodeId>& nodes) {
  struct Ser {
    const xml::Document& d;
    void Node(xml::NodeId n, std::string& s) const {
      const xml::Node& node = d.node(n);
      if (node.kind == xml::NodeKind::kText) {
        s += xml::EscapeXml(node.text);
        return;
      }
      s += '<';
      s += node.name;
      for (const xml::Attribute& a : node.attributes) {
        s += ' ';
        s += a.name;
        s += "=\"";
        s += xml::EscapeXml(a.value);
        s += '"';
      }
      s += '>';
      for (xml::NodeId c : node.children) Node(c, s);
      s += "</";
      s += node.name;
      s += '>';
    }
  };
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (xml::NodeId id : nodes) {
    std::string frag;
    Ser{doc}.Node(id, frag);
    out.push_back(std::move(frag));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::multiset<std::string> LivePathSet(const rel::Database& db) {
  std::multiset<std::string> out;
  const rel::Table* paths = db.FindTable(shred::kPathsTable);
  if (paths == nullptr) return out;
  for (rel::RowId r = 0; r < static_cast<rel::RowId>(paths->row_count());
       ++r) {
    if (paths->row_dead(r)) continue;
    out.insert(paths->at(r, 1).AsString());
  }
  return out;
}

const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};

const char* kQueries[] = {
    "//item",
    "//item/name",
    "//keyword",
    "/site/regions/africa/item",
    "/site/regions/samerica/item/location",
    "//item[incategory/@category = 'category0']/name",
    "//description//keyword",
    "/site/people/person/name",
};

const Backend kBackends[] = {Backend::kPpf, Backend::kEdgePpf,
                             Backend::kAccelerator, Backend::kStaircase,
                             Backend::kNaive};

std::string ItemFragment(int id, bool keyword, int incategories) {
  std::string s = "<item id=\"dur" + std::to_string(id) + "\">";
  s += "<location>Honduras</location><quantity>2</quantity>";
  s += "<name>durable item " + std::to_string(id) + "</name>";
  s += "<payment>Cash</payment><description><text>generated ";
  if (keyword) s += "<keyword>durkw</keyword> ";
  s += "payload</text></description>";
  s += "<shipping>Will ship only within country</shipping>";
  for (int i = 0; i < incategories; ++i) {
    s += "<incategory category=\"category0\"/>";
  }
  s += "</item>";
  return s;
}

// The recovered engine must be bit-identical to the oracle: same shapes for
// every query on every backend, same live Paths multiset on both stores.
void ExpectMatchesOracle(const xml::Document& got_doc, const XPathEngine& got,
                         const xml::Document& want_doc,
                         const XPathEngine& want, size_t nqueries) {
  EXPECT_EQ(LivePathSet(got.ppf_store()->db()),
            LivePathSet(want.ppf_store()->db()))
      << "schema-aware Paths diverged from oracle";
  EXPECT_EQ(LivePathSet(got.edge_store()->db()),
            LivePathSet(want.edge_store()->db()))
      << "Edge Paths diverged from oracle";
  EXPECT_EQ(got.ppf_store()->live_paths(), want.ppf_store()->live_paths());
  nqueries = std::min(nqueries, std::size(kQueries));
  for (size_t qi = 0; qi < nqueries; ++qi) {
    const char* q = kQueries[qi];
    auto want_out = want.Run(Backend::kPpf, q);
    ASSERT_TRUE(want_out.ok()) << q << ": " << want_out.status().ToString();
    auto expected = Shapes(want_doc, want_out.value().nodes);
    for (Backend b : kBackends) {
      auto out = got.Run(b, q);
      ASSERT_TRUE(out.ok())
          << q << " on " << BackendName(b) << ": " << out.status().ToString();
      EXPECT_EQ(Shapes(got_doc, out.value().nodes), expected)
          << q << " on " << BackendName(b) << " diverges from oracle";
    }
  }
}

// --- recorded mutation scripts ---

struct Op {
  enum Kind { kInsert, kDelete, kUpdate };
  Kind kind;
  xml::NodeId target = xml::kNoNode;
  size_t index = 0;
  std::string payload;
};

xml::NodeId FirstResult(const XPathEngine& eng, const std::string& q) {
  auto r = eng.Run(Backend::kPpf, q);
  if (!r.ok() || r.value().nodes.empty()) return xml::kNoNode;
  return r.value().nodes.front();
}

// Runs `n` random mutations through the durable manager (the
// dml_oracle_test distribution: half inserts, then deletes, then text
// updates) and records the ops the manager acknowledged. Ops whose target
// resolution finds nothing are skipped entirely; ops the manager rejects
// (injected faults) are attempted but not recorded — recovery must not
// resurrect them.
void RunDurableScript(DurabilityManager& mgr, const XPathEngine& eng,
                      int n, uint64_t seed, std::vector<Op>* committed,
                      std::vector<uint64_t>* tail_offsets = nullptr) {
  data::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const uint64_t dice = rng.Below(10);
    Op op;
    Result<dml::MutationResult> r = Status::Internal("unset");
    if (dice < 5) {
      const char* region = kRegions[rng.Below(6)];
      op.kind = Op::kInsert;
      op.target = FirstResult(eng, std::string("/site/regions/") + region);
      op.index = static_cast<size_t>(rng.Below(4));
      op.payload = ItemFragment(i, rng.Below(2) == 0,
                                static_cast<int>(rng.Below(3)));
      if (op.target == xml::kNoNode) continue;
      r = mgr.InsertFragment(op.target, op.index, op.payload);
    } else if (dice < 8) {
      const char* region = kRegions[rng.Below(6)];
      op.kind = Op::kDelete;
      op.target =
          FirstResult(eng, std::string("/site/regions/") + region + "/item");
      if (op.target == xml::kNoNode) continue;  // region out of items
      r = mgr.DeleteSubtree(op.target);
    } else {
      op.kind = Op::kUpdate;
      op.target = FirstResult(eng, "//item/name");
      op.payload = "updated name " + std::to_string(i);
      if (op.target == xml::kNoNode) continue;
      r = mgr.UpdateText(op.target, op.payload);
    }
    if (r.ok()) {
      committed->push_back(std::move(op));
      if (tail_offsets != nullptr) {
        tail_offsets->push_back(mgr.wal_tail_offset());
      }
    }
  }
}

// Applies a committed-op prefix to the oracle. Node ids are stable across
// identically parsed documents, so recorded targets resolve unchanged.
void ApplyOps(DocumentMutator& mut, const std::vector<Op>& ops, size_t from,
              size_t to) {
  for (size_t i = from; i < to; ++i) {
    const Op& op = ops[i];
    Result<dml::MutationResult> r = Status::Internal("unset");
    switch (op.kind) {
      case Op::kInsert:
        r = mut.InsertFragment(op.target, op.index, op.payload);
        break;
      case Op::kDelete:
        r = mut.DeleteSubtree(op.target);
        break;
      case Op::kUpdate:
        r = mut.UpdateText(op.target, op.payload);
        break;
    }
    ASSERT_TRUE(r.ok()) << "oracle apply " << i << ": "
                        << r.status().ToString();
  }
}

std::string FreshDir(const std::string& name) {
  fs::path p = fs::path(::testing::TempDir()) / ("xprel_durability_" + name);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The canonical pristine input: serialize-then-parse makes the in-memory
// document the exact fixed point of SerializeXml, so the manager's
// source.xml fallback reshreds to identical node ids.
std::string PristineXml(double scale = 0.004) {
  data::XMarkOptions opt;
  opt.scale = scale;
  return xml::SerializeXml(data::GenerateXMark(opt));
}

// --- unit round trips ---

TEST(WalTest, RoundTripsRecordsAndDetectsTornTail) {
  const std::string dir = FreshDir("wal_roundtrip");
  const std::string path = dir + "/seg.wal";
  {
    auto w = durability::WalWriter::Create(path, 7, /*fsync_each=*/false);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    durability::WalRecord ins;
    ins.lsn = 7;
    ins.type = durability::WalRecordType::kInsertFragment;
    ins.target = 42;
    ins.child_index = 3;
    ins.payload = "<item/>";
    ASSERT_TRUE(w.value()->Append(ins).ok());
    durability::WalRecord del;
    del.lsn = 8;
    del.type = durability::WalRecordType::kDeleteSubtree;
    del.target = 99;
    ASSERT_TRUE(w.value()->Append(del).ok());
    durability::WalRecord abort;
    abort.lsn = 9;
    abort.type = durability::WalRecordType::kAbort;
    abort.aborted_lsn = 8;
    ASSERT_TRUE(w.value()->Append(abort).ok());
  }
  auto seg = durability::ReadWalSegment(path);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg.value().first_lsn, 7u);
  EXPECT_FALSE(seg.value().torn);
  ASSERT_EQ(seg.value().records.size(), 3u);
  EXPECT_EQ(seg.value().records[0].payload, "<item/>");
  EXPECT_EQ(seg.value().records[0].child_index, 3u);
  EXPECT_EQ(seg.value().records[1].target, 99);
  EXPECT_EQ(seg.value().records[2].aborted_lsn, 8u);

  // Chop one byte off the tail: the last record is torn, the prefix stays.
  std::string bytes = ReadFile(path);
  WriteFile(path, std::string_view(bytes).substr(0, bytes.size() - 1));
  auto torn = durability::ReadWalSegment(path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn.value().torn);
  EXPECT_EQ(torn.value().records.size(), 2u);

  // Flip a payload byte in the middle: everything from that record on is
  // gone, everything before survives.
  bytes[durability::kWalHeaderSize + 12] ^= 0x40;
  WriteFile(path, bytes);
  auto flipped = durability::ReadWalSegment(path);
  ASSERT_TRUE(flipped.ok());
  EXPECT_TRUE(flipped.value().torn);
  EXPECT_EQ(flipped.value().records.size(), 0u);
  fs::remove_all(dir);
}

TEST(SnapshotTest, RoundTripRestoresMutatedEngine) {
  auto live = MakeCorpus(xml::ParseXml(PristineXml()).value());
  ASSERT_NE(live, nullptr);
  DocumentMutator mut(live->doc, *live->engine);
  ASSERT_TRUE(mut.InsertFragmentAt("/site/regions/africa", 0,
                                   ItemFragment(1, true, 2))
                  .ok());
  ASSERT_TRUE(mut.DeleteSubtreeAt("/site/regions/asia/item").ok());
  ASSERT_TRUE(mut.UpdateTextAt("//item/name", "snapped").ok());

  const std::string dir = FreshDir("snap_roundtrip");
  const std::string path = dir + "/state.snap";
  durability::SnapshotMeta meta;
  meta.applied_lsn = 3;
  meta.next_lsn = 4;
  ASSERT_TRUE(durability::WriteSnapshotFile(path, live->doc,
                                            live->engine->ppf_store(),
                                            live->engine->edge_store(), meta)
                  .ok());

  auto restored = durability::ReadSnapshotFile(path, *live->graph);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().meta.applied_lsn, 3u);
  EXPECT_EQ(restored.value().meta.next_lsn, 4u);
  auto rebuilt = XPathEngine::BuildFromStores(
      *restored.value().doc, *live->graph, std::move(restored.value().ppf),
      std::move(restored.value().edge));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ExpectMatchesOracle(*restored.value().doc, *rebuilt.value(), live->doc,
                      *live->engine, std::size(kQueries));

  // A flipped byte inside a section must be a clean InvalidArgument.
  std::string bytes = ReadFile(path);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(path, bytes);
  auto corrupt = durability::ReadSnapshotFile(path, *live->graph);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

TEST(DurabilityManagerTest, CreateRefusesDirectoryWithExistingState) {
  auto live = MakeCorpus(xml::ParseXml(PristineXml()).value());
  ASSERT_NE(live, nullptr);
  const std::string dir = FreshDir("create_refuses");
  auto first =
      DurabilityManager::Create(dir, live->doc, *live->engine, {});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second =
      DurabilityManager::Create(dir, live->doc, *live->engine, {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

// --- checkpointed recovery against the oracle ---

TEST(DurabilityRecoveryTest, CheckpointedRecoveryMatchesOracle) {
  const std::string xml_src = PristineXml();
  const std::string dir = FreshDir("checkpointed");
  const int n = kTsan ? 10 : 25;

  std::vector<Op> committed;
  {
    auto live = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(live, nullptr);
    DurabilityOptions opts;
    opts.fsync_wal = false;
    opts.checkpoint_wal_bytes = 2048;  // several checkpoints mid-sequence
    auto mgr =
        DurabilityManager::Create(dir, live->doc, *live->engine, opts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    RunDurableScript(**mgr, *live->engine, n, 0xD31, &committed);
    ASSERT_GE(committed.size(), 5u);
    EXPECT_GE(mgr.value()->stats().checkpoints.load(), 1u);
  }  // simulated crash: no clean shutdown beyond closing fds

  auto live2 = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(live2, nullptr);
  auto recovered = OpenOrRecover(dir, *live2->graph);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().report.used_snapshot);
  EXPECT_FALSE(recovered.value().report.reshred_fallback);
  EXPECT_NE(recovered.value().report.trace.find("recover.replay"),
            std::string::npos);

  auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(oracle, nullptr);
  DocumentMutator omut(oracle->doc, *oracle->engine);
  ApplyOps(omut, committed, 0, committed.size());
  ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                      oracle->doc, *oracle->engine, kTsan ? 4 : 8);

  // Keep mutating through the recovered manager and recover again: the
  // rotated segments and the second-generation snapshot must stay
  // contiguous.
  std::vector<Op> more;
  RunDurableScript(*recovered.value().manager, *recovered.value().engine,
                   kTsan ? 4 : 8, 0xBEEF, &more);
  ASSERT_GE(more.size(), 1u);
  ASSERT_TRUE(recovered.value().manager->Checkpoint().ok());
  recovered.value().manager.reset();  // close the WAL before reopening

  auto recovered2 = OpenOrRecover(dir, *live2->graph);
  ASSERT_TRUE(recovered2.ok()) << recovered2.status().ToString();
  ApplyOps(omut, more, 0, more.size());
  ExpectMatchesOracle(*recovered2.value().doc, *recovered2.value().engine,
                      oracle->doc, *oracle->engine, kTsan ? 4 : 8);
}

TEST(DurabilityRecoveryTest, DegradesToReshredWhenEverySnapshotCorrupt) {
  const std::string xml_src = PristineXml();
  const std::string dir = FreshDir("reshred");
  const int n = kTsan ? 8 : 15;

  std::vector<Op> committed;
  {
    auto live = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(live, nullptr);
    DurabilityOptions opts;
    opts.checkpoint_wal_bytes = 2048;
    auto mgr =
        DurabilityManager::Create(dir, live->doc, *live->engine, opts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    RunDurableScript(**mgr, *live->engine, n, 0xD31, &committed);
    EXPECT_GE(mgr.value()->stats().checkpoints.load(), 1u);
  }

  // Flip a byte in the middle of every snapshot: recovery must fall back
  // to reshredding source.xml and replaying the whole log — losslessly,
  // because history is retained.
  int corrupted = 0;
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (ent.path().extension() != ".snap") continue;
    std::string bytes = ReadFile(ent.path().string());
    bytes[bytes.size() / 2] ^= 0x10;
    WriteFile(ent.path().string(), bytes);
    ++corrupted;
  }
  ASSERT_GE(corrupted, 1);

  auto live2 = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(live2, nullptr);
  auto recovered = OpenOrRecover(dir, *live2->graph);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value().report.reshred_fallback);
  EXPECT_GE(recovered.value().report.corrupt_snapshots,
            static_cast<uint64_t>(corrupted));
  EXPECT_EQ(recovered.value().report.replayed, committed.size());
  EXPECT_NE(recovered.value().report.trace.find("recover.reshred"),
            std::string::npos);
  EXPECT_GE(
      recovered.value().manager->stats().recovery_reshred_fallbacks.load(),
      1u);

  auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(oracle, nullptr);
  DocumentMutator omut(oracle->doc, *oracle->engine);
  ApplyOps(omut, committed, 0, committed.size());
  ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                      oracle->doc, *oracle->engine, kTsan ? 4 : 8);
}

// --- the crash sweep, phase A: every durability fault point ---

TEST(CrashSweepTest, EveryDurabilityFaultPointRecoversToOracle) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const std::string xml_src = PristineXml();
  auto& inj = fault::FaultInjector::Instance();

  std::vector<std::string> points = fault::KnownPointsWithPrefix("wal.");
  for (const std::string& p : fault::KnownPointsWithPrefix("snap.")) {
    points.push_back(p);
  }
  ASSERT_EQ(points.size(), 7u);

  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    inj.DisarmAll();
    inj.ResetCounts();
    const std::string dir = FreshDir("sweep_" + point);

    // wal.open's first crossing is manager creation; arm the second so the
    // fault lands on a mid-run segment rotation instead. wal.append and
    // wal.sync cross on every record; 13 puts the failure mid-sequence.
    // snap.* points fire at the first checkpoint (or, for snap.load, at
    // recovery).
    uint64_t nth = 1;
    if (point == "wal.open") nth = 2;
    if (point == "wal.append" || point == "wal.sync") nth = 13;
    inj.Arm(point, nth);

    std::vector<Op> committed;
    {
      auto live = MakeCorpus(xml::ParseXml(xml_src).value());
      ASSERT_NE(live, nullptr);
      DurabilityOptions opts;
      opts.fsync_wal = true;  // wal.sync must be a live crossing
      opts.checkpoint_wal_bytes = 2048;
      auto mgr =
          DurabilityManager::Create(dir, live->doc, *live->engine, opts);
      ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
      RunDurableScript(**mgr, *live->engine, 30, 0xD31, &committed);
    }  // crash

    auto fresh = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(fresh, nullptr);
    auto recovered = OpenOrRecover(dir, *fresh->graph);
    ASSERT_TRUE(recovered.ok())
        << point << ": " << recovered.status().ToString();
    EXPECT_GE(inj.FiredCount(point), 1u)
        << "the sweep never exercised " << point;

    auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(oracle, nullptr);
    DocumentMutator omut(oracle->doc, *oracle->engine);
    ApplyOps(omut, committed, 0, committed.size());
    ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                        oracle->doc, *oracle->engine, std::size(kQueries));
    fs::remove_all(dir);
  }
  inj.DisarmAll();
}

// Arm the in-memory apply itself: the WAL record lands, the apply rolls
// back, the abort marker is appended — and recovery must skip exactly that
// record.
TEST(CrashSweepTest, AbortMarkerKeepsFailedMutationOutOfRecovery) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const std::string xml_src = PristineXml();
  const std::string dir = FreshDir("abort_marker");
  auto& inj = fault::FaultInjector::Instance();
  inj.DisarmAll();
  inj.ResetCounts();

  std::vector<Op> committed;
  {
    auto live = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(live, nullptr);
    DurabilityOptions opts;
    opts.checkpoint_wal_bytes = 0;  // keep everything in one segment
    auto mgr = DurabilityManager::Create(dir, live->doc, *live->engine, opts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();

    xml::NodeId africa = FirstResult(*live->engine, "/site/regions/africa");
    ASSERT_NE(africa, xml::kNoNode);

    inj.Arm("dml.apply", 1);
    auto failed =
        mgr.value()->InsertFragment(africa, 0, ItemFragment(100, true, 1));
    ASSERT_FALSE(failed.ok());
    inj.DisarmAll();
    EXPECT_EQ(mgr.value()->stats().wal_aborts.load(), 1u);

    auto good =
        mgr.value()->InsertFragment(africa, 0, ItemFragment(101, false, 2));
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    Op op;
    op.kind = Op::kInsert;
    op.target = africa;
    op.index = 0;
    op.payload = ItemFragment(101, false, 2);
    committed.push_back(op);
  }

  auto fresh = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(fresh, nullptr);
  auto recovered = OpenOrRecover(dir, *fresh->graph);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().report.skipped_aborted, 1u);
  EXPECT_EQ(recovered.value().report.replayed, 1u);

  auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(oracle, nullptr);
  DocumentMutator omut(oracle->doc, *oracle->engine);
  ApplyOps(omut, committed, 0, committed.size());
  ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                      oracle->doc, *oracle->engine, 4);
  fs::remove_all(dir);
}

// --- the crash sweep, phase B: byte-granular torn tails (all builds) ---

TEST(CrashSweepTest, TornTailByteSweepRecoversEveryPrefix) {
  const std::string xml_src = PristineXml();
  const std::string run_dir = FreshDir("torn_run");
  const int n = kTsan ? 6 : 12;

  std::vector<Op> committed;
  std::vector<uint64_t> boundaries;  // tail offset after each committed op
  std::string wal_bytes;
  {
    auto live = MakeCorpus(xml::ParseXml(xml_src).value());
    ASSERT_NE(live, nullptr);
    DurabilityOptions opts;
    opts.checkpoint_wal_bytes = 0;  // single segment, no snapshots
    auto mgr = DurabilityManager::Create(run_dir, live->doc, *live->engine,
                                         opts);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    RunDurableScript(**mgr, *live->engine, n, 0x7A11, &committed,
                     &boundaries);
    // Two short text updates close the sequence so the byte-granular tail
    // window stays small enough to sweep exhaustively.
    xml::NodeId name = FirstResult(*live->engine, "//item/name");
    ASSERT_NE(name, xml::kNoNode);
    for (int i = 0; i < 2; ++i) {
      Op op;
      op.kind = Op::kUpdate;
      op.target = name;
      op.payload = "torn" + std::to_string(i);
      auto r = mgr.value()->UpdateText(op.target, op.payload);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      committed.push_back(op);
      boundaries.push_back(mgr.value()->wal_tail_offset());
    }
    wal_bytes = ReadFile(mgr.value()->wal_path());
  }
  const size_t m = committed.size();
  ASSERT_GE(m, 4u);
  ASSERT_EQ(boundaries.size(), m);
  ASSERT_EQ(boundaries.back(), wal_bytes.size());

  // Crash points: every record boundary (including "no records yet"), plus
  // every byte offset inside the last two records.
  std::vector<std::pair<uint64_t, size_t>> cases;  // (offset, expected ops)
  cases.push_back({durability::kWalHeaderSize, 0});
  for (size_t i = 0; i < m; ++i) cases.push_back({boundaries[i], i + 1});
  const uint64_t byte_sweep_from = boundaries[m - 2];
  const uint64_t step = kTsan ? 7 : 1;
  for (uint64_t t = byte_sweep_from + step; t < boundaries[m - 1];
       t += step) {
    if (t == boundaries[m - 2]) continue;
    // Offsets strictly inside a record recover the ops before it.
    size_t prefix = 0;
    while (prefix < m && boundaries[prefix] <= t) ++prefix;
    cases.push_back({t, prefix});
  }
  std::sort(cases.begin(), cases.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  // One oracle, advanced incrementally as the expected prefix grows.
  auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(oracle, nullptr);
  DocumentMutator omut(oracle->doc, *oracle->engine);
  size_t oracle_applied = 0;

  auto graph_holder = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(graph_holder, nullptr);
  const std::string source_xml =
      ReadFile(DurabilityManager::SourceXmlPath(run_dir));

  size_t case_index = 0;
  for (const auto& [offset, prefix] : cases) {
    SCOPED_TRACE("offset=" + std::to_string(offset) +
                 " prefix=" + std::to_string(prefix));
    ASSERT_NO_FATAL_FAILURE(ApplyOps(omut, committed, oracle_applied, prefix));
    oracle_applied = std::max(oracle_applied, prefix);

    const std::string dir =
        FreshDir("torn_case_" + std::to_string(case_index++));
    WriteFile(DurabilityManager::SourceXmlPath(dir), source_xml);
    WriteFile(DurabilityManager::WalSegmentPath(dir, 1),
              std::string_view(wal_bytes).substr(0, offset));

    auto recovered = OpenOrRecover(dir, *graph_holder->graph);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(recovered.value().report.replayed, prefix);
    EXPECT_TRUE(recovered.value().report.reshred_fallback);
    if (offset != durability::kWalHeaderSize &&
        std::find(boundaries.begin(), boundaries.end(), offset) ==
            boundaries.end()) {
      EXPECT_EQ(recovered.value().report.torn_segments, 1u);
    }
    // Bit-identical to the oracle prefix — paths exactly, plus a query
    // sample on every backend (the full query matrix per offset would
    // dominate the suite's runtime; boundary cases get a deeper check).
    const bool at_boundary = std::find(boundaries.begin(), boundaries.end(),
                                       offset) != boundaries.end() ||
                             offset == durability::kWalHeaderSize;
    ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                        oracle->doc, *oracle->engine,
                        at_boundary ? (kTsan ? 4 : 8) : 2);
    fs::remove_all(dir);
  }
  fs::remove_all(run_dir);
}

// --- concurrency: checkpointer vs mutator vs readers (TSAN) ---

TEST(DurabilityConcurrencyTest, CheckpointerMutatorAndReadersInterleave) {
  const std::string xml_src = PristineXml(0.003);
  const std::string dir = FreshDir("concurrent");
  auto live = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(live, nullptr);

  DurabilityOptions opts;
  opts.checkpoint_wal_bytes = 16384;  // several checkpoints over the run
  opts.checkpointer_interval = std::chrono::milliseconds(5);
  auto mgr = DurabilityManager::Create(dir, live->doc, *live->engine, opts);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  mgr.value()->StartCheckpointer();

  std::atomic<bool> done{false};
  std::atomic<int> reader_errors{0};
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      auto r = live->engine->Run(Backend::kPpf, "//item/name");
      if (!r.ok()) reader_errors.fetch_add(1, std::memory_order_relaxed);
      auto e = live->engine->Run(Backend::kEdgePpf, "//keyword");
      if (!e.ok()) reader_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader), r2(reader);

  std::vector<Op> committed;
  RunDurableScript(**mgr, *live->engine, kTsan ? 10 : 20, 0xC0C0,
                   &committed);
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  mgr.value()->StopCheckpointer();
  EXPECT_EQ(reader_errors.load(), 0);
  ASSERT_GE(committed.size(), 5u);
  // Explicit final checkpoint must succeed after the background thread is
  // gone, and the recovered image must match the oracle.
  ASSERT_TRUE(mgr.value()->Checkpoint().ok());
  mgr.value().reset();  // release the WAL before reopening the directory

  auto fresh = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(fresh, nullptr);
  auto recovered = OpenOrRecover(dir, *fresh->graph);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  auto oracle = MakeCorpus(xml::ParseXml(xml_src).value());
  ASSERT_NE(oracle, nullptr);
  DocumentMutator omut(oracle->doc, *oracle->engine);
  ApplyOps(omut, committed, 0, committed.size());
  ExpectMatchesOracle(*recovered.value().doc, *recovered.value().engine,
                      oracle->doc, *oracle->engine, kTsan ? 3 : 6);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace xprel
