// Unit + property tests for the regex engine, including differential
// testing against std::regex's POSIX-extended grammar.

#include <regex>
#include <string>

#include <gtest/gtest.h>

#include "rex/regex.h"

namespace xprel::rex {
namespace {

bool Match(const char* pattern, const char* text) {
  auto re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << pattern << ": " << re.status().ToString();
  return re.ok() && re.value().Matches(text);
}

TEST(RexTest, Literals) {
  EXPECT_TRUE(Match("abc", "abc"));
  EXPECT_TRUE(Match("abc", "xxabcxx"));  // substring semantics
  EXPECT_FALSE(Match("abc", "abx"));
  EXPECT_TRUE(Match("", "anything"));
}

TEST(RexTest, Anchors) {
  EXPECT_TRUE(Match("^abc$", "abc"));
  EXPECT_FALSE(Match("^abc$", "xabc"));
  EXPECT_FALSE(Match("^abc$", "abcx"));
  EXPECT_TRUE(Match("^a", "abc"));
  EXPECT_FALSE(Match("^b", "abc"));
  EXPECT_TRUE(Match("c$", "abc"));
  EXPECT_FALSE(Match("b$", "abc"));
}

TEST(RexTest, Repetition) {
  EXPECT_TRUE(Match("^ab*c$", "ac"));
  EXPECT_TRUE(Match("^ab*c$", "abbbc"));
  EXPECT_FALSE(Match("^ab+c$", "ac"));
  EXPECT_TRUE(Match("^ab+c$", "abc"));
  EXPECT_TRUE(Match("^ab?c$", "ac"));
  EXPECT_TRUE(Match("^ab?c$", "abc"));
  EXPECT_FALSE(Match("^ab?c$", "abbc"));
}

TEST(RexTest, BoundedRepetition) {
  EXPECT_TRUE(Match("^a{3}$", "aaa"));
  EXPECT_FALSE(Match("^a{3}$", "aa"));
  EXPECT_TRUE(Match("^a{2,}$", "aaaa"));
  EXPECT_FALSE(Match("^a{2,}$", "a"));
  EXPECT_TRUE(Match("^a{1,3}$", "aa"));
  EXPECT_FALSE(Match("^a{1,3}$", "aaaa"));
  EXPECT_TRUE(Match("^a{0,1}$", ""));
}

TEST(RexTest, Alternation) {
  EXPECT_TRUE(Match("^(cat|dog)$", "cat"));
  EXPECT_TRUE(Match("^(cat|dog)$", "dog"));
  EXPECT_FALSE(Match("^(cat|dog)$", "cow"));
  EXPECT_TRUE(Match("^a(b|c)*d$", "abcbcd"));
}

TEST(RexTest, CharClasses) {
  EXPECT_TRUE(Match("^[abc]+$", "cab"));
  EXPECT_FALSE(Match("^[abc]+$", "abd"));
  EXPECT_TRUE(Match("^[a-z]+$", "hello"));
  EXPECT_FALSE(Match("^[a-z]+$", "Hello"));
  EXPECT_TRUE(Match("^[^/]+$", "segment"));
  EXPECT_FALSE(Match("^[^/]+$", "a/b"));
  EXPECT_TRUE(Match("^[-a]+$", "a-a"));  // literal '-' at edges
  EXPECT_TRUE(Match("^[]]$", "]"));      // ']' first is literal
}

TEST(RexTest, Escapes) {
  EXPECT_TRUE(Match("^a\\.b$", "a.b"));
  EXPECT_FALSE(Match("^a\\.b$", "axb"));
  EXPECT_TRUE(Match("^a\\*$", "a*"));
  EXPECT_TRUE(Match("^\\(x\\)$", "(x)"));
}

TEST(RexTest, DotMatchesSlash) {
  // The path language relies on '.' crossing '/' boundaries.
  EXPECT_TRUE(Match("^/a/(.+/)?b$", "/a/b"));
  EXPECT_TRUE(Match("^/a/(.+/)?b$", "/a/x/y/b"));
  EXPECT_FALSE(Match("^/a/(.+/)?b$", "/a/xb"));
}

TEST(RexTest, PaperTable1Patterns) {
  // Table 1 rows, adapted to leading-slash path storage.
  EXPECT_TRUE(Match("^.*/B/C$", "/A/B/C"));
  EXPECT_FALSE(Match("^.*/B/C$", "/A/B/C/D"));
  EXPECT_TRUE(Match("^/A/B/(.+/)?F$", "/A/B/F"));
  EXPECT_TRUE(Match("^/A/B/(.+/)?F$", "/A/B/C/E/F"));
  EXPECT_FALSE(Match("^/A/B/(.+/)?F$", "/A/F"));
  EXPECT_TRUE(Match("^.*/C/[^/]+/F$", "/A/B/C/E/F"));
  EXPECT_FALSE(Match("^.*/C/[^/]+/F$", "/A/B/C/F"));
}

TEST(RexTest, ParseErrors) {
  EXPECT_FALSE(Regex::Compile("a(b").ok());
  EXPECT_FALSE(Regex::Compile("a)b").ok());
  EXPECT_FALSE(Regex::Compile("[abc").ok());
  EXPECT_FALSE(Regex::Compile("a{2,1}").ok());
  EXPECT_FALSE(Regex::Compile("*a").ok());
  EXPECT_FALSE(Regex::Compile("a\\").ok());
  EXPECT_FALSE(Regex::Compile("a{99999}").ok());
}

TEST(RexTest, FullMatchIgnoresAnchoring) {
  auto re = Regex::Compile("b+").value();
  EXPECT_TRUE(re.FullMatch("bbb"));
  EXPECT_FALSE(re.FullMatch("abbb"));
  EXPECT_FALSE(re.FullMatch("bbba"));
}

TEST(RexTest, NoBacktrackingBlowup) {
  // (a+)+b against aaaa...c is exponential for backtracking engines.
  std::string text(64, 'a');
  text.push_back('c');
  auto re = Regex::Compile("^(a+)+b$").value();
  EXPECT_FALSE(re.Matches(text));  // must terminate quickly
}

// --- differential sweep against std::regex (POSIX extended) ---------------

struct DiffCase {
  const char* pattern;
};

class RexDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(RexDifferentialTest, AgreesWithStdRegex) {
  const char* pattern = GetParam().pattern;
  auto mine = Regex::Compile(pattern);
  ASSERT_TRUE(mine.ok()) << mine.status().ToString();
  std::regex theirs(pattern, std::regex::extended);

  // Enumerate all strings over {a, b, /} up to length 5.
  const char alphabet[] = {'a', 'b', '/'};
  std::vector<std::string> inputs = {""};
  for (int len = 1; len <= 5; ++len) {
    size_t start = inputs.size();
    size_t prev_start = 0;
    // strings of length len-1 occupy [prev_start_of_len-1, start)
    // simpler: regenerate from all current entries of length len-1
    std::vector<std::string> next;
    for (const std::string& s : inputs) {
      if (s.size() == static_cast<size_t>(len - 1)) {
        for (char c : alphabet) next.push_back(s + c);
      }
    }
    inputs.insert(inputs.end(), next.begin(), next.end());
    (void)start;
    (void)prev_start;
  }
  for (const std::string& s : inputs) {
    bool a = mine.value().Matches(s);
    bool b = std::regex_search(s, theirs);
    EXPECT_EQ(a, b) << "pattern '" << pattern << "' input '" << s << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RexDifferentialTest,
    ::testing::Values(DiffCase{"^a"}, DiffCase{"a$"}, DiffCase{"^(a|b)*$"},
                      DiffCase{"a+b"}, DiffCase{"^/a/(.+/)?b$"},
                      DiffCase{"[^/]+"}, DiffCase{"^[ab]*/$"},
                      DiffCase{"(a|/)+b"}, DiffCase{"a{2,3}"},
                      DiffCase{"^(ab)+$"}, DiffCase{"b?a"},
                      DiffCase{"^.*/a$"}));

}  // namespace
}  // namespace xprel::rex
