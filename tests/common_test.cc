// Status / Result and string utility tests.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xprel {
namespace {

TEST(StatusTest, Basics) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
}

Status Inner(bool fail) {
  if (fail) return Status::NotFound("inner");
  return Status::Ok();
}

Status Outer(bool fail) {
  XPREL_RETURN_IF_ERROR(Inner(fail));
  return Status::Internal("should not reach on failure");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Outer(true).code(), StatusCode::kNotFound);
  EXPECT_EQ(Outer(false).code(), StatusCode::kInternal);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

TEST(ResultTest, ValueAndStatus) {
  auto ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_TRUE(ok.status().ok());

  auto bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<std::string> Doubled(int v) {
  int h = 0;  // the macro expands to a block, so declare the target first
  XPREL_ASSIGN_OR_RETURN(h, Half(v));
  return std::to_string(h * 4);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Doubled(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "20");
  EXPECT_EQ(Doubled(3).status().code(), StatusCode::kInvalidArgument);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(SplitString("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("/a//b", '/'),
            (std::vector<std::string>{"", "a", "", "b"}));
  EXPECT_EQ(SplitString("", '/'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b"}, "/"), "a/b");
  EXPECT_EQ(JoinStrings({}, "/"), "");
}

TEST(StringUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  x \t\n"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("x"), "x");
}

TEST(StringUtilTest, Parsing) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_EQ(ParseDouble("1.5"), 1.5);
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(StringUtilTest, HexEncode) {
  EXPECT_EQ(HexEncode(std::string("\x00\xff\x2a", 3)), "00ff2a");
  EXPECT_EQ(HexEncode(""), "");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC-9"), "abc-9");
}

}  // namespace
}  // namespace xprel
