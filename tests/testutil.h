#ifndef XPREL_TESTS_TESTUTIL_H_
#define XPREL_TESTS_TESTUTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rel/query.h"
#include "shred/schema_loader.h"
#include "translate/translator.h"
#include "xml/parser.h"
#include "xpatheval/evaluator.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace xprel::testutil {

// The paper's Figure 1 schema: A { B { C { D | E { F F } } G }, B { G { G* } } }
// with recursion on G (G contains G), attribute x on A and D, text on D/F/G.
inline const char* kFigure1Xsd = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="A">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="B" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="x"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="B">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="C" minOccurs="0" maxOccurs="unbounded"/>
        <xs:element ref="G" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="C">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="D" type="xs:string" minOccurs="0"/>
        <xs:element name="E" minOccurs="0">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="F" type="xs:string" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="G">
    <xs:complexType mixed="true">
      <xs:sequence>
        <xs:element ref="G" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
)";

inline const char* kFigure1Doc = R"(
<A x="3">
  <B>
    <C><D>d1</D></C>
    <C><E><F>2</F><F>5</F></E></C>
    <G>g1<G>g2<G>g3</G></G></G>
  </B>
  <B>
    <G>g4</G>
  </B>
</A>
)";

// Everything needed to exercise one schema + document end to end.
struct Fixture {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<shred::SchemaAwareStore> store;
  std::unique_ptr<xpatheval::XPathEvaluator> oracle;
  int64_t doc_id = 0;
};

inline std::unique_ptr<Fixture> MakeFixture(const char* xsd_text,
                                            const char* doc_text) {
  auto fx = std::make_unique<Fixture>();
  auto doc = xml::ParseXml(doc_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return nullptr;
  fx->doc = std::move(doc).value();

  auto schema = xsd::ParseXsd(xsd_text);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  if (!schema.ok()) return nullptr;
  fx->schema = std::move(schema).value();

  auto graph = xsd::SchemaGraph::Build(fx->schema);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return nullptr;
  fx->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());

  auto store = shred::SchemaAwareStore::Create(*fx->graph);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  if (!store.ok()) return nullptr;
  fx->store = std::move(store).value();

  auto doc_id = fx->store->LoadDocument(fx->doc);
  EXPECT_TRUE(doc_id.ok()) << doc_id.status().ToString();
  if (!doc_id.ok()) return nullptr;
  fx->doc_id = doc_id.value();

  fx->oracle = std::make_unique<xpatheval::XPathEvaluator>(fx->doc);
  return fx;
}

// Runs an XPath through the PPF translator + relational engine, returning
// document node ids.
inline Result<std::vector<xml::NodeId>> RunPpf(
    Fixture& fx, std::string_view xpath,
    translate::TranslateOptions options = {}) {
  translate::PpfTranslator translator(fx.store->mapping(), options);
  auto tq = translator.TranslateString(xpath);
  if (!tq.ok()) return tq.status();
  if (tq.value().statically_empty) return std::vector<xml::NodeId>{};
  auto result = rel::ExecuteQuery(fx.store->db(), tq.value().sql);
  if (!result.ok()) return result.status();
  std::vector<xml::NodeId> out;
  for (const rel::Row& row : result.value().rows) {
    int64_t element_id = row[0].AsInt();
    const auto* origin = fx.store->FindOrigin(element_id);
    if (origin == nullptr) {
      return Status::Internal("result row with unknown element id");
    }
    out.push_back(origin->node);
  }
  return out;
}

// EXPECT that PPF translation agrees with the reference evaluator.
inline void ExpectPpfMatchesOracle(Fixture& fx, const std::string& xpath) {
  auto expected = fx.oracle->EvaluateString(xpath);
  ASSERT_TRUE(expected.ok()) << xpath << ": " << expected.status().ToString();
  auto actual = RunPpf(fx, xpath);
  ASSERT_TRUE(actual.ok()) << xpath << ": " << actual.status().ToString();
  std::vector<xml::NodeId> sorted = actual.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(expected.value(), sorted) << "query: " << xpath;
}

}  // namespace xprel::testutil

#endif  // XPREL_TESTS_TESTUTIL_H_
