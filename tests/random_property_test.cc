// Property sweep: randomly generated XPath expressions over a randomly
// generated document, every backend compared against the reference
// evaluator. The schema is non-recursive (recursive schemas are covered by
// the curated suites; see DESIGN.md "Known deviations").

#include <memory>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "xml/document.h"
#include "xpatheval/evaluator.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

const char* kShopXsd = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="shop">
    <xs:complexType><xs:sequence>
      <xs:element ref="dept" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="dept">
    <xs:complexType><xs:sequence>
      <xs:element ref="name"/>
      <xs:element ref="product" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence><xs:attribute name="floor"/></xs:complexType>
  </xs:element>
  <xs:element name="product">
    <xs:complexType><xs:sequence>
      <xs:element ref="name"/>
      <xs:element name="price" type="xs:string"/>
      <xs:element name="tag" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="review" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence><xs:attribute name="id"/><xs:attribute name="cat"/></xs:complexType>
  </xs:element>
  <xs:element name="review">
    <xs:complexType><xs:sequence>
      <xs:element name="score" type="xs:string"/>
      <xs:element name="comment" type="xs:string" minOccurs="0"/>
    </xs:sequence><xs:attribute name="stars"/></xs:complexType>
  </xs:element>
  <xs:element name="name" type="xs:string"/>
</xs:schema>
)";

xml::Document RandomShopDoc(uint64_t seed) {
  std::mt19937_64 rng(seed);
  xml::Builder b;
  b.StartElement("shop");
  int depts = 2 + static_cast<int>(rng() % 3);
  int product_id = 0;
  for (int d = 0; d < depts; ++d) {
    b.StartElement("dept");
    b.AddAttribute("floor", std::to_string(rng() % 4));
    b.AddTextElement("name", "dept" + std::to_string(d));
    int products = static_cast<int>(rng() % 6);
    for (int p = 0; p < products; ++p) {
      b.StartElement("product");
      b.AddAttribute("id", "p" + std::to_string(product_id++));
      if (rng() % 2 == 0) b.AddAttribute("cat", std::to_string(rng() % 3));
      b.AddTextElement("name", "prod" + std::to_string(rng() % 5));
      b.AddTextElement("price", std::to_string(rng() % 50));
      int tags = static_cast<int>(rng() % 3);
      for (int t = 0; t < tags; ++t) {
        b.AddTextElement("tag", "t" + std::to_string(rng() % 4));
      }
      int reviews = static_cast<int>(rng() % 3);
      for (int r = 0; r < reviews; ++r) {
        b.StartElement("review");
        b.AddAttribute("stars", std::to_string(1 + rng() % 5));
        b.AddTextElement("score", std::to_string(rng() % 10));
        if (rng() % 2 == 0) b.AddTextElement("comment", "ok");
        b.EndElement();
      }
      b.EndElement();
    }
    b.EndElement();
  }
  b.EndElement();
  return std::move(b).Finish().value();
}

// ---------------------------------------------------------------------------
// Random XPath generation
// ---------------------------------------------------------------------------

class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Path(int max_steps, bool allow_predicates) {
    std::string out;
    int steps = 1 + static_cast<int>(rng_() % static_cast<uint64_t>(max_steps));
    out += Pick({"/", "//"});
    out += Step(allow_predicates);
    for (int i = 1; i < steps; ++i) {
      out += Pick({"/", "//"});
      out += Step(allow_predicates);
    }
    return out;
  }

  // A full query: usually a single path, sometimes a '|' union of two —
  // unions drive the executor's multi-block dedup + ordering path.
  std::string Query(int max_steps, bool allow_predicates) {
    std::string q = Path(max_steps, allow_predicates);
    if (rng_() % 4 == 0) {
      q += " | " + Path(max_steps, allow_predicates);
    }
    return q;
  }

 private:
  const char* Pick(std::initializer_list<const char*> options) {
    auto it = options.begin();
    std::advance(it, static_cast<long>(rng_() % options.size()));
    return *it;
  }

  std::string Tag() {
    return Pick({"shop", "dept", "product", "review", "name", "price", "tag",
                 "score", "comment", "*"});
  }

  std::string Step(bool allow_predicates) {
    std::string axis;
    switch (rng_() % 10) {
      case 0:
        axis = "descendant::";
        break;
      case 1:
        axis = "parent::";
        break;
      case 2:
        axis = "ancestor::";
        break;
      case 3:
        axis = "following-sibling::";
        break;
      case 4:
        axis = "preceding-sibling::";
        break;
      case 5:
        axis = "following::";
        break;
      case 6:
        axis = "preceding::";
        break;
      default:
        axis = "";  // child
        break;
    }
    std::string s = axis + Tag();
    if (allow_predicates && rng_() % 3 == 0) {
      s += "[" + Predicate() + "]";
    }
    return s;
  }

  std::string Predicate() {
    switch (rng_() % 7) {
      case 0:
        return std::string("@") + Pick({"id", "cat", "stars", "floor"});
      case 1:
        return std::string("@") + Pick({"cat", "stars", "floor"}) + " = " +
               std::to_string(rng_() % 4);
      case 2:
        return RelPath();
      case 3:
        return RelPath() + " = '" + Value() + "'";
      case 4:
        return "not(" + RelPath() + ")";
      case 5:
        return RelPath() + " or " + RelPath();
      default:
        return RelPath() + " and @" + Pick({"id", "cat", "stars", "floor"});
    }
  }

  std::string RelPath() {
    std::string p = Pick({"name", "price", "tag", "review", "score",
                          "product", "comment"});
    if (rng_() % 3 == 0) {
      p += std::string("/") +
           Pick({"name", "price", "score", "comment", "tag"});
    }
    if (rng_() % 4 == 0) p = "parent::" + Tag();
    return p;
  }

  std::string Value() {
    switch (rng_() % 3) {
      case 0:
        return std::to_string(rng_() % 50);
      case 1:
        return "prod" + std::to_string(rng_() % 5);
      default:
        return "t" + std::to_string(rng_() % 4);
    }
  }

  std::mt19937_64 rng_;
};

class RandomPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPropertyTest, AllBackendsMatchOracle) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  xml::Document doc = RandomShopDoc(seed);
  auto schema = xsd::ParseXsd(kShopXsd).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  ASSERT_TRUE(graph.ok());
  auto engine = engine::XPathEngine::Build(doc, graph.value());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  xpatheval::XPathEvaluator oracle(doc);

  QueryGen gen(seed * 7919 + 13);
  int checked = 0;
  // Rotate the executor batch size per query so the sweep hits batch-
  // boundary edge cases: 1 (every batch is a partial final batch), 3
  // (misaligned with every join fan-out), 64, 4096 (most queries fit one
  // batch) and 0 (the production default).
  constexpr uint32_t kBatchSizes[] = {0, 1, 3, 64, 4096};
  for (int q = 0; q < 60; ++q) {
    std::string xpath = gen.Query(4, /*allow_predicates=*/true);
    auto expected = oracle.EvaluateString(xpath);
    if (!expected.ok()) continue;  // oracle-unsupported shape
    rel::ExecControl control;
    control.batch_size = kBatchSizes[q % 5];
    for (engine::Backend b :
         {engine::Backend::kPpf, engine::Backend::kEdgePpf,
          engine::Backend::kAccelerator, engine::Backend::kStaircase,
          engine::Backend::kNaive}) {
      auto actual = engine.value()->Run(b, xpath, &control);
      if (!actual.ok()) {
        // Backends may reject unsupported shapes, never mis-answer.
        EXPECT_EQ(actual.status().code(), StatusCode::kUnsupported)
            << xpath << " on " << BackendName(b) << ": "
            << actual.status().ToString();
        continue;
      }
      EXPECT_EQ(expected.value(), actual.value().nodes)
          << "query " << xpath << " on " << BackendName(b);
      ++checked;
      // Run again: the second execution reuses the cached plan and must
      // agree (guards the plan cache and the per-execution EXISTS memo /
      // hash-table state against leaking between runs). It also runs at a
      // different batch size than the first, so batch-spanning dedup and
      // partial final batches cannot change the answer.
      rel::ExecControl recontrol;
      recontrol.batch_size = kBatchSizes[(q + 2) % 5];
      auto again = engine.value()->Run(b, xpath, &recontrol);
      ASSERT_TRUE(again.ok()) << xpath << " on " << BackendName(b)
                              << " (cached): " << again.status().ToString();
      EXPECT_EQ(expected.value(), again.value().nodes)
          << "query " << xpath << " on " << BackendName(b) << " (cached)";
    }
  }
  // The sweep must be exercising real queries, not skipping everything.
  EXPECT_GT(checked, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace xprel
