// XPath lexer/parser tests: abbreviations, axes, predicates, errors.

#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xprel::xpath {
namespace {

// Parses and renders back to canonical unabbreviated form.
std::string Canon(const char* text) {
  auto e = ParseXPath(text);
  EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
  return e.ok() ? ToString(e.value()) : "<error>";
}

TEST(XPathParserTest, SimplePaths) {
  EXPECT_EQ(Canon("/a/b"), "/child::a/child::b");
  EXPECT_EQ(Canon("a"), "child::a");
  EXPECT_EQ(Canon("/a/*"), "/child::a/child::*");
}

TEST(XPathParserTest, Abbreviations) {
  EXPECT_EQ(Canon("//b"),
            "/descendant-or-self::node()/child::b");
  EXPECT_EQ(Canon("a//b"),
            "child::a/descendant-or-self::node()/child::b");
  EXPECT_EQ(Canon("a/.."), "child::a/parent::node()");
  EXPECT_EQ(Canon("a/."), "child::a/self::node()");
  EXPECT_EQ(Canon("a/@x"), "child::a/attribute::x");
}

TEST(XPathParserTest, ExplicitAxes) {
  EXPECT_EQ(Canon("/a/descendant::b/ancestor-or-self::c"),
            "/child::a/descendant::b/ancestor-or-self::c");
  EXPECT_EQ(Canon("a/following-sibling::b"),
            "child::a/following-sibling::b");
  EXPECT_EQ(Canon("a/preceding::b"), "child::a/preceding::b");
}

TEST(XPathParserTest, NodeTests) {
  EXPECT_EQ(Canon("a/text()"), "child::a/child::text()");
  EXPECT_EQ(Canon("a/node()"), "child::a/child::node()");
}

TEST(XPathParserTest, Predicates) {
  EXPECT_EQ(Canon("a[b]"), "child::a[child::b]");
  EXPECT_EQ(Canon("a[@x=4]"), "child::a[attribute::x = 4]");
  EXPECT_EQ(Canon("a[b='v']"), "child::a[child::b = 'v']");
  EXPECT_EQ(Canon("a[b and (c or d)]"),
            "child::a[(child::b and (child::c or child::d))]");
  EXPECT_EQ(Canon("a[not(b)]"), "child::a[not(child::b)]");
  EXPECT_EQ(Canon("a[b != 2]"), "child::a[child::b != 2]");
  EXPECT_EQ(Canon("a[b >= 1994]"), "child::a[child::b >= 1994]");
}

TEST(XPathParserTest, NumericPredicateBecomesPosition) {
  EXPECT_EQ(Canon("a[2]"), "child::a[position() = 2]");
  EXPECT_EQ(Canon("a[position() < 3]"), "child::a[position() < 3]");
}

TEST(XPathParserTest, PathComparisons) {
  EXPECT_EQ(Canon("a[b/c = d/e]"),
            "child::a[child::b/child::c = child::d/child::e]");
  EXPECT_EQ(Canon("a[b = /r/s]"), "child::a[child::b = /child::r/child::s]");
}

TEST(XPathParserTest, Union) {
  EXPECT_EQ(Canon("/a/b | /a/c"), "/child::a/child::b | /child::a/child::c");
}

TEST(XPathParserTest, NestedPredicates) {
  EXPECT_EQ(Canon("a[b[c=1]]"), "child::a[child::b[child::c = 1]]");
}

TEST(XPathParserTest, PaperQueriesParse) {
  // Every benchmark query must parse.
  const char* queries[] = {
      "/A/*[C//F=2]",
      "/site/closed_auctions/closed_auction/annotation/description/parlist/"
      "listitem/text/keyword",
      "/descendant-or-self::listitem/descendant-or-self::keyword",
      "/site/regions/*/item[parent::namerica or parent::samerica]",
      "//keyword/ancestor-or-self::mail",
      "/site/open_auctions/open_auction[@id='open_auction0']/bidder/"
      "preceding-sibling::bidder",
      "//i[parent::*/parent::sub/ancestor::article]",
      "/dblp/inproceedings[author=/dblp/book/author]/title",
      "/site/people/person[address and (phone or homepage)]",
      "/site/open_auctions/open_auction[bidder/date = interval/start]",
      "/site/regions/*/item[@id='item0']/description//keyword/text()",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(ParseXPath(q).ok()) << q;
  }
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/a[").ok());
  EXPECT_FALSE(ParseXPath("/a]").ok());
  EXPECT_FALSE(ParseXPath("/a/child::").ok());
  EXPECT_FALSE(ParseXPath("/a['unterminated]").ok());
  EXPECT_FALSE(ParseXPath("/a | ").ok());
  EXPECT_FALSE(ParseXPath("/a!b").ok());
  EXPECT_FALSE(ParseXPath("/a[foo()]").ok());  // unknown function-ish test
}

TEST(XPathParserTest, CloneIsDeep) {
  auto e = ParseXPath("/a[b=1]/c").value();
  XPathExpr copy = CloneXPath(e);
  EXPECT_EQ(ToString(e), ToString(copy));
  // Mutating the copy must not affect the original.
  copy.branches[0].steps[0].name = "zzz";
  EXPECT_NE(ToString(e), ToString(copy));
}

}  // namespace
}  // namespace xprel::xpath
