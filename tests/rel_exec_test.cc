// Relational engine tests: SQL AST printing, planning (access-path
// selection), and execution semantics (joins, EXISTS, DISTINCT, ORDER BY,
// UNION, three-valued logic).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rel/key_codec.h"
#include "rel/parallel.h"
#include "rel/query.h"

namespace xprel::rel {
namespace {

// A small library database: books(id, author_id, title, year) and
// authors(id, name).
class RelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema authors;
    authors.name = "authors";
    authors.columns = {{"id", ValueType::kInt64, false},
                       {"name", ValueType::kString, false}};
    authors.indexes = {{"pk_authors", {0}, true}};
    Table* a = db_.CreateTable(std::move(authors)).value();
    ASSERT_TRUE(a->Insert({Value::Int(1), Value::Str("Knuth")}).ok());
    ASSERT_TRUE(a->Insert({Value::Int(2), Value::Str("Date")}).ok());
    ASSERT_TRUE(a->Insert({Value::Int(3), Value::Str("Gray")}).ok());

    TableSchema books;
    books.name = "books";
    books.columns = {{"id", ValueType::kInt64, false},
                     {"author_id", ValueType::kInt64, true},
                     {"title", ValueType::kString, false},
                     {"year", ValueType::kInt64, false}};
    books.indexes = {{"pk_books", {0}, true}, {"idx_books_author", {1}, false}};
    Table* b = db_.CreateTable(std::move(books)).value();
    ASSERT_TRUE(b->Insert({Value::Int(10), Value::Int(1),
                           Value::Str("TAOCP"), Value::Int(1968)}).ok());
    ASSERT_TRUE(b->Insert({Value::Int(11), Value::Int(2),
                           Value::Str("Database Systems"), Value::Int(1975)})
                    .ok());
    ASSERT_TRUE(b->Insert({Value::Int(12), Value::Int(1),
                           Value::Str("Concrete Math"), Value::Int(1989)})
                    .ok());
    ASSERT_TRUE(b->Insert({Value::Int(13), Value::Null(),
                           Value::Str("Anonymous"), Value::Int(2000)}).ok());
  }

  Database db_;
};

TEST_F(RelExecTest, SimpleFilterAndOrder) {
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"books", "b"}};
  s.where = Bin(SqlExpr::BinOp::kGe, Col("b", "year"), LitInt(1975));
  s.order_by.push_back({Col("b", "year"), false});  // DESC
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 3u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Anonymous");
  EXPECT_EQ(r.value().rows[2][0].AsString(), "Database Systems");
}

TEST_F(RelExecTest, EquiJoinUsesIndex) {
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  s.where = rel::Eq(Col("b", "author_id"), Col("a", "id"));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  // One side must be an index probe, not a nested seq scan.
  EXPECT_NE(plan.value()->Describe().find("IndexPoint"), std::string::npos)
      << plan.value()->Describe();
  auto r = ExecutePlan(*plan.value(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 3u);  // NULL author_id joins nothing
}

TEST_F(RelExecTest, ExistsCorrelated) {
  // Authors with a book after 1980.
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.from = {{"authors", "a"}};
  auto sub = std::make_unique<SelectStmt>();
  sub->from = {{"books", "b"}};
  sub->where =
      And(rel::Eq(Col("b", "author_id"), Col("a", "id")),
          Bin(SqlExpr::BinOp::kGt, Col("b", "year"), LitInt(1980)));
  s.where = Exists(std::move(sub));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Knuth");
}

TEST_F(RelExecTest, NotExistsAndNullSemantics) {
  // Authors with no books: Gray. NULL author_id must not match anyone.
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.from = {{"authors", "a"}};
  auto sub = std::make_unique<SelectStmt>();
  sub->from = {{"books", "b"}};
  sub->where = rel::Eq(Col("b", "author_id"), Col("a", "id"));
  s.where = Not(Exists(std::move(sub)));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Gray");
}

TEST_F(RelExecTest, DistinctDeduplicates) {
  SelectStmt s;
  s.distinct = true;
  s.select.push_back({Col("b", "author_id"), "author_id"});
  s.from = {{"books", "b"}};
  s.where = Not([] {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExpr::Kind::kIsNull;
    e->args.push_back(Col("b", "author_id"));
    return e;
  }());
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(RelExecTest, StringCoercionInComparisons) {
  // year stored as INT compared against a string literal number.
  SelectStmt s;
  s.select.push_back({Col("b", "id"), "id"});
  s.from = {{"books", "b"}};
  s.where = rel::Eq(Col("b", "year"), Lit(Value::Str("1975")));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 1u);
}

TEST_F(RelExecTest, LikeAndRegexp) {
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "t"});
  s.from = {{"books", "b"}};
  auto like = std::make_unique<SqlExpr>();
  like->kind = SqlExpr::Kind::kLike;
  like->args.push_back(Col("b", "title"));
  like->args.push_back(LitStr("%Math%"));
  s.where = std::move(like);
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);

  SelectStmt s2;
  s2.select.push_back({Col("b", "title"), "t"});
  s2.from = {{"books", "b"}};
  s2.where = RegexpLike(Col("b", "title"), "^Conc");
  auto r2 = ExecuteSelect(db_, s2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().rows.size(), 1u);
}

TEST_F(RelExecTest, UnionDeduplicatesAndOrders) {
  SqlQuery q;
  for (int year : {1968, 1968, 1989}) {
    auto s = std::make_unique<SelectStmt>();
    s->select.push_back({Col("b", "id"), "id"});
    s->select.push_back({Col("b", "year"), "year"});
    s->from = {{"books", "b"}};
    s->where = rel::Eq(Col("b", "year"), LitInt(year));
    s->order_by.push_back({Col("b", "id"), true});
    q.selects.push_back(std::move(s));
  }
  auto r = ExecuteQuery(db_, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);  // duplicate block deduplicated
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.value().rows[1][0].AsInt(), 12);
}

TEST_F(RelExecTest, LengthAndAdd) {
  SelectStmt s;
  s.select.push_back({Length(Col("b", "title")), "len"});
  s.select.push_back({Add(Col("b", "year"), LitInt(1)), "next"});
  s.from = {{"books", "b"}};
  s.where = rel::Eq(Col("b", "id"), LitInt(10));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 5);  // "TAOCP"
  EXPECT_EQ(r.value().rows[0][1].AsInt(), 1969);
}

TEST_F(RelExecTest, IndexUnionProbe) {
  // (id = 10 OR id = 12) must use union point probes, not a scan.
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "t"});
  s.from = {{"books", "b"}};
  s.where = Or(rel::Eq(Col("b", "id"), LitInt(10)),
               rel::Eq(Col("b", "id"), LitInt(12)));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value()->Describe().find("IndexUnion"), std::string::npos)
      << plan.value()->Describe();
  auto r = ExecutePlan(*plan.value(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(RelExecTest, SqlPrinting) {
  SelectStmt s;
  s.distinct = true;
  s.select.push_back({Col("b", "id"), "id"});
  s.from = {{"books", "b"}, {"authors", "a"}};
  s.where = And(rel::Eq(Col("b", "author_id"), Col("a", "id")),
                Or(rel::Eq(Col("a", "name"), LitStr("Knuth")),
                   Bin(SqlExpr::BinOp::kLt, Col("b", "year"), LitInt(1970))));
  s.order_by.push_back({Col("b", "id"), true});
  EXPECT_EQ(SqlToString(s),
            "SELECT DISTINCT b.id AS id FROM books b, authors a "
            "WHERE b.author_id = a.id AND "
            "(a.name = 'Knuth' OR b.year < 1970) ORDER BY b.id");
}

TEST_F(RelExecTest, PlanErrors) {
  SelectStmt s;
  s.select.push_back({Col("x", "id"), "id"});
  s.from = {{"nope", "x"}};
  EXPECT_EQ(PlanSelect(db_, s, nullptr).status().code(),
            StatusCode::kNotFound);

  SelectStmt dup;
  dup.select.push_back({Col("b", "id"), "id"});
  dup.from = {{"books", "b"}, {"books", "b"}};
  EXPECT_EQ(PlanSelect(db_, dup, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RelExecTest, TableErrors) {
  Table* b = db_.FindTable("books");
  // Wrong arity.
  EXPECT_FALSE(b->Insert({Value::Int(99)}).ok());
  // Duplicate primary key.
  EXPECT_FALSE(b->Insert({Value::Int(10), Value::Null(), Value::Str("dup"),
                          Value::Int(0)}).ok());
  EXPECT_FALSE(db_.CreateTable({.name = "books"}).ok());
}

TEST_F(RelExecTest, ExistsMemoizationHitsOnRepeatedKeys) {
  // Books whose author exists. The EXISTS correlates on an equality key, so
  // the planner decorrelates it into a build-once semi-join: the first
  // evaluation runs the uncorrelated build plan (one miss), every further
  // evaluation — including the NULL-key book — answers from the key set.
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"books", "b"}};
  auto sub = std::make_unique<SelectStmt>();
  sub->from = {{"authors", "a"}};
  sub->where = rel::Eq(Col("a", "id"), Col("b", "author_id"));
  s.where = Exists(std::move(sub));
  QueryStats stats;
  auto r = ExecuteSelect(db_, s, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows.size(), 3u);  // NULL author_id fails EXISTS
  EXPECT_EQ(stats.subquery_evals, 4u);
  EXPECT_EQ(stats.exists_semijoin_builds, 1u);
  EXPECT_EQ(stats.exists_cache_misses, 1u);  // the build itself
  EXPECT_EQ(stats.exists_cache_hits, 3u);    // every other outer row
}

TEST_F(RelExecTest, EquiJoinRowsScannedUpperBound) {
  // Regression guard for the planner/executor contract: the indexed
  // equijoin must probe, not nest seq scans. A degradation to SeqScan on
  // the inner side would scan 3 + 3*4 = 15 rows; the probing plan touches
  // each author plus only the matching books.
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  s.where = rel::Eq(Col("b", "author_id"), Col("a", "id"));
  QueryStats stats;
  auto r = ExecuteSelect(db_, s, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 3u);
  EXPECT_LE(stats.rows_scanned, 8u) << "inner side degraded to SeqScan?";
  EXPECT_GE(stats.index_probes, 3u);
}

TEST_F(RelExecTest, UnionOrderByNotProjectedSortsDeterministically) {
  // ORDER BY year, but only title is projected: the per-position column
  // mapping fails, and the union must fall back to a deterministic
  // full-row sort instead of silently emitting blocks in arrival order.
  SqlQuery q;
  for (int id : {10, 12}) {  // TAOCP first, Concrete Math second
    auto s = std::make_unique<SelectStmt>();
    s->select.push_back({Col("b", "title"), "title"});
    s->from = {{"books", "b"}};
    s->where = rel::Eq(Col("b", "id"), LitInt(id));
    s->order_by.push_back({Col("b", "year"), true});
    q.selects.push_back(std::move(s));
  }
  auto r = ExecuteQuery(db_, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);
  // Arrival order is [TAOCP, Concrete Math]; the fallback sort must apply.
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Concrete Math");
  EXPECT_EQ(r.value().rows[1][0].AsString(), "TAOCP");
}

TEST_F(RelExecTest, HashProbeBuildsTableOnce) {
  // An unindexed string-column equijoin against a large-enough inner table
  // plans as kHashProbe; the build side must run exactly once even though
  // the step is probed once per outer row.
  TableSchema tags;
  tags.name = "tags";
  tags.columns = {{"title", ValueType::kString, false},
                  {"tag", ValueType::kString, false}};
  Table* t = db_.CreateTable(std::move(tags)).value();
  for (int i = 0; i < 48; ++i) {
    ASSERT_TRUE(t->Insert({Value::Str("filler" + std::to_string(i)),
                           Value::Str("none")}).ok());
  }
  ASSERT_TRUE(t->Insert({Value::Str("TAOCP"), Value::Str("classic")}).ok());
  ASSERT_TRUE(
      t->Insert({Value::Str("Concrete Math"), Value::Str("classic")}).ok());

  SelectStmt s;
  s.select.push_back({Col("b", "id"), "id"});
  s.select.push_back({Col("t", "tag"), "tag"});
  s.from = {{"books", "b"}, {"tags", "t"}};
  s.where = rel::Eq(Col("t", "title"), Col("b", "title"));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value()->Describe().find("HashProbe"), std::string::npos)
      << plan.value()->Describe();
  QueryStats stats;
  auto r = ExecutePlan(*plan.value(), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
  EXPECT_EQ(stats.hash_tables_built, 1u);
}

TEST_F(RelExecTest, UnorderedExecutionSkipsSortButKeepsRows) {
  // need_ordered_rows = false must return the same row set (DISTINCT
  // included), just without the ORDER BY guarantee.
  SelectStmt s;
  s.distinct = true;
  s.select.push_back({Col("b", "author_id"), "author_id"});
  s.from = {{"books", "b"}};
  s.order_by.push_back({Col("b", "author_id"), true});
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  auto ordered = ExecutePlan(*plan.value(), nullptr, true);
  auto unordered = ExecutePlan(*plan.value(), nullptr, false);
  ASSERT_TRUE(ordered.ok());
  ASSERT_TRUE(unordered.ok());
  ASSERT_EQ(ordered.value().rows.size(), 3u);  // NULL, 1, 2
  std::vector<Row> a = std::move(ordered.value().rows);
  std::vector<Row> b = std::move(unordered.value().rows);
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(RelExecTest, MidBatchCancellationUnwindsViaAbortPath) {
  // A cross join big enough (3000 x 3000 enumerated pairs) that the cancel
  // flag flips while the executor is inside the batch pipeline, so the
  // unwind exercises the mid-batch abort path, not the pre-execution check.
  TableSchema nums;
  nums.name = "nums";
  nums.columns = {{"v", ValueType::kInt64, false}};
  Table* t = db_.CreateTable(std::move(nums)).value();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(t->Insert({Value::Int(i)}).ok());
  }

  SelectStmt s;
  s.select.push_back({Col("n1", "v"), "v"});
  s.from = {{"nums", "n1"}, {"nums", "n2"}};
  // Two-slot filter: evaluated row-at-a-time inside each batch, and never
  // true, so the executor must keep scanning until cancelled.
  s.where = Bin(SqlExpr::BinOp::kLt,
                Add(Col("n1", "v"), Col("n2", "v")), LitInt(0));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::atomic<bool> cancel{false};
  ExecControl control;
  control.cancel = &cancel;
  control.check_interval = 1;  // probe at every batch boundary
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel.store(true);
  });
  QueryStats stats;
  auto r = ExecutePlan(*plan.value(), &stats, true, &control);
  killer.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // The abort fired mid-scan: some batches were enumerated, but nowhere
  // near the full 9M-row cross product.
  EXPECT_GT(stats.rows_scanned, 0u);
  EXPECT_LT(stats.rows_scanned, 9000u * 3000u);
}

// ---------------------------------------------------------------------------
// Morsel partitioning
// ---------------------------------------------------------------------------

// The ranges must always be an exact ascending partition of [0, rows).
void ExpectPartition(const std::vector<MorselRange>& ranges, size_t rows) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, rows);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].lo, ranges[i - 1].hi);
    EXPECT_GT(ranges[i].hi, ranges[i].lo);
  }
}

TEST(MorselRangesTest, SmallTablesAndSerialRunsStayWhole) {
  for (auto [rows, parallelism] : {std::pair<size_t, int>{100, 4},
                                   {2 * kMorselMinRows - 1, 4},
                                   {1 << 20, 1},
                                   {1 << 20, 0}}) {
    auto ranges = ComputeMorselRanges(rows, parallelism);
    ASSERT_EQ(ranges.size(), 1u) << rows << "/" << parallelism;
    ExpectPartition(ranges, rows);
  }
}

TEST(MorselRangesTest, LargeTableSplitsIntoBalancedDeweyRanges) {
  const size_t rows = 1 << 20;
  auto ranges = ComputeMorselRanges(rows, 4);
  ExpectPartition(ranges, rows);
  EXPECT_EQ(ranges.size(), rows / kMorselTargetRows);
  size_t lo = ranges.front().rows(), hi = lo;
  for (const auto& r : ranges) {
    lo = std::min(lo, r.rows());
    hi = std::max(hi, r.rows());
  }
  EXPECT_LE(hi - lo, 1u);  // even split up to rounding
}

TEST(MorselRangesTest, JustAboveFloorSplitsByMinRows) {
  // 9000 rows can't afford 4*parallelism shards of 4096; the shard count
  // is clamped to rows / kMorselMinRows.
  auto ranges = ComputeMorselRanges(9000, 4);
  ExpectPartition(ranges, 9000);
  EXPECT_EQ(ranges.size(), 2u);
  for (const auto& r : ranges) EXPECT_GE(r.rows(), kMorselMinRows);
}

TEST(MorselRangesTest, RunMorselsWithoutRunnerIsSerialAndComplete) {
  std::atomic<size_t> sum{0};
  ParallelRunStats st =
      RunMorsels(17, 4, nullptr, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(st.morsels, 17u);
  EXPECT_EQ(st.steals, 0u);
  EXPECT_EQ(st.threads, 1u);
  EXPECT_EQ(sum.load(), size_t{17 * 16 / 2});
}

}  // namespace
}  // namespace xprel::rel
