// Relational engine tests: SQL AST printing, planning (access-path
// selection), and execution semantics (joins, EXISTS, DISTINCT, ORDER BY,
// UNION, three-valued logic).

#include <gtest/gtest.h>

#include "rel/key_codec.h"
#include "rel/query.h"

namespace xprel::rel {
namespace {

// A small library database: books(id, author_id, title, year) and
// authors(id, name).
class RelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema authors;
    authors.name = "authors";
    authors.columns = {{"id", ValueType::kInt64, false},
                       {"name", ValueType::kString, false}};
    authors.indexes = {{"pk_authors", {0}, true}};
    Table* a = db_.CreateTable(std::move(authors)).value();
    ASSERT_TRUE(a->Insert({Value::Int(1), Value::Str("Knuth")}).ok());
    ASSERT_TRUE(a->Insert({Value::Int(2), Value::Str("Date")}).ok());
    ASSERT_TRUE(a->Insert({Value::Int(3), Value::Str("Gray")}).ok());

    TableSchema books;
    books.name = "books";
    books.columns = {{"id", ValueType::kInt64, false},
                     {"author_id", ValueType::kInt64, true},
                     {"title", ValueType::kString, false},
                     {"year", ValueType::kInt64, false}};
    books.indexes = {{"pk_books", {0}, true}, {"idx_books_author", {1}, false}};
    Table* b = db_.CreateTable(std::move(books)).value();
    ASSERT_TRUE(b->Insert({Value::Int(10), Value::Int(1),
                           Value::Str("TAOCP"), Value::Int(1968)}).ok());
    ASSERT_TRUE(b->Insert({Value::Int(11), Value::Int(2),
                           Value::Str("Database Systems"), Value::Int(1975)})
                    .ok());
    ASSERT_TRUE(b->Insert({Value::Int(12), Value::Int(1),
                           Value::Str("Concrete Math"), Value::Int(1989)})
                    .ok());
    ASSERT_TRUE(b->Insert({Value::Int(13), Value::Null(),
                           Value::Str("Anonymous"), Value::Int(2000)}).ok());
  }

  Database db_;
};

TEST_F(RelExecTest, SimpleFilterAndOrder) {
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"books", "b"}};
  s.where = Bin(SqlExpr::BinOp::kGe, Col("b", "year"), LitInt(1975));
  s.order_by.push_back({Col("b", "year"), false});  // DESC
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 3u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Anonymous");
  EXPECT_EQ(r.value().rows[2][0].AsString(), "Database Systems");
}

TEST_F(RelExecTest, EquiJoinUsesIndex) {
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.select.push_back({Col("b", "title"), "title"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  s.where = rel::Eq(Col("b", "author_id"), Col("a", "id"));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  // One side must be an index probe, not a nested seq scan.
  EXPECT_NE(plan.value()->Describe().find("IndexPoint"), std::string::npos)
      << plan.value()->Describe();
  auto r = ExecutePlan(*plan.value(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 3u);  // NULL author_id joins nothing
}

TEST_F(RelExecTest, ExistsCorrelated) {
  // Authors with a book after 1980.
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.from = {{"authors", "a"}};
  auto sub = std::make_unique<SelectStmt>();
  sub->from = {{"books", "b"}};
  sub->where =
      And(rel::Eq(Col("b", "author_id"), Col("a", "id")),
          Bin(SqlExpr::BinOp::kGt, Col("b", "year"), LitInt(1980)));
  s.where = Exists(std::move(sub));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Knuth");
}

TEST_F(RelExecTest, NotExistsAndNullSemantics) {
  // Authors with no books: Gray. NULL author_id must not match anyone.
  SelectStmt s;
  s.select.push_back({Col("a", "name"), "name"});
  s.from = {{"authors", "a"}};
  auto sub = std::make_unique<SelectStmt>();
  sub->from = {{"books", "b"}};
  sub->where = rel::Eq(Col("b", "author_id"), Col("a", "id"));
  s.where = Not(Exists(std::move(sub)));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Gray");
}

TEST_F(RelExecTest, DistinctDeduplicates) {
  SelectStmt s;
  s.distinct = true;
  s.select.push_back({Col("b", "author_id"), "author_id"});
  s.from = {{"books", "b"}};
  s.where = Not([] {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExpr::Kind::kIsNull;
    e->args.push_back(Col("b", "author_id"));
    return e;
  }());
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(RelExecTest, StringCoercionInComparisons) {
  // year stored as INT compared against a string literal number.
  SelectStmt s;
  s.select.push_back({Col("b", "id"), "id"});
  s.from = {{"books", "b"}};
  s.where = rel::Eq(Col("b", "year"), Lit(Value::Str("1975")));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 1u);
}

TEST_F(RelExecTest, LikeAndRegexp) {
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "t"});
  s.from = {{"books", "b"}};
  auto like = std::make_unique<SqlExpr>();
  like->kind = SqlExpr::Kind::kLike;
  like->args.push_back(Col("b", "title"));
  like->args.push_back(LitStr("%Math%"));
  s.where = std::move(like);
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);

  SelectStmt s2;
  s2.select.push_back({Col("b", "title"), "t"});
  s2.from = {{"books", "b"}};
  s2.where = RegexpLike(Col("b", "title"), "^Conc");
  auto r2 = ExecuteSelect(db_, s2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().rows.size(), 1u);
}

TEST_F(RelExecTest, UnionDeduplicatesAndOrders) {
  SqlQuery q;
  for (int year : {1968, 1968, 1989}) {
    auto s = std::make_unique<SelectStmt>();
    s->select.push_back({Col("b", "id"), "id"});
    s->select.push_back({Col("b", "year"), "year"});
    s->from = {{"books", "b"}};
    s->where = rel::Eq(Col("b", "year"), LitInt(year));
    s->order_by.push_back({Col("b", "id"), true});
    q.selects.push_back(std::move(s));
  }
  auto r = ExecuteQuery(db_, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);  // duplicate block deduplicated
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.value().rows[1][0].AsInt(), 12);
}

TEST_F(RelExecTest, LengthAndAdd) {
  SelectStmt s;
  s.select.push_back({Length(Col("b", "title")), "len"});
  s.select.push_back({Add(Col("b", "year"), LitInt(1)), "next"});
  s.from = {{"books", "b"}};
  s.where = rel::Eq(Col("b", "id"), LitInt(10));
  auto r = ExecuteSelect(db_, s);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 5);  // "TAOCP"
  EXPECT_EQ(r.value().rows[0][1].AsInt(), 1969);
}

TEST_F(RelExecTest, IndexUnionProbe) {
  // (id = 10 OR id = 12) must use union point probes, not a scan.
  SelectStmt s;
  s.select.push_back({Col("b", "title"), "t"});
  s.from = {{"books", "b"}};
  s.where = Or(rel::Eq(Col("b", "id"), LitInt(10)),
               rel::Eq(Col("b", "id"), LitInt(12)));
  auto plan = PlanSelect(db_, s, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value()->Describe().find("IndexUnion"), std::string::npos)
      << plan.value()->Describe();
  auto r = ExecutePlan(*plan.value(), nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(RelExecTest, SqlPrinting) {
  SelectStmt s;
  s.distinct = true;
  s.select.push_back({Col("b", "id"), "id"});
  s.from = {{"books", "b"}, {"authors", "a"}};
  s.where = And(rel::Eq(Col("b", "author_id"), Col("a", "id")),
                Or(rel::Eq(Col("a", "name"), LitStr("Knuth")),
                   Bin(SqlExpr::BinOp::kLt, Col("b", "year"), LitInt(1970))));
  s.order_by.push_back({Col("b", "id"), true});
  EXPECT_EQ(SqlToString(s),
            "SELECT DISTINCT b.id AS id FROM books b, authors a "
            "WHERE b.author_id = a.id AND "
            "(a.name = 'Knuth' OR b.year < 1970) ORDER BY b.id");
}

TEST_F(RelExecTest, PlanErrors) {
  SelectStmt s;
  s.select.push_back({Col("x", "id"), "id"});
  s.from = {{"nope", "x"}};
  EXPECT_EQ(PlanSelect(db_, s, nullptr).status().code(),
            StatusCode::kNotFound);

  SelectStmt dup;
  dup.select.push_back({Col("b", "id"), "id"});
  dup.from = {{"books", "b"}, {"books", "b"}};
  EXPECT_EQ(PlanSelect(db_, dup, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RelExecTest, TableErrors) {
  Table* b = db_.FindTable("books");
  // Wrong arity.
  EXPECT_FALSE(b->Insert({Value::Int(99)}).ok());
  // Duplicate primary key.
  EXPECT_FALSE(b->Insert({Value::Int(10), Value::Null(), Value::Str("dup"),
                          Value::Int(0)}).ok());
  EXPECT_FALSE(db_.CreateTable({.name = "books"}).ok());
}

}  // namespace
}  // namespace xprel::rel
