// B+-tree unit and model-based property tests.

#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "rel/btree.h"
#include "rel/key_codec.h"
#include "rel/value.h"

namespace xprel::rel {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Lookup("x").empty());
  EXPECT_FALSE(tree.ScanAll().Valid());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, InsertAndLookup) {
  BTree tree;
  tree.Insert("b", 2);
  tree.Insert("a", 1);
  tree.Insert("c", 3);
  EXPECT_EQ(tree.Lookup("a"), std::vector<RowId>{1});
  EXPECT_EQ(tree.Lookup("b"), std::vector<RowId>{2});
  EXPECT_EQ(tree.Lookup("c"), std::vector<RowId>{3});
  EXPECT_TRUE(tree.Lookup("d").empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, DuplicatesKeepInsertionOrder) {
  BTree tree;
  for (RowId i = 0; i < 10; ++i) tree.Insert("dup", i);
  std::vector<RowId> expected;
  for (RowId i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(tree.Lookup("dup"), expected);
}

TEST(BTreeTest, ManyDuplicatesAcrossSplits) {
  // Regression: duplicates spanning leaf splits must all be found (the
  // search descent must go to the leftmost candidate leaf).
  BTree tree;
  const int kPer = 50;
  for (int k = 0; k < 40; ++k) {
    for (int i = 0; i < kPer; ++i) {
      tree.Insert("key" + std::to_string(k),
                  static_cast<RowId>(k * kPer + i));
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int k = 0; k < 40; ++k) {
    EXPECT_EQ(tree.Lookup("key" + std::to_string(k)).size(),
              static_cast<size_t>(kPer))
        << k;
  }
}

TEST(BTreeTest, RangeScan) {
  BTree tree;
  for (int i = 0; i < 100; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%03d", i);
    tree.Insert(buf, static_cast<RowId>(i));
  }
  int count = 0;
  for (auto it = tree.Scan("010", "020"); it.Valid(); it.Next()) {
    EXPECT_GE(it.key(), "010");
    EXPECT_LT(it.key(), "020");
    ++count;
  }
  EXPECT_EQ(count, 10);

  count = 0;
  for (auto it = tree.ScanFrom("090"); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 10);

  count = 0;
  for (auto it = tree.ScanAll(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 100);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree;
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(EncodeKey({Value::Int(i)}), static_cast<RowId>(i));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.height(), 4);
  EXPECT_EQ(tree.size(), 100000u);
}

// Model-based sweep: random operations mirrored against std::multimap.
class BTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelTest, MatchesMultimap) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  BTree tree;
  std::multimap<std::string, RowId> model;

  auto random_key = [&]() {
    // Small key space to force duplicates; variable length to exercise
    // prefix ordering.
    int len = static_cast<int>(rng() % 4);
    std::string k;
    for (int i = 0; i < len; ++i) k.push_back('a' + rng() % 3);
    return k;
  };

  for (RowId i = 0; i < 3000; ++i) {
    std::string k = random_key();
    tree.Insert(k, i);
    model.emplace(k, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), model.size());

  // Point lookups: same multiset of rows.
  for (int probe = 0; probe < 200; ++probe) {
    std::string k = random_key();
    auto mine = tree.Lookup(k);
    auto range = model.equal_range(k);
    std::multiset<RowId> expected, got(mine.begin(), mine.end());
    for (auto it = range.first; it != range.second; ++it) {
      expected.insert(it->second);
    }
    EXPECT_EQ(got, std::multiset<RowId>(expected)) << "key=" << k;
  }

  // Range scans: same sorted key sequence.
  for (int probe = 0; probe < 100; ++probe) {
    std::string lo = random_key(), hi = random_key();
    if (hi < lo) std::swap(lo, hi);
    std::vector<std::string> mine, expected;
    for (auto it = tree.Scan(lo, hi); it.Valid(); it.Next()) {
      mine.emplace_back(it.key());
    }
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first < hi; ++it) {
      expected.push_back(it->first);
    }
    EXPECT_EQ(mine, expected) << "range [" << lo << ", " << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace xprel::rel
