// Golden-shape tests for the baseline translators (Edge-like PPF and XPath
// Accelerator) and unit tests for the staircase evaluator's pruning.

#include <gtest/gtest.h>

#include "accel/accel_store.h"
#include "accel/accel_translator.h"
#include "accel/staircase.h"
#include "translate/edge_translator.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xprel {
namespace {

std::string EdgeSql(const char* xpath) {
  translate::EdgePpfTranslator t;
  auto q = t.TranslateString(xpath);
  EXPECT_TRUE(q.ok()) << xpath << ": " << q.status().ToString();
  return q.ok() ? q.value().ToSqlString() : "";
}

std::string AccelSql(const char* xpath) {
  accel::AcceleratorTranslator t;
  auto q = t.TranslateString(xpath);
  EXPECT_TRUE(q.ok()) << xpath << ": " << q.status().ToString();
  return q.ok() ? q.value().ToSqlString() : "";
}

TEST(EdgeSqlTest, OneRegexPerForwardFragment) {
  // A three-step path is ONE fragment: one Edge alias, one Paths join.
  std::string sql = EdgeSql("/a/b/c");
  EXPECT_NE(sql.find("FROM Edge E1, Paths E1_Paths"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("'^/a/b/c$'"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("E2"), std::string::npos) << sql;
}

TEST(EdgeSqlTest, SelfJoinForStructural) {
  std::string sql = EdgeSql("//a[@x]/descendant::b");
  // Two Edge aliases (self-join) plus their Paths joins.
  EXPECT_NE(sql.find("Edge E1"), std::string::npos) << sql;
  EXPECT_NE(sql.find("Edge E2"), std::string::npos) << sql;
  EXPECT_NE(sql.find("E2.dewey_pos > E1.dewey_pos"), std::string::npos) << sql;
  // Attributes live in a separate relation (paper Section 5.1 footnote).
  EXPECT_NE(sql.find("FROM Attr"), std::string::npos) << sql;
  EXPECT_NE(sql.find("attr_name = 'x'"), std::string::npos) << sql;
}

TEST(EdgeSqlTest, ChildUsesParFk) {
  std::string sql = EdgeSql("//a[b]/c");
  EXPECT_NE(sql.find(".par_id ="), std::string::npos) << sql;
}

TEST(EdgeSqlTest, BackwardPredicateRegexApplies) {
  // Table 5-2 works on the Edge mapping too (it is PPF machinery).
  std::string sql = EdgeSql("//f[parent::d or ancestor::g]");
  EXPECT_EQ(sql.find("EXISTS"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^.*/d/f$'"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^.*/g/(.+/)?f$'"), std::string::npos) << sql;
}

TEST(AccelSqlTest, OneAliasPerStep) {
  std::string sql = AccelSql("/a/b/c");
  EXPECT_NE(sql.find("Accel V1"), std::string::npos) << sql;
  EXPECT_NE(sql.find("Accel V2"), std::string::npos) << sql;
  EXPECT_NE(sql.find("Accel V3"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("REGEXP"), std::string::npos) << sql;
}

TEST(AccelSqlTest, StakedOutWindows) {
  std::string sql = AccelSql("/a//b");
  // '//'+child merges to a descendant window bounded by pre + size.
  EXPECT_NE(sql.find("V2.pre <= V1.pre + V1.size_"), std::string::npos) << sql;
  EXPECT_NE(sql.find("V2.pre > V1.pre"), std::string::npos) << sql;
}

TEST(AccelSqlTest, AncestorUsesPrePostPlane) {
  // '//b' merges into one descendant step (V1), so the ancestor is V2.
  std::string sql = AccelSql("//b/ancestor::a");
  EXPECT_NE(sql.find("V2.pre < V1.pre"), std::string::npos) << sql;
  EXPECT_NE(sql.find("V2.post > V1.post"), std::string::npos) << sql;
}

// --- staircase unit behavior ------------------------------------------------

TEST(StaircaseTest, DescendantPruningSkipsCoveredContexts) {
  // r > a > b > c : contexts {a, b} — b is inside a's window, so the
  // staircase scans a's window once; results must still be exact.
  auto doc = xml::ParseXml("<r><a><b><c/><c/></b></a><c/></r>").value();
  auto store = accel::AccelStore::Create(doc).value();
  accel::StaircaseEvaluator eval(*store);

  auto r = eval.EvaluateString("//c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);

  // Nested contexts: descendant::c from both a and b.
  auto r2 = eval.EvaluateString("//*/descendant::c");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().size(), 3u);
}

TEST(StaircaseTest, FollowingSingleWindow) {
  auto doc = xml::ParseXml("<r><a/><b/><a/><b/></r>").value();
  auto store = accel::AccelStore::Create(doc).value();
  accel::StaircaseEvaluator eval(*store);
  auto r = eval.EvaluateString("//a/following::b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
  auto r2 = eval.EvaluateString("//b/preceding::a");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().size(), 2u);
}

TEST(StaircaseTest, RejectsPosition) {
  auto doc = xml::ParseXml("<r><a/></r>").value();
  auto store = accel::AccelStore::Create(doc).value();
  accel::StaircaseEvaluator eval(*store);
  EXPECT_EQ(eval.EvaluateString("//a[1]").status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace xprel
