// Data-generator and shredding tests: determinism, planted query fixtures,
// loader validation, Edge/Accel store structure.

#include <gtest/gtest.h>

#include "accel/accel_store.h"
#include "data/dblp.h"
#include "data/xmark.h"
#include "shred/edge_loader.h"
#include "shred/schema_loader.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpatheval/evaluator.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

TEST(XMarkGenTest, DeterministicAndSchemaValid) {
  data::XMarkOptions opt;
  opt.scale = 0.005;
  xml::Document d1 = data::GenerateXMark(opt);
  xml::Document d2 = data::GenerateXMark(opt);
  EXPECT_EQ(xml::SerializeXml(d1), xml::SerializeXml(d2));

  auto schema = xsd::ParseXsd(data::XMarkXsd());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto graph = xsd::SchemaGraph::Build(schema.value());
  ASSERT_TRUE(graph.ok());
  auto store = shred::SchemaAwareStore::Create(graph.value());
  ASSERT_TRUE(store.ok());
  // Loading validates every element and attribute against the schema.
  EXPECT_TRUE(store.value()->LoadDocument(d1).ok());
}

TEST(XMarkGenTest, QueryFixturesPlanted) {
  data::XMarkOptions opt;
  opt.scale = 0.01;
  xml::Document doc = data::GenerateXMark(opt);
  xpatheval::XPathEvaluator oracle(doc);

  // Q9: open_auction0 has exactly four bidders (three preceding siblings).
  auto q9 = oracle.EvaluateString(
      "/site/open_auctions/open_auction[@id='open_auction0']/bidder");
  ASSERT_TRUE(q9.ok());
  EXPECT_EQ(q9.value().size(), 4u);

  // Q11: exactly one person0 bid precedes the person1 bid.
  auto q11 = oracle.EvaluateString(
      "/site/open_auctions/open_auction/bidder[personref/@person='person1']"
      "/preceding::bidder[personref/@person='person0']");
  ASSERT_TRUE(q11.ok());
  EXPECT_EQ(q11.value().size(), 1u);

  // Q21: item0's description holds exactly one keyword.
  auto q21 = oracle.EvaluateString(
      "/site/regions/*/item[@id='item0']/description//keyword");
  ASSERT_TRUE(q21.ok());
  EXPECT_EQ(q21.value().size(), 1u);

  // Q10: item0 is the first item in document order.
  auto items = oracle.EvaluateString("/site/regions/*/item");
  auto following = oracle.EvaluateString(
      "/site/regions/*/item[@id='item0']/following::item");
  ASSERT_TRUE(items.ok());
  ASSERT_TRUE(following.ok());
  EXPECT_EQ(following.value().size(), items.value().size() - 1);
}

TEST(XMarkGenTest, ScaleControlsEntityCounts) {
  data::XMarkOptions small{.scale = 0.005, .seed = 1};
  data::XMarkOptions large{.scale = 0.02, .seed = 1};
  xml::Document ds = data::GenerateXMark(small);
  xml::Document dl = data::GenerateXMark(large);
  EXPECT_GT(dl.size(), ds.size() * 3);
}

TEST(DblpGenTest, FixturesPlanted) {
  data::DblpOptions opt;
  opt.inproceedings = 400;
  opt.articles = 200;
  opt.books = 30;
  xml::Document doc = data::GenerateDblp(opt);
  auto schema = xsd::ParseXsd(data::DblpXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema).value();
  auto store = shred::SchemaAwareStore::Create(graph);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store.value()->LoadDocument(doc).ok());

  xpatheval::XPathEvaluator oracle(doc);
  // QD1: Harold G. Longbotham authors exactly two inproceedings.
  auto qd1 = oracle.EvaluateString(
      "//inproceedings/title[preceding-sibling::author = "
      "'Harold G. Longbotham']");
  ASSERT_TRUE(qd1.ok());
  EXPECT_EQ(qd1.value().size(), 2u);
  // QD4: at least one article has the sub/<x>/i nesting.
  auto qd4 = oracle.EvaluateString(
      "//i[parent::*/parent::sub/ancestor::article]");
  ASSERT_TRUE(qd4.ok());
  EXPECT_GE(qd4.value().size(), 1u);
  // QD5 selects a nontrivial but proper subset.
  auto qd5 = oracle.EvaluateString(
      "/dblp/inproceedings[author=/dblp/book/author]/title");
  auto all = oracle.EvaluateString("/dblp/inproceedings/title");
  ASSERT_TRUE(qd5.ok());
  ASSERT_TRUE(all.ok());
  EXPECT_GT(qd5.value().size(), all.value().size() / 10);
  EXPECT_LT(qd5.value().size(), all.value().size());
}

TEST(SchemaLoaderTest, RejectsInvalidDocuments) {
  auto schema = xsd::ParseXsd(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="a">
        <xs:complexType><xs:sequence>
          <xs:element name="b" type="xs:string"/>
        </xs:sequence><xs:attribute name="x"/></xs:complexType>
      </xs:element>
    </xs:schema>)").value();
  auto graph = xsd::SchemaGraph::Build(schema).value();
  auto store = shred::SchemaAwareStore::Create(graph).value();

  auto bad_root = xml::ParseXml("<z/>").value();
  EXPECT_FALSE(store->LoadDocument(bad_root).ok());
  auto bad_child = xml::ParseXml("<a><c/></a>").value();
  EXPECT_FALSE(store->LoadDocument(bad_child).ok());
  auto bad_attr = xml::ParseXml("<a y='1'><b>t</b></a>").value();
  EXPECT_FALSE(store->LoadDocument(bad_attr).ok());
  auto good = xml::ParseXml("<a x='1'><b>t</b></a>").value();
  EXPECT_TRUE(store->LoadDocument(good).ok());
}

TEST(SchemaLoaderTest, OriginsRoundTrip) {
  auto s = xsd::ParseXsd(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="a">
        <xs:complexType><xs:sequence>
          <xs:element name="b" type="xs:string" maxOccurs="unbounded"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:schema>)").value();
  auto graph = xsd::SchemaGraph::Build(s).value();
  auto store = shred::SchemaAwareStore::Create(graph).value();
  auto doc = xml::ParseXml("<a><b>1</b><b>2</b></a>").value();
  int64_t doc_id = store->LoadDocument(doc).value();
  for (xml::NodeId id = 1; id <= doc.size(); ++id) {
    if (!doc.IsElement(id)) continue;
    int64_t eid = store->ElementIdOf(doc_id, id);
    ASSERT_GE(eid, 1);
    const auto* origin = store->FindOrigin(eid);
    ASSERT_NE(origin, nullptr);
    EXPECT_EQ(origin->node, id);
    EXPECT_EQ(origin->doc_id, doc_id);
  }
  EXPECT_EQ(store->FindOrigin(999), nullptr);
}

TEST(EdgeStoreTest, StructureAndPaths) {
  auto store = shred::EdgeStore::Create().value();
  auto doc = xml::ParseXml("<a x='1'><b>t</b><b>u</b></a>").value();
  ASSERT_TRUE(store->LoadDocument(doc).ok());
  const rel::Table* edge = store->db().FindTable(shred::kEdgeTable);
  const rel::Table* attr = store->db().FindTable(shred::kAttrTable);
  const rel::Table* paths = store->db().FindTable(shred::kPathsTable);
  EXPECT_EQ(edge->row_count(), 3u);
  EXPECT_EQ(attr->row_count(), 1u);
  EXPECT_EQ(paths->row_count(), 2u);  // /a and /a/b
}

TEST(AccelStoreTest, RegionInvariants) {
  auto doc = xml::ParseXml("<a><b><c/></b><d/></a>").value();
  auto store = accel::AccelStore::Create(doc).value();
  ASSERT_EQ(store->element_count(), 4);
  // a=1, b=2, c=3, d=4 in preorder.
  EXPECT_EQ(store->name(1), "a");
  EXPECT_EQ(store->name(4), "d");
  EXPECT_EQ(store->region(1).size, 3);
  EXPECT_EQ(store->region(2).size, 1);
  EXPECT_EQ(store->region(2).parent_pre, 1);
  // pre/post plane: c descends from b descends from a; d follows b.
  EXPECT_TRUE(store->region(3).IsDescendantOf(store->region(1)));
  EXPECT_TRUE(store->region(3).IsDescendantOf(store->region(2)));
  EXPECT_TRUE(store->region(4).IsFollowing(store->region(2)));
  EXPECT_TRUE(store->region(2).IsPreceding(store->region(4)));
  EXPECT_TRUE(store->region(1).IsAncestorOf(store->region(4)));
  // Round trip pre <-> node.
  for (int32_t pre = 1; pre <= 4; ++pre) {
    EXPECT_EQ(store->PreOf(store->NodeOf(pre)), pre);
  }
}

}  // namespace
}  // namespace xprel
