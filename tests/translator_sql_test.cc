// Golden-shape tests for the PPF translator against the paper's Tables 3-6
// examples (Figure 1 schema). We assert on structural properties of the
// emitted SQL rather than byte-exact text.

#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace xprel {
namespace {

using testutil::Fixture;
using testutil::MakeFixture;

class TranslatorSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = MakeFixture(testutil::kFigure1Xsd, testutil::kFigure1Doc);
    ASSERT_NE(fx_, nullptr);
  }

  // Options matching the paper's Tables 3-5 examples, which predate the
  // Section 4.5 omission (with it on, Figure 1's U-P relations fold most
  // of these filters away entirely; see PathFilterOmission below).
  static translate::TranslateOptions NoOmit() {
    translate::TranslateOptions o;
    o.omit_redundant_path_filters = false;
    return o;
  }

  std::string Sql(const char* xpath, translate::TranslateOptions opt = {}) {
    translate::PpfTranslator t(fx_->store->mapping(), opt);
    auto q = t.TranslateString(xpath);
    EXPECT_TRUE(q.ok()) << xpath << ": " << q.status().ToString();
    return q.ok() ? q.value().ToSqlString() : "";
  }

  std::unique_ptr<Fixture> fx_;
};

// Paper Table 3 (1): /A[@x=3]/B/C//F — one regex for the whole forward
// path, a Dewey structural join to A, and the attribute restriction.
TEST_F(TranslatorSqlTest, Table3Row1) {
  std::string sql = Sql("/A[@x=3]/B/C//F", NoOmit());
  EXPECT_NE(sql.find("REGEXP_LIKE"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^/A/B/C/(.+/)?F$'"), std::string::npos) << sql;
  EXPECT_NE(sql.find("A.x = 3"), std::string::npos) << sql;
  EXPECT_NE(sql.find("F.dewey_pos"), std::string::npos) << sql;
  EXPECT_NE(sql.find("ORDER BY F.dewey_pos"), std::string::npos) << sql;
  EXPECT_NE(sql.find("DISTINCT"), std::string::npos) << sql;
  // B and C are never materialized.
  EXPECT_EQ(sql.find(" B,"), std::string::npos) << sql;
  EXPECT_EQ(sql.find(" C,"), std::string::npos) << sql;
}

// Paper Table 3 (2): single child-step PPF after a predicate becomes an FK
// equijoin with no Paths join at all (B is U-P).
TEST_F(TranslatorSqlTest, Table3Row2) {
  std::string sql = Sql("/A[@x=3]/B");
  EXPECT_NE(sql.find("B.A_id = A.id"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("Paths"), std::string::npos) << sql;
}

// Paper Table 3 (3): backward PPF filters the *previous* prominent's path.
TEST_F(TranslatorSqlTest, Table3Row3) {
  std::string sql = Sql("//F/parent::E/ancestor::B", NoOmit());
  EXPECT_NE(sql.find("'^.*/B/(.+/)?E/F$'"), std::string::npos) << sql;
  // Structural join: F between B and B || 0xFF.
  EXPECT_NE(sql.find("F.dewey_pos > B.dewey_pos"), std::string::npos) << sql;
  EXPECT_NE(sql.find("B.dewey_pos || HEXTORAW('ff')"), std::string::npos)
      << sql;
}

// Paper Table 4: following-sibling uses a Dewey comparison plus the shared
// parent FK equality.
TEST_F(TranslatorSqlTest, Table4SiblingAxes) {
  std::string sql = Sql("//C/following-sibling::G");
  EXPECT_NE(sql.find("G.dewey_pos > C.dewey_pos"), std::string::npos) << sql;
  EXPECT_NE(sql.find("G.B_id = C.B_id"), std::string::npos) << sql;

  std::string sql2 = Sql("//G/preceding::C");
  EXPECT_NE(sql2.find("G.dewey_pos > C.dewey_pos || HEXTORAW('ff')"),
            std::string::npos)
      << sql2;
}

// Paper Table 5 (1): predicate clause becomes an EXISTS sub-select whose
// regex includes the context's forward path.
TEST_F(TranslatorSqlTest, Table5PredicateSubselect) {
  std::string sql = Sql("/A/B[C/E/F=2]", NoOmit());
  EXPECT_NE(sql.find("EXISTS (SELECT NULL FROM"), std::string::npos) << sql;
  EXPECT_NE(sql.find("F.text = 2"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^/A/B/C/E/F$'"), std::string::npos) << sql;
}

// Paper Table 5 (2): backward-simple-path predicates fold into regexes on
// the context's own path — no joins, no sub-selects.
TEST_F(TranslatorSqlTest, Table5BackwardPredicateRegex) {
  // Both branches are schema-feasible for G: parent::B and parent::G.
  std::string sql = Sql("//G[parent::B or parent::G]", NoOmit());
  EXPECT_EQ(sql.find("EXISTS"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^.*/B/G$'"), std::string::npos) << sql;
  EXPECT_NE(sql.find("'^.*/G/G$'"), std::string::npos) << sql;
  EXPECT_NE(sql.find(" OR "), std::string::npos) << sql;
}

// A schema-infeasible backward branch folds away statically: F can never
// have a G ancestor in Figure 1, so only the parent::E regex remains.
TEST_F(TranslatorSqlTest, InfeasibleBackwardPredicateBranchFolds) {
  std::string sql = Sql("//F[parent::E or ancestor::G]", NoOmit());
  EXPECT_NE(sql.find("'^.*/E/F$'"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("/G/"), std::string::npos) << sql;
}

// Paper Table 6 / Section 4.4: a wildcard prominent step inside a predicate
// becomes OR-ed sub-selects, not statement-level UNION.
TEST_F(TranslatorSqlTest, Table6NoSplittingInsidePredicates) {
  std::string sql = Sql("/A/B[C/*]");
  EXPECT_EQ(sql.find("UNION"), std::string::npos) << sql;
  // Two relations can host C/*: D and E -> two OR-ed EXISTS.
  size_t first = sql.find("EXISTS");
  ASSERT_NE(first, std::string::npos) << sql;
  EXPECT_NE(sql.find("EXISTS", first + 1), std::string::npos) << sql;
}

// Section 4.4: a wildcard prominent step on the backbone *does* split.
TEST_F(TranslatorSqlTest, BackboneWildcardSplits) {
  std::string sql = Sql("/A/B/C/*");
  EXPECT_NE(sql.find("UNION"), std::string::npos) << sql;
}

// With the 4.5 optimization on, Figure 1's U-P F relation needs no path
// filter at all: the translator proves the regex redundant statically.
TEST_F(TranslatorSqlTest, UniquePathFoldsFilterCompletely) {
  std::string sql = Sql("/A[@x=3]/B/C//F");
  EXPECT_EQ(sql.find("Paths"), std::string::npos) << sql;
  EXPECT_NE(sql.find("A.x = 3"), std::string::npos) << sql;
}

// Section 4.5: U-P relations never join Paths; disabling the optimization
// forces the join.
TEST_F(TranslatorSqlTest, PathFilterOmission) {
  EXPECT_EQ(Sql("/A/B/C/D").find("Paths"), std::string::npos);
  translate::TranslateOptions no_omit;
  no_omit.omit_redundant_path_filters = false;
  EXPECT_NE(Sql("/A/B/C/D", no_omit).find("Paths"), std::string::npos);
}

// Section 4.2 ablation: without FK joins, child steps use Dewey windows
// with an exact LENGTH level check.
TEST_F(TranslatorSqlTest, DeweyChildJoinAblation) {
  translate::TranslateOptions no_fk;
  no_fk.fk_joins_for_child_parent = false;
  std::string sql = Sql("/A[@x=3]/B", no_fk);
  EXPECT_EQ(sql.find("B.A_id"), std::string::npos) << sql;
  EXPECT_NE(sql.find("LENGTH(B.dewey_pos) = LENGTH(A.dewey_pos) + 3"),
            std::string::npos)
      << sql;
}

// Conventional mode: per-step joins, no Paths.
TEST_F(TranslatorSqlTest, NaiveModePerStepJoins) {
  std::string sql =
      Sql("/A/B/C/D", translate::NaiveTranslateOptions());
  EXPECT_EQ(sql.find("Paths"), std::string::npos) << sql;
  EXPECT_NE(sql.find("B.A_id = A.id"), std::string::npos) << sql;
  EXPECT_NE(sql.find("C.B_id = B.id"), std::string::npos) << sql;
  EXPECT_NE(sql.find("D.C_id = C.id"), std::string::npos) << sql;
}

// Schema-infeasible queries prune to a statically empty SQL.
TEST_F(TranslatorSqlTest, InfeasibleQueriesAreStaticallyEmpty) {
  translate::PpfTranslator t(fx_->store->mapping());
  auto q = t.TranslateString("/A/F");  // F is never a child of A
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().statically_empty);
  auto q2 = t.TranslateString("/Zzz");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2.value().statically_empty);
}

// Unsupported features are reported, not mistranslated.
TEST_F(TranslatorSqlTest, UnsupportedFeatures) {
  translate::PpfTranslator t(fx_->store->mapping());
  EXPECT_EQ(t.TranslateString("/A/B[2]").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(t.TranslateString("/A/B[position()=1]").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(t.TranslateString("/").status().code(), StatusCode::kUnsupported);
}

// Recursive '//' needs no recursion machinery: one regex handles it
// (paper Section 6's contrast with SQL99-recursion approaches).
TEST_F(TranslatorSqlTest, RecursionViaRegex) {
  std::string sql = Sql("/A/B/G//G");
  EXPECT_NE(sql.find("'^/A/B/G/(.+/)?G$'"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("UNION"), std::string::npos) << sql;
}

}  // namespace
}  // namespace xprel
