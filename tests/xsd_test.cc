// XSD parser and schema-graph marking tests.

#include <gtest/gtest.h>

#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace xprel::xsd {
namespace {

TEST(XsdParserTest, NamedTypesAndRefs) {
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:complexType name="PersonType">
        <xs:sequence><xs:element name="name" type="xs:string"/></xs:sequence>
        <xs:attribute name="id"/>
      </xs:complexType>
      <xs:element name="company">
        <xs:complexType><xs:sequence>
          <xs:element name="buyer" type="PersonType"/>
          <xs:element name="seller" type="PersonType"/>
          <xs:element ref="note" minOccurs="0"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element name="note" type="xs:string"/>
    </xs:schema>)";
  auto schema = ParseXsd(xsd);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const Schema& s = schema.value();
  int type = s.FindNamedType("PersonType");
  ASSERT_GE(type, 0);
  // buyer and seller share the named type.
  int buyer = -1, seller = -1;
  for (size_t i = 0; i < s.elements().size(); ++i) {
    if (s.elements()[i].name == "buyer") buyer = static_cast<int>(i);
    if (s.elements()[i].name == "seller") seller = static_cast<int>(i);
  }
  ASSERT_GE(buyer, 0);
  ASSERT_GE(seller, 0);
  EXPECT_EQ(s.element(buyer).type_id, type);
  EXPECT_EQ(s.element(seller).type_id, type);
  EXPECT_EQ(s.type(type).attributes.size(), 1u);

  // 'company' is the only root (note is referenced).
  auto roots = s.RootElements();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(s.element(roots[0]).name, "company");
}

TEST(XsdParserTest, MixedAndSimpleContent) {
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="doc">
        <xs:complexType mixed="true"><xs:sequence>
          <xs:element name="em" type="xs:string" minOccurs="0"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:schema>)";
  auto schema = ParseXsd(xsd).value();
  int doc = schema.FindGlobalElement("doc");
  ASSERT_GE(doc, 0);
  EXPECT_TRUE(schema.type(schema.element(doc).type_id).has_text);
}

TEST(XsdParserTest, Errors) {
  EXPECT_FALSE(ParseXsd("<notaschema/>").ok());
  EXPECT_FALSE(ParseXsd(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="a"><xs:complexType><xs:sequence>
        <xs:element ref="missing"/>
      </xs:sequence></xs:complexType></xs:element>
    </xs:schema>)").ok());
}

TEST(SchemaGraphTest, MarkingClasses) {
  // c has two paths (F-P); r is recursive (I-P); everything else U-P.
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="root">
        <xs:complexType><xs:sequence>
          <xs:element name="a"><xs:complexType><xs:sequence>
            <xs:element ref="c"/>
          </xs:sequence></xs:complexType></xs:element>
          <xs:element name="b"><xs:complexType><xs:sequence>
            <xs:element ref="c"/>
          </xs:sequence></xs:complexType></xs:element>
          <xs:element ref="r"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element name="c" type="xs:string"/>
      <xs:element name="r">
        <xs:complexType><xs:sequence>
          <xs:element ref="r" minOccurs="0"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:schema>)";
  auto schema = ParseXsd(xsd).value();
  auto graph = SchemaGraph::Build(schema);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const SchemaGraph& g = graph.value();

  auto class_of = [&](const char* tag) {
    auto nodes = g.NodesByTag(tag);
    EXPECT_EQ(nodes.size(), 1u) << tag;
    return g.node(nodes[0]).path_class;
  };
  EXPECT_EQ(class_of("root"), PathClass::kUniquePath);
  EXPECT_EQ(class_of("a"), PathClass::kUniquePath);
  EXPECT_EQ(class_of("c"), PathClass::kFinitePaths);
  EXPECT_EQ(class_of("r"), PathClass::kInfinitePaths);

  auto c_nodes = g.NodesByTag("c");
  EXPECT_EQ(g.node(c_nodes[0]).root_paths,
            (std::vector<std::string>{"/root/a/c", "/root/b/c"}));
}

TEST(SchemaGraphTest, ReachabilityPrunesOrphans) {
  const char* xsd = R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="root" type="xs:string"/>
      <xs:element name="orphan" type="xs:string"/>
    </xs:schema>)";
  auto schema = ParseXsd(xsd).value();
  // Both are unreferenced globals, so both are document roots.
  auto graph = SchemaGraph::Build(schema).value();
  EXPECT_EQ(graph.roots().size(), 2u);
  EXPECT_EQ(graph.ReachableNodes().size(), 2u);
}

TEST(SchemaGraphTest, DescribeMarkingMentionsEveryReachableTag) {
  auto schema = ParseXsd(R"(
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="x">
        <xs:complexType><xs:sequence>
          <xs:element name="y" type="xs:string"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:schema>)").value();
  auto graph = SchemaGraph::Build(schema).value();
  std::string desc = graph.DescribeMarking();
  EXPECT_NE(desc.find("x: U-P"), std::string::npos);
  EXPECT_NE(desc.find("y: U-P"), std::string::npos);
}

}  // namespace
}  // namespace xprel::xsd
