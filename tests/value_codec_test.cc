// Value semantics and order-preserving key-codec tests.

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "rel/key_codec.h"
#include "rel/value.h"

namespace xprel::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Real(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Bytes("\x01\x02").AsBytes(), std::string("\x01\x02"));
}

TEST(ValueTest, ToNumberCoercion) {
  EXPECT_EQ(Value::Int(3).ToNumber(), 3.0);
  EXPECT_EQ(Value::Str("1994").ToNumber(), 1994.0);
  EXPECT_EQ(Value::Str(" 7 ").ToNumber(), 7.0);
  EXPECT_FALSE(Value::Str("abc").ToNumber().has_value());
  EXPECT_FALSE(Value::Null().ToNumber().has_value());
  EXPECT_FALSE(Value::Bytes("x").ToNumber().has_value());
}

TEST(ValueTest, SqlLiterals) {
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
  EXPECT_EQ(Value::Str("o'brien").ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Bytes("\xff").ToSqlLiteral(), "HEXTORAW('ff')");
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Int(0));        // nulls first
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_LT(Value::Int(9), Value::Str("1"));      // by type, then value
}

// --- key codec -------------------------------------------------------------

Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(static_cast<int64_t>(rng() % 2001) - 1000);
    case 2: {
      int len = static_cast<int>(rng() % 6);
      std::string s;
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng() % 4));  // includes 0x00!
      }
      return Value::Bytes(std::move(s));
    }
    default: {
      int len = static_cast<int>(rng() % 5);
      std::string s;
      for (int i = 0; i < len; ++i) s.push_back('a' + rng() % 3);
      return Value::Str(std::move(s));
    }
  }
}

TEST(KeyCodecTest, OrderPreservationProperty) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<Value> a, b;
    size_t n = 1 + rng() % 3;
    for (size_t i = 0; i < n; ++i) {
      a.push_back(RandomValue(rng));
      b.push_back(RandomValue(rng));
    }
    // Column-wise comparison using Value's total order.
    int logical = 0;
    for (size_t i = 0; i < n && logical == 0; ++i) {
      if (a[i] < b[i]) logical = -1;
      else if (b[i] < a[i]) logical = 1;
    }
    std::string ka = EncodeKey(a), kb = EncodeKey(b);
    int physical = ka.compare(kb);
    physical = physical < 0 ? -1 : (physical > 0 ? 1 : 0);
    ASSERT_EQ(logical, physical)
        << "trial " << trial << " a0=" << a[0].ToDebugString()
        << " b0=" << b[0].ToDebugString();
  }
}

TEST(KeyCodecTest, PrefixBoundsCoverExactlyTheExtensions) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    Value prefix = RandomValue(rng);
    Value extra = RandomValue(rng);
    std::string lo = EncodeKeyPrefixLowerBound({prefix});
    std::string hi = EncodeKeyPrefixUpperBound({prefix});
    std::string extended = EncodeKey({prefix, extra});
    EXPECT_GE(extended, lo);
    EXPECT_LT(extended, hi);

    Value other = RandomValue(rng);
    if (!(other == prefix)) {
      std::string other_key = EncodeKey({other, extra});
      bool inside = other_key >= lo && other_key < hi;
      EXPECT_FALSE(inside) << "non-extension inside prefix range";
    }
  }
}

TEST(KeyCodecTest, IntSignHandling) {
  std::string neg = EncodeKey({Value::Int(-5)});
  std::string zero = EncodeKey({Value::Int(0)});
  std::string pos = EncodeKey({Value::Int(5)});
  EXPECT_LT(neg, zero);
  EXPECT_LT(zero, pos);
}

TEST(KeyCodecTest, DoubleOrdering) {
  std::vector<double> values = {-100.5, -1.0, -0.25, 0.0, 0.25, 1.0, 99.75};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeKey({Value::Real(values[i])}),
              EncodeKey({Value::Real(values[i + 1])}))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyCodecTest, EmbeddedZeroBytes) {
  // "a" < "a\0" < "a\0\0" < "a\1" — prefixes sort before extensions.
  std::string a = EncodeKey({Value::Bytes("a")});
  std::string a0 = EncodeKey({Value::Bytes(std::string("a\0", 2))});
  std::string a00 = EncodeKey({Value::Bytes(std::string("a\0\0", 3))});
  std::string a1 = EncodeKey({Value::Bytes(std::string("a\1", 2))});
  EXPECT_LT(a, a0);
  EXPECT_LT(a0, a00);
  EXPECT_LT(a00, a1);
}

}  // namespace
}  // namespace xprel::rel
