// PPF splitting and path-pattern (regex) construction tests — the paper's
// Section 4.1 definitions and Table 1 examples.

#include <gtest/gtest.h>

#include "translate/ppf.h"
#include "xpath/parser.h"

namespace xprel::translate {
namespace {

std::vector<Ppf> Split(const xpath::LocationPath& path) {
  auto r = SplitIntoPpfs(path);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(PpfSplitTest, SingleForwardFragment) {
  auto e = xpath::ParseXPath("/a/b//c/*").value();
  auto ppfs = Split(e.branches[0]);
  ASSERT_EQ(ppfs.size(), 1u);
  EXPECT_EQ(ppfs[0].kind, PpfKind::kForward);
  EXPECT_EQ(ppfs[0].steps.size(), 5u);  // a, b, connector, c, *
}

TEST(PpfSplitTest, PredicateEndsFragment) {
  // /A/B[x]/C/D: predicate on B ends the first fragment (paper: a
  // predicate on an intermediate step always separates the path).
  auto e = xpath::ParseXPath("/A/B[@x=1]/C/D").value();
  auto ppfs = Split(e.branches[0]);
  ASSERT_EQ(ppfs.size(), 2u);
  EXPECT_EQ(ppfs[0].steps.size(), 2u);
  EXPECT_EQ(ppfs[1].steps.size(), 2u);
  EXPECT_EQ(ppfs[0].prominent().name, "B");
  EXPECT_EQ(ppfs[1].prominent().name, "D");
}

TEST(PpfSplitTest, BackwardFragments) {
  // //F/parent::D/ancestor::B (paper Table 3-3): forward then backward.
  auto e = xpath::ParseXPath("//F/parent::D/ancestor::B").value();
  auto ppfs = Split(e.branches[0]);
  ASSERT_EQ(ppfs.size(), 2u);
  EXPECT_EQ(ppfs[0].kind, PpfKind::kForward);
  EXPECT_EQ(ppfs[1].kind, PpfKind::kBackward);
  EXPECT_EQ(ppfs[1].steps.size(), 2u);
}

TEST(PpfSplitTest, OrderAxesAreSingletons) {
  auto e = xpath::ParseXPath(
      "/a/b/following-sibling::c/preceding::d/e").value();
  auto ppfs = Split(e.branches[0]);
  ASSERT_EQ(ppfs.size(), 4u);
  EXPECT_EQ(ppfs[0].kind, PpfKind::kForward);
  EXPECT_EQ(ppfs[1].kind, PpfKind::kOrder);
  EXPECT_EQ(ppfs[2].kind, PpfKind::kOrder);
  EXPECT_EQ(ppfs[3].kind, PpfKind::kForward);
}

TEST(PpfSplitTest, AlternatingDirections) {
  auto e = xpath::ParseXPath("/a/b/parent::a/c/ancestor::x").value();
  auto ppfs = Split(e.branches[0]);
  ASSERT_EQ(ppfs.size(), 4u);
  EXPECT_EQ(ppfs[0].kind, PpfKind::kForward);
  EXPECT_EQ(ppfs[1].kind, PpfKind::kBackward);
  EXPECT_EQ(ppfs[2].kind, PpfKind::kForward);
  EXPECT_EQ(ppfs[3].kind, PpfKind::kBackward);
}

// --- forward patterns (paper Table 1) --------------------------------------

std::string ForwardRegex(const char* xpath, bool rooted = true) {
  auto e = xpath::ParseXPath(xpath).value();
  PathPattern p = rooted ? PathPattern::Rooted() : PathPattern::Unrooted();
  std::vector<const xpath::Step*> steps;
  for (const xpath::Step& s : e.branches[0].steps) steps.push_back(&s);
  EXPECT_TRUE(ExtendForwardPattern(p, steps));
  return p.ToRegex();
}

TEST(PathPatternTest, Table1Forward) {
  EXPECT_EQ(ForwardRegex("//B/C"), "^/(.+/)?B/C$");
  EXPECT_EQ(ForwardRegex("/A/B//F"), "^/A/B/(.+/)?F$");
  EXPECT_EQ(ForwardRegex("//C/*/F"), "^/(.+/)?C/[^/]+/F$");
  EXPECT_EQ(ForwardRegex("/A/descendant::F"), "^/A/(.+/)?F$");
}

TEST(PathPatternTest, DepthTracking) {
  auto e = xpath::ParseXPath("/a/b/c").value();
  PathPattern p = PathPattern::Rooted();
  std::vector<const xpath::Step*> steps;
  for (const xpath::Step& s : e.branches[0].steps) steps.push_back(&s);
  ASSERT_TRUE(ExtendForwardPattern(p, steps));
  EXPECT_TRUE(p.AllChildHops());
  EXPECT_EQ(p.MinDepth(), 3);

  auto e2 = xpath::ParseXPath("/a//b").value();
  PathPattern p2 = PathPattern::Rooted();
  steps.clear();
  for (const xpath::Step& s : e2.branches[0].steps) steps.push_back(&s);
  ASSERT_TRUE(ExtendForwardPattern(p2, steps));
  EXPECT_FALSE(p2.AllChildHops());
}

TEST(PathPatternTest, SelfIntersection) {
  // self::X on a wildcard narrows it; on a different name it contradicts.
  auto e = xpath::ParseXPath("/a/*/self::b").value();
  PathPattern p = PathPattern::Rooted();
  std::vector<const xpath::Step*> steps;
  for (const xpath::Step& s : e.branches[0].steps) steps.push_back(&s);
  ASSERT_TRUE(ExtendForwardPattern(p, steps));
  EXPECT_EQ(p.ToRegex(), "^/a/b$");

  auto e2 = xpath::ParseXPath("/a/c/self::b").value();
  PathPattern p2 = PathPattern::Rooted();
  steps.clear();
  for (const xpath::Step& s : e2.branches[0].steps) steps.push_back(&s);
  EXPECT_FALSE(ExtendForwardPattern(p2, steps));
}

TEST(PathPatternTest, EscapesMetacharacters) {
  EXPECT_EQ(EscapeRegexLiteral("a.b*c"), "a\\.b\\*c");
  auto e = xpath::ParseXPath("/a.b").value();
  PathPattern p = PathPattern::Rooted();
  std::vector<const xpath::Step*> steps;
  for (const xpath::Step& s : e.branches[0].steps) steps.push_back(&s);
  ASSERT_TRUE(ExtendForwardPattern(p, steps));
  EXPECT_EQ(p.ToRegex(), "^/a\\.b$");
}

// --- backward patterns ------------------------------------------------------

TEST(PathPatternTest, BackwardRegexes) {
  // //F/parent::D/ancestor::B -> filter on F's path (paper Table 3-3).
  auto e = xpath::ParseXPath("x/parent::D/ancestor::B").value();
  std::vector<const xpath::Step*> steps;
  for (size_t i = 1; i < e.branches[0].steps.size(); ++i) {
    steps.push_back(&e.branches[0].steps[i]);
  }
  EXPECT_EQ(BackwardPathRegex(steps, "F"), "^.*/B/(.+/)?D/F$");
}

TEST(PathPatternTest, BackwardWithWildcards) {
  // parent::*/parent::sub/ancestor::article on context i (paper QD4).
  auto e =
      xpath::ParseXPath("x/parent::*/parent::sub/ancestor::article").value();
  std::vector<const xpath::Step*> steps;
  for (size_t i = 1; i < e.branches[0].steps.size(); ++i) {
    steps.push_back(&e.branches[0].steps[i]);
  }
  EXPECT_EQ(BackwardPathRegex(steps, "i"),
            "^.*/article/(.+/)?sub/[^/]+/i$");
}

// --- -or-self expansion -----------------------------------------------------

TEST(OrSelfExpansionTest, ExpandsNameTestedSteps) {
  auto e = xpath::ParseXPath(
      "/descendant-or-self::a/descendant-or-self::b").value();
  auto expanded = ExpandOrSelfSteps(e);
  EXPECT_EQ(expanded.branches.size(), 4u);  // {self,desc} x {self,desc}
}

TEST(OrSelfExpansionTest, LeavesConnectorsAlone) {
  auto e = xpath::ParseXPath("//a//b").value();
  auto expanded = ExpandOrSelfSteps(e);
  EXPECT_EQ(expanded.branches.size(), 1u);
}

TEST(OrSelfExpansionTest, ExpandsInsidePredicates) {
  auto e = xpath::ParseXPath("/a[descendant-or-self::b]").value();
  auto expanded = ExpandOrSelfSteps(e);
  ASSERT_EQ(expanded.branches.size(), 1u);
  std::string text = xpath::ToString(expanded);
  EXPECT_NE(text.find(" or "), std::string::npos) << text;
}

}  // namespace
}  // namespace xprel::translate
