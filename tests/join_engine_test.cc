// Join-engine tests: planner strategy selection (hash vs merge vs
// nested-loop per query shape), execution counters proving each strategy
// actually runs, cross-backend result identity on XMark fragments, and the
// bounded LRU plan cache (including eviction under concurrent executions).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "data/xmark.h"
#include "engine/engine.h"
#include "rel/query.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

// ---------------------------------------------------------------------------
// Planner strategy selection at the relational level
// ---------------------------------------------------------------------------

class JoinPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel::TableSchema authors;
    authors.name = "authors";
    authors.columns = {{"id", rel::ValueType::kInt64, false},
                       {"name", rel::ValueType::kString, false}};
    authors.indexes = {{"pk_authors", {0}, true}};
    rel::Table* a = db_.CreateTable(std::move(authors)).value();
    ASSERT_TRUE(a->Insert({rel::Value::Int(1), rel::Value::Str("Knuth")}).ok());
    ASSERT_TRUE(a->Insert({rel::Value::Int(2), rel::Value::Str("Date")}).ok());

    rel::TableSchema books;
    books.name = "books";
    books.columns = {{"id", rel::ValueType::kInt64, false},
                     {"author", rel::ValueType::kString, false},
                     {"year", rel::ValueType::kInt64, false}};
    books.indexes = {{"pk_books", {0}, true}, {"idx_books_year", {2}, false}};
    rel::Table* b = db_.CreateTable(std::move(books)).value();
    ASSERT_TRUE(b->Insert({rel::Value::Int(10), rel::Value::Str("Knuth"),
                           rel::Value::Int(1968)})
                    .ok());
    ASSERT_TRUE(b->Insert({rel::Value::Int(11), rel::Value::Str("Date"),
                           rel::Value::Int(1975)})
                    .ok());
    ASSERT_TRUE(b->Insert({rel::Value::Int(12), rel::Value::Str("Knuth"),
                           rel::Value::Int(1989)})
                    .ok());
  }

  std::string PlanFor(const rel::SelectStmt& s) {
    auto plan = rel::PlanSelect(db_, s, nullptr);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return "";
    return plan.value()->Describe();
  }

  rel::Database db_;
};

TEST_F(JoinPlannerTest, UnindexedEquiJoinPicksHashProbe) {
  rel::SelectStmt s;
  s.select.push_back({rel::Col("b", "id"), "id"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  // `author` has no index, so the only alternatives are a nested seq scan
  // (rows * rows) or a build-once hash table.
  s.where = rel::Eq(rel::Col("b", "author"), rel::Col("a", "name"));
  std::string d = PlanFor(s);
  EXPECT_NE(d.find("HashProbe(author)"), std::string::npos) << d;
}

TEST_F(JoinPlannerTest, DependentRangePicksMergeJoin) {
  rel::SelectStmt s;
  s.select.push_back({rel::Col("b", "id"), "id"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  // A dependent lower bound on an indexed column: one sorted sweep with a
  // monotone frontier beats a half-open index range scan per outer row.
  s.where = rel::Bin(rel::SqlExpr::BinOp::kGt, rel::Col("b", "year"),
                     rel::Col("a", "id"));
  std::string d = PlanFor(s);
  EXPECT_NE(d.find("MergeJoin(range on year"), std::string::npos) << d;
}

TEST_F(JoinPlannerTest, NonEquiNonRangePredicateFallsBackToNestedLoop) {
  rel::SelectStmt s;
  s.select.push_back({rel::Col("b", "id"), "id"});
  s.from = {{"authors", "a"}, {"books", "b"}};
  // <> is neither an equijoin key nor a range bound; no hash or merge
  // strategy applies, so the inner side must be a plain scan.
  s.where = rel::Bin(rel::SqlExpr::BinOp::kNe, rel::Col("b", "author"),
                     rel::Col("a", "name"));
  std::string d = PlanFor(s);
  EXPECT_EQ(d.find("HashProbe"), std::string::npos) << d;
  EXPECT_EQ(d.find("MergeJoin"), std::string::npos) << d;
  EXPECT_NE(d.find("SeqScan on books"), std::string::npos) << d;
}

// ---------------------------------------------------------------------------
// Engine-level: each strategy executes, with live counters
// ---------------------------------------------------------------------------

class JoinEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::XMarkOptions opt;
    opt.scale = 0.02;
    doc_ = new xml::Document(data::GenerateXMark(opt));
    // The graph (and engine) borrow the schema, so it must outlive them.
    schema_ = new xsd::Schema(xsd::ParseXsd(data::XMarkXsd()).value());
    graph_ = new xsd::SchemaGraph(
        xsd::SchemaGraph::Build(*schema_).value());
    engine_ =
        engine::XPathEngine::Build(*doc_, *graph_).value().release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete graph_;
    delete schema_;
    delete doc_;
    engine_ = nullptr;
    graph_ = nullptr;
    schema_ = nullptr;
    doc_ = nullptr;
  }

  static xml::Document* doc_;
  static xsd::Schema* schema_;
  static xsd::SchemaGraph* graph_;
  static engine::XPathEngine* engine_;
};

xml::Document* JoinEngineTest::doc_ = nullptr;
xsd::Schema* JoinEngineTest::schema_ = nullptr;
xsd::SchemaGraph* JoinEngineTest::graph_ = nullptr;
engine::XPathEngine* JoinEngineTest::engine_ = nullptr;

TEST_F(JoinEngineTest, AncestorQueryUsesAllThreeSubstrates) {
  // ancestor:: produces the Dewey prefix-range theta-join (merge ancestor),
  // the Paths equijoin (hash probe), and the path regexes (bitmaps).
  const char* q = "//keyword/ancestor::listitem";
  auto plan = engine_->ExplainPlan(engine::Backend::kPpf, q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("MergeJoin(ancestor on dewey_pos"),
            std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("HashProbe("), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("bitmap ("), std::string::npos) << plan.value();
  // The plan header reports the executor batch size, and every step says
  // whether it runs vectorized or falls back to row-at-a-time, so scalar
  // regressions are visible in sql_explorer.
  EXPECT_NE(plan.value().find("batch size: 1024"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("exec=vec"), std::string::npos) << plan.value();

  auto out = engine_->Run(engine::Backend::kPpf, q);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out.value().nodes.size(), 0u);
  EXPECT_GT(out.value().stats.merge_join_rounds, 0u);
  EXPECT_GT(out.value().stats.hash_join_probes, 0u);
  EXPECT_GT(out.value().stats.bitmap_prefilter_tests, 0u);
  EXPECT_GT(out.value().stats.bitmap_prefilter_hits, 0u);
}

TEST_F(JoinEngineTest, AcceleratorAncestorUsesRangeMergeJoin) {
  // The accelerator window (pre < x AND post > y) is a pure range
  // theta-join, so the merge driver runs in range mode.
  const char* q = "//keyword/ancestor::listitem";
  auto plan = engine_->ExplainPlan(engine::Backend::kAccelerator, q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("MergeJoin(range on pre"), std::string::npos)
      << plan.value();

  auto out = engine_->Run(engine::Backend::kAccelerator, q);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out.value().nodes.size(), 0u);
  EXPECT_GT(out.value().stats.merge_join_rounds, 0u);
}

TEST_F(JoinEngineTest, DecorrelatedExistsBuildsSemiJoinOnce) {
  // Predicate EXISTS over a correlated Dewey prefix range: one semi-join
  // build, then pure probes. hits + misses must equal subquery_evals.
  const char* q = "/site/regions/*/item[description]";
  auto out = engine_->Run(engine::Backend::kPpf, q);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out.value().nodes.size(), 0u);
  EXPECT_GT(out.value().stats.exists_semijoin_builds, 0u);
  EXPECT_GT(out.value().stats.exists_cache_hits, 0u);
  EXPECT_EQ(out.value().stats.exists_cache_hits +
                out.value().stats.exists_cache_misses,
            out.value().stats.subquery_evals);
}

TEST_F(JoinEngineTest, ExplainPlanRejectsStaircase) {
  auto plan = engine_->ExplainPlan(engine::Backend::kStaircase, "/site");
  EXPECT_FALSE(plan.ok());
}

// ---------------------------------------------------------------------------
// Cross-backend identity: every strategy mix returns the same node set
// ---------------------------------------------------------------------------

TEST(JoinIdentityTest, AllBackendsMatchNaiveOnRandomXMarkFragments) {
  const char* queries[] = {
      "//keyword/ancestor::listitem",
      "//listitem//keyword",
      "/site/regions/*/item[description//keyword]",
      "/site/people/person[watches]",
      "//bidder/following-sibling::bidder",
      "/site/open_auctions/open_auction[bidder]/seller",
      "//item[location = 'United States']/name",
      "/site/closed_auctions/closed_auction/annotation//keyword",
  };
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  ASSERT_TRUE(graph.ok());
  int checked = 0;
  for (uint64_t seed : {7u, 19u, 101u}) {
    data::XMarkOptions opt;
    opt.scale = 0.01;
    opt.seed = seed;
    xml::Document doc = data::GenerateXMark(opt);
    auto engine = engine::XPathEngine::Build(doc, graph.value());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const char* q : queries) {
      // The naive backend plans per-step nested joins with no Paths
      // pre-filtering — the reference the join strategies must reproduce.
      auto expected = engine.value()->Run(engine::Backend::kNaive, q);
      ASSERT_TRUE(expected.ok())
          << q << ": " << expected.status().ToString();
      for (engine::Backend b :
           {engine::Backend::kPpf, engine::Backend::kEdgePpf,
            engine::Backend::kAccelerator, engine::Backend::kStaircase}) {
        auto actual = engine.value()->Run(b, q);
        ASSERT_TRUE(actual.ok())
            << q << " on " << BackendName(b) << ": "
            << actual.status().ToString();
        EXPECT_EQ(expected.value().nodes, actual.value().nodes)
            << "seed " << seed << " query " << q << " on " << BackendName(b);
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 3 * 8 * 4);
}

// ---------------------------------------------------------------------------
// Bounded LRU plan cache
// ---------------------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::XMarkOptions opt;
    opt.scale = 0.005;
    doc_ = data::GenerateXMark(opt);
    // graph_ borrows schema_, which must stay alive as a member.
    schema_ = xsd::ParseXsd(data::XMarkXsd()).value();
    graph_ = xsd::SchemaGraph::Build(schema_).value();
  }

  std::unique_ptr<engine::XPathEngine> MakeEngine(size_t capacity) {
    engine::EngineOptions options;
    options.plan_cache_capacity = capacity;
    auto e = engine::XPathEngine::Build(doc_, graph_, options);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  xml::Document doc_;
  xsd::Schema schema_;
  xsd::SchemaGraph graph_;
};

TEST_F(PlanCacheTest, RepeatedQueryCachesOneEntry) {
  auto engine = MakeEngine(16);
  ASSERT_TRUE(engine->Run(engine::Backend::kPpf, "/site/regions").ok());
  ASSERT_TRUE(engine->Run(engine::Backend::kPpf, "/site/regions").ok());
  EXPECT_EQ(engine->plan_cache_size(), 1u);
}

TEST_F(PlanCacheTest, CapacityBoundsCacheAndEvictedQueryStillAnswers) {
  auto engine = MakeEngine(2);
  const char* queries[] = {"/site/regions", "/site/people/person",
                           "//keyword", "/site/regions/*/item"};
  auto first = engine->Run(engine::Backend::kPpf, queries[0]);
  ASSERT_TRUE(first.ok());
  for (const char* q : queries) {
    ASSERT_TRUE(engine->Run(engine::Backend::kPpf, q).ok());
    EXPECT_LE(engine->plan_cache_size(), 2u);
  }
  // queries[0] was evicted; re-running replans and must agree.
  auto again = engine->Run(engine::Backend::kPpf, queries[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value().nodes, again.value().nodes);
  EXPECT_LE(engine->plan_cache_size(), 2u);
}

TEST_F(PlanCacheTest, ZeroCapacityMeansUnbounded) {
  auto engine = MakeEngine(0);
  const char* queries[] = {"/site/regions", "/site/people/person",
                           "//keyword"};
  for (const char* q : queries) {
    ASSERT_TRUE(engine->Run(engine::Backend::kPpf, q).ok());
  }
  EXPECT_EQ(engine->plan_cache_size(), 3u);
}

TEST_F(PlanCacheTest, EvictionKeepsInFlightExecutionsValid) {
  // Capacity 1 with four threads on four distinct queries: every insert
  // evicts someone else's entry, usually while that plan is mid-execution
  // on another thread. Entries are shared_ptr-held, so results must stay
  // correct throughout (run under ASan/TSan presets for full effect).
  auto engine = MakeEngine(1);
  const char* queries[] = {"/site/regions", "/site/people/person",
                           "//keyword", "/site/regions/*/item"};
  std::vector<std::vector<xml::NodeId>> expected;
  for (const char* q : queries) {
    auto out = engine->Run(engine::Backend::kPpf, q);
    ASSERT_TRUE(out.ok());
    expected.push_back(out.value().nodes);
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        auto out = engine->Run(engine::Backend::kPpf, queries[t]);
        if (!out.ok() || out.value().nodes != expected[t]) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(failures[t], 0) << "query " << queries[t];
  }
  EXPECT_LE(engine->plan_cache_size(), 1u);
}

}  // namespace
}  // namespace xprel
