// Tests for the concurrent query service (src/service): thread-pool
// admission control, deadline/cancellation plumbing into the executor,
// result-cache keying and invalidation, metrics, and — the re-entrancy
// contract underneath all of it — many threads executing one shared cached
// plan with node-set identity against serial execution.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/xmark.h"
#include "engine/engine.h"
#include "rel/parallel.h"
#include "service/metrics.h"
#include "service/query_service.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"
#include "tests/queries.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using engine::Backend;
using engine::XPathEngine;
using service::CancelToken;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryService;
using service::ResultCache;
using service::ServiceOptions;
using service::ThreadPool;
using testutil::NamedQuery;

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

Corpus& XMarkCorpus() {
  static Corpus* corpus = [] {
    auto* c = new Corpus();
    data::XMarkOptions opt;
    opt.scale = 0.01;  // ~220 items: fast but structurally complete
    c->doc = data::GenerateXMark(opt);
    c->schema = xsd::ParseXsd(data::XMarkXsd()).value();
    c->graph = std::make_unique<xsd::SchemaGraph>(
        xsd::SchemaGraph::Build(c->schema).value());
    c->engine = XPathEngine::Build(c->doc, *c->graph).value();
    return c;
  }();
  return *corpus;
}

// A lambda that blocks until the test releases it; used to occupy workers
// and fill queues deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  std::function<void()> Task() {
    return [this]() {
      std::unique_lock<std::mutex> lock(mu);
      ++entered;
      cv.notify_all();
      cv.wait(lock, [this]() { return open; });
    };
  }
  void AwaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return entered >= n; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4, 0);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&]() { ran.fetch_add(1); }));
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, BoundedQueueRejectsWhenFull) {
  Gate gate;
  ThreadPool pool(1, 1);
  ASSERT_TRUE(pool.TrySubmit(gate.Task()));  // occupies the only worker
  gate.AwaitEntered(1);                      // worker is inside the task
  ASSERT_TRUE(pool.TrySubmit(gate.Task()));  // sits in the queue (cap 1)
  EXPECT_FALSE(pool.TrySubmit([]() {}));     // queue full: rejected
  EXPECT_EQ(pool.queue_depth(), 1u);
  gate.Open();
}

TEST(ThreadPoolTest, DrainsQueuedTasksOnDestruction) {
  std::atomic<int> ran{0};
  Gate gate;
  {
    ThreadPool pool(1, 0);
    ASSERT_TRUE(pool.TrySubmit(gate.Task()));
    gate.AwaitEntered(1);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&]() { ran.fetch_add(1); }));
    }
    gate.Open();
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, HelperLaneBypassesFullAdmissionQueue) {
  // The helper lane is unbounded and separate from admission control:
  // TrySubmitOrRun admits (and eventually runs, exactly once) even when the
  // main lane is saturated and rejecting whole queries.
  std::atomic<int> ran{0};
  Gate gate;  // outlives the pool: queued gate tasks run during drain
  {
    ThreadPool pool(1, 1);
    ASSERT_TRUE(pool.TrySubmit(gate.Task()));  // occupies the only worker
    gate.AwaitEntered(1);
    ASSERT_TRUE(pool.TrySubmit(gate.Task()));  // fills the main lane
    ASSERT_FALSE(pool.TrySubmit([]() {}));     // admission rejects
    for (int i = 0; i < 8; ++i) {
      pool.TrySubmitOrRun([&]() { ran.fetch_add(1); });
    }
    gate.Open();
  }  // destructor drains both lanes
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, NestedMorselSubmissionIntoSaturatedPoolCompletes) {
  // The regression the caller-runs contract exists for: every worker of an
  // already-full pool simultaneously fans nested morsels back into the same
  // pool. No helper may ever be free, so completion must never depend on
  // the pool accepting anything — RunMorsels' submitting thread drains the
  // dispenser itself. A deadlock here hangs the test.
  constexpr int kOuter = 4;
  constexpr size_t kMorselsPerOuter = 64;
  std::atomic<size_t> bodies{0};
  std::atomic<int> outer_done{0};
  {
    ThreadPool pool(2, 0);
    for (int t = 0; t < kOuter; ++t) {
      ASSERT_TRUE(pool.TrySubmit([&]() {
        rel::ParallelRunStats st = rel::RunMorsels(
            kMorselsPerOuter, 4, &pool.intra_runner(),
            [&](size_t) { bodies.fetch_add(1); });
        if (st.morsels == kMorselsPerOuter) outer_done.fetch_add(1);
      }));
    }
  }  // destructor drains: joins only after every nested morsel ran
  EXPECT_EQ(bodies.load(), kOuter * kMorselsPerOuter);
  EXPECT_EQ(outer_done.load(), kOuter);
}

// ---------------------------------------------------------------------------
// Executor-level cancellation and deadlines
// ---------------------------------------------------------------------------

TEST(ExecControlTest, PreCancelledQueryReturnsCancelled) {
  Corpus& c = XMarkCorpus();
  std::atomic<bool> cancel{true};
  rel::ExecControl control;
  control.cancel = &cancel;
  auto out = c.engine->Run(Backend::kPpf, "//keyword", &control);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

TEST(ExecControlTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  Corpus& c = XMarkCorpus();
  rel::ExecControl control;
  control.has_deadline = true;
  control.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto out = c.engine->Run(Backend::kPpf, "//keyword", &control);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecControlTest, MidScanCancellationFlagStopsEnumeration) {
  Corpus& c = XMarkCorpus();
  // check_interval = 1 samples the flag on every row; flipping the flag
  // from a second thread interrupts a scan that is already in progress.
  // The query may legitimately finish before the flag lands, so assert
  // only that an error, when produced, is Cancelled and leaves the engine
  // reusable.
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::atomic<bool> cancel{false};
    rel::ExecControl control;
    control.cancel = &cancel;
    control.check_interval = 1;
    std::thread canceller([&]() { cancel.store(true); });
    auto out = c.engine->Run(Backend::kPpf,
                             "//keyword/ancestor::listitem", &control);
    canceller.join();
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
    }
  }
  // The engine still answers afterwards (nothing leaked or poisoned).
  auto again = c.engine->Run(Backend::kPpf, "//keyword/ancestor::listitem");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST(ExecControlTest, StaircaseBackendHonoursCancellation) {
  Corpus& c = XMarkCorpus();
  std::atomic<bool> cancel{true};
  rel::ExecControl control;
  control.cancel = &cancel;
  auto out = c.engine->Run(Backend::kStaircase, "//keyword", &control);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Shared-plan re-entrancy: the satellite audit's regression test
// ---------------------------------------------------------------------------

TEST(SharedPlanTest, ConcurrentExecutionOfOneCachedPlanMatchesSerial) {
  Corpus& c = XMarkCorpus();
  // Queries chosen to cover every per-execution structure that used to be
  // tempting to hang off the plan: hash-join tables (QA), semi-join build
  // sets and EXISTS memos (Q23/Q24), merge joins (Q6), bitmap pre-filters
  // and index probes (the rest).
  const char* queries[] = {
      "/site/regions/*/item",
      "//keyword/ancestor::listitem",
      "/site/people/person[address and (phone or homepage)]",
      "/site/people/person[not(homepage)]",
      "/site/open_auctions/open_auction[bidder/date = interval/start]",
  };
  for (const char* q : queries) {
    auto serial = c.engine->Run(Backend::kPpf, q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();
    // Warmed: the plan is now cached and shared. Hammer it from 8 threads.
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&]() {
        for (int i = 0; i < 20; ++i) {
          auto out = c.engine->Run(Backend::kPpf, q);
          if (!out.ok() || out.value().nodes != serial.value().nodes) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0) << q;
  }
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, ConcurrentMixedQueriesMatchSerial) {
  Corpus& c = XMarkCorpus();
  // Serial ground truth for the full XPathMark mix.
  std::map<std::string, std::vector<xml::NodeId>> expected;
  for (const NamedQuery& q : testutil::kXMarkQueries) {
    auto out = c.engine->Run(Backend::kPpf, q.xpath);
    ASSERT_TRUE(out.ok()) << q.id << ": " << out.status().ToString();
    expected[q.xpath] = out.value().nodes;
  }

  ServiceOptions opts;
  opts.workers = 8;
  opts.queue_capacity = 0;  // unbounded: this test is about identity
  QueryService svc(*c.engine, opts);

  // 6 client threads, each submitting the whole mix repeatedly; half
  // bypass the cache so the same shared plan really executes concurrently.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t]() {
      for (int rep = 0; rep < 4; ++rep) {
        for (const NamedQuery& q : testutil::kXMarkQueries) {
          QueryRequest req;
          req.xpath = q.xpath;
          req.bypass_cache = (t % 2 == 0);
          auto r = svc.Run(std::move(req));
          if (!r.ok() || r.value().nodes != expected[q.xpath]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto& m = svc.metrics();
  EXPECT_EQ(m.rejected.load(), 0u);
  EXPECT_GT(m.cache_hits.load(), 0u);  // the non-bypass clients hit
  EXPECT_EQ(m.completed.load(), m.submitted.load());
}

TEST(QueryServiceTest, AdmissionControlRejectsWhenSaturated) {
  Corpus& c = XMarkCorpus();
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  opts.result_cache_capacity = 0;  // a cache hit would dodge admission
  QueryService svc(*c.engine, opts);

  Gate gate;
  // Occupy the only worker, then fill the queue, through the same pool the
  // service admits into.
  ASSERT_TRUE(svc.pool().TrySubmit(gate.Task()));
  gate.AwaitEntered(1);
  ASSERT_TRUE(svc.pool().TrySubmit(gate.Task()));

  QueryRequest req;
  req.xpath = "//keyword";
  auto r = svc.Run(std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.metrics().rejected.load(), 1u);

  gate.Open();
  gate.AwaitEntered(2);  // the queued gated task has been picked up too
  while (svc.pool().queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // No pool slot leaked: the service accepts and answers again.
  QueryRequest again;
  again.xpath = "//keyword";
  auto r2 = svc.Run(std::move(again));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST(QueryServiceTest, DeadlineSpentInQueueTimesOut) {
  Corpus& c = XMarkCorpus();
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.result_cache_capacity = 0;
  QueryService svc(*c.engine, opts);

  Gate gate;
  ASSERT_TRUE(svc.pool().TrySubmit(gate.Task()));
  gate.AwaitEntered(1);

  QueryRequest req;
  req.xpath = "//keyword";
  req.deadline = std::chrono::milliseconds(5);
  auto fut = svc.Submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.Open();  // worker picks the query up with its deadline long gone
  auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(svc.metrics().timed_out.load(), 1u);
}

TEST(QueryServiceTest, CancelTokenCancelsQueuedQuery) {
  Corpus& c = XMarkCorpus();
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.result_cache_capacity = 0;
  QueryService svc(*c.engine, opts);

  Gate gate;
  ASSERT_TRUE(svc.pool().TrySubmit(gate.Task()));
  gate.AwaitEntered(1);

  auto token = std::make_shared<CancelToken>();
  QueryRequest req;
  req.xpath = "//keyword";
  req.cancel = token;
  auto fut = svc.Submit(std::move(req));
  token->Cancel();
  gate.Open();
  auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(svc.metrics().cancelled.load(), 1u);

  // The slot is free again afterwards.
  QueryRequest again;
  again.xpath = "//keyword";
  auto r2 = svc.Run(std::move(again));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
}

TEST(QueryServiceTest, ResultCacheHitsAndGenerationInvalidation) {
  Corpus& c = XMarkCorpus();
  QueryService svc(*c.engine, {});

  QueryRequest req;
  req.xpath = "  //keyword ";  // normalization: same key as "//keyword"
  auto first = svc.Run(std::move(req));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);

  QueryRequest second;
  second.xpath = "//keyword";
  auto hit = svc.Run(std::move(second));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().nodes, first.value().nodes);

  // Service-side invalidation: next lookup misses.
  svc.InvalidateResults();
  QueryRequest third;
  third.xpath = "//keyword";
  auto miss = svc.Run(std::move(third));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().cache_hit);

  // Engine-side document generation bump invalidates too.
  c.engine->BumpGeneration();
  QueryRequest fourth;
  fourth.xpath = "//keyword";
  auto miss2 = svc.Run(std::move(fourth));
  ASSERT_TRUE(miss2.ok());
  EXPECT_FALSE(miss2.value().cache_hit);
  EXPECT_EQ(svc.metrics().cache_hits.load(), 1u);
}

TEST(QueryServiceTest, MetricsDumpMentionsEveryCounter) {
  Corpus& c = XMarkCorpus();
  QueryService svc(*c.engine, {});
  QueryRequest req;
  req.xpath = "//keyword";
  ASSERT_TRUE(svc.Run(std::move(req)).ok());
  std::string dump = svc.DumpMetrics();
  for (const char* needle :
       {"submitted=", "completed=", "rejected=", "cancelled=", "timed_out=",
        "resource_exhausted=", "hit_rate=", "memory: used=", "peak=",
        "queue wait:", "latency:", "workers="}) {
    EXPECT_NE(dump.find(needle), std::string::npos) << needle << "\n" << dump;
  }
}

// ---------------------------------------------------------------------------
// Memory governance
// ---------------------------------------------------------------------------

// The heavy query drives the kPpf merge-join + hash-join plan (see
// join_engine_test) over a corpus scaled so its transient state crosses
// 1 MiB; light queries run beside it without any cap.
constexpr char kHeavyQuery[] = "//keyword/ancestor::listitem";

struct BigCorpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

BigCorpus& BudgetCorpus() {
  static BigCorpus* corpus = [] {
    auto* c = new BigCorpus();
    data::XMarkOptions opt;
    opt.scale = 0.15;
    c->doc = data::GenerateXMark(opt);
    c->schema = xsd::ParseXsd(data::XMarkXsd()).value();
    c->graph = std::make_unique<xsd::SchemaGraph>(
        xsd::SchemaGraph::Build(c->schema).value());
    c->engine = XPathEngine::Build(c->doc, *c->graph).value();
    return c;
  }();
  return *corpus;
}

TEST(QueryServiceTest, PerQueryBudgetFailsHeavyQueryWhileOthersComplete) {
  BigCorpus& c = BudgetCorpus();

  // Reference run with accounting only: establishes the correct node set
  // and proves the query genuinely needs more than the cap we'll impose.
  MemoryBudget meter(0);
  rel::ExecControl control;
  control.budget = &meter;
  auto ref = c.engine->Run(Backend::kPpf, kHeavyQuery, &control);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_GT(ref.value().stats.bytes_reserved_peak, size_t{1} << 20)
      << "corpus too small for the 1 MiB budget test";
  auto light_ref = c.engine->Run(Backend::kPpf, "//keyword");
  ASSERT_TRUE(light_ref.ok());

  ServiceOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 0;
  QueryService svc(*c.engine, opts);

  // The capped heavy query must fail with ResourceExhausted...
  QueryRequest heavy;
  heavy.xpath = kHeavyQuery;
  heavy.memory_cap = size_t{1} << 20;
  heavy.bypass_cache = true;
  auto heavy_fut = svc.Submit(std::move(heavy));

  // ...while concurrent unbudgeted queries complete correctly.
  std::vector<std::future<Result<QueryResponse>>> light;
  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.xpath = "//keyword";
    req.bypass_cache = true;
    light.push_back(svc.Submit(std::move(req)));
  }

  auto hr = heavy_fut.get();
  ASSERT_FALSE(hr.ok());
  EXPECT_EQ(hr.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(svc.metrics().resource_exhausted.load(), 1u);
  for (auto& f : light) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().nodes, light_ref.value().nodes);
  }

  // Uncapped, the same heavy query succeeds on the same service with the
  // reference node set — the earlier refusal released every reservation.
  QueryRequest retry;
  retry.xpath = kHeavyQuery;
  retry.bypass_cache = true;
  auto rr = svc.Run(std::move(retry));
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  EXPECT_EQ(rr.value().nodes, ref.value().nodes);
  EXPECT_GT(svc.memory_budget().peak(), size_t{1} << 20);
}

TEST(QueryServiceTest, ServiceWideBudgetCapsTheSum) {
  Corpus& c = XMarkCorpus();
  ServiceOptions opts;
  opts.workers = 2;
  // Absurdly small service-wide cap: every real reservation is refused, so
  // queries heavy enough to charge (≥ one 64 KiB chunk) fail while trivial
  // ones (whose transient state never reaches a chunk) still complete.
  opts.total_memory_cap = 4 * 1024;
  opts.result_cache_capacity = 0;
  QueryService svc(*c.engine, opts);

  QueryRequest tiny;
  tiny.xpath = "/site/regions";
  auto r = svc.Run(std::move(tiny));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(QueryServiceTest, CancelledQueryDoesNotPoisonResultCache) {
  Corpus& c = XMarkCorpus();
  QueryService svc(*c.engine, {});

  auto token = std::make_shared<CancelToken>();
  token->Cancel();  // pre-cancelled: fails inside the executor, mid-query
  QueryRequest req;
  req.xpath = "//keyword/ancestor::listitem";
  req.cancel = token;
  auto r1 = svc.Run(std::move(req));
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kCancelled);

  // The failed run must not have cached anything: the next request misses,
  // executes, and returns the correct nodes.
  auto expected = c.engine->Run(Backend::kPpf, "//keyword/ancestor::listitem");
  ASSERT_TRUE(expected.ok());
  QueryRequest req2;
  req2.xpath = "//keyword/ancestor::listitem";
  auto r2 = svc.Run(std::move(req2));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2.value().cache_hit);
  EXPECT_EQ(r2.value().nodes, expected.value().nodes);

  QueryRequest req3;
  req3.xpath = "//keyword/ancestor::listitem";
  auto r3 = svc.Run(std::move(req3));
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().cache_hit);
  EXPECT_EQ(r3.value().nodes, expected.value().nodes);
}

// ---------------------------------------------------------------------------
// Morsel-driven intra-query parallelism
// ---------------------------------------------------------------------------

// The PPF backend shreds into one table per element tag and reaches most
// of them through path-id index points (which never shard — a B-tree walk
// can't seek by row id). Sharding engages where a big table is reached by
// a scan, hash probe, or merge sweep, which needs per-tag tables past the
// 2*kMorselMinRows floor: scale 0.4.
BigCorpus& ParallelCorpus() {
  static BigCorpus* corpus = [] {
    auto* c = new BigCorpus();
    data::XMarkOptions opt;
    opt.scale = 0.4;
    c->doc = data::GenerateXMark(opt);
    c->schema = xsd::ParseXsd(data::XMarkXsd()).value();
    c->graph = std::make_unique<xsd::SchemaGraph>(
        xsd::SchemaGraph::Build(c->schema).value());
    c->engine = XPathEngine::Build(c->doc, *c->graph).value();
    return c;
  }();
  return *corpus;
}

// Queries whose plans shard at scale 0.4, covering every shardable access
// path: the Table-2 staircase merge join (Q6), plain sequential scans over
// the biggest per-tag tables (Q13), and semi-join/EXISTS plans above a
// sharded outer scan (Q23/Q24).
const char* const kParallelQueries[] = {
    "//keyword/ancestor::listitem",
    "//*[@id]",
    "/site/people/person[address and (phone or homepage)]",
    "/site/people/person[not(homepage)]",
};

TEST(MorselParallelismTest, ParallelExecutionMatchesSerialAndShardsWork) {
  BigCorpus& c = ParallelCorpus();
  ThreadPool pool(4);
  for (const char* q : kParallelQueries) {
    auto serial = c.engine->Run(Backend::kPpf, q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();
    EXPECT_EQ(serial.value().stats.morsels_scheduled, 0u) << q;

    rel::ExecControl control;
    control.runner = &pool.intra_runner();
    control.parallelism = 4;
    auto par = c.engine->Run(Backend::kPpf, q, &control);
    ASSERT_TRUE(par.ok()) << q << ": " << par.status().ToString();
    // The determinism contract: node sets bit-identical to serial.
    EXPECT_EQ(par.value().nodes, serial.value().nodes) << q;
    // Every one of these plans has a step past the split floor, so the
    // execution genuinely sharded and reported its fan-out.
    EXPECT_GE(par.value().stats.morsels_scheduled, 2u) << q;
    EXPECT_GE(par.value().stats.parallel_threads, 1u) << q;
  }
}

TEST(MorselParallelismTest, ExplainPlanShowsParallelOperators) {
  BigCorpus& c = ParallelCorpus();
  auto plan = c.engine->ExplainPlan(Backend::kPpf, "//*[@id]");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("-- parallel:"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("Dewey-range morsels"), std::string::npos)
      << plan.value();
}

// Eight pool threads each running the same shared cached plan, each
// fanning its own morsels into the same pool's helper lane — the
// intra-query extension of SharedPlanTest, and the main tsan target for
// this layer.
TEST(SharedPlanTest, ConcurrentParallelExecutionOfOneCachedPlanMatchesSerial) {
  BigCorpus& c = ParallelCorpus();
  ServiceOptions opts;
  opts.workers = 8;
  opts.queue_capacity = 0;
  opts.parallelism = 8;
  QueryService svc(*c.engine, opts);

  for (const char* q : kParallelQueries) {
    auto serial = c.engine->Run(Backend::kPpf, q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();
    // Warm the plan cache, then hammer the one shared plan from 8 clients
    // whose executions each shard into concurrent morsels.
    std::vector<std::future<Result<QueryResponse>>> futs;
    for (int t = 0; t < 8; ++t) {
      for (int rep = 0; rep < 3; ++rep) {
        QueryRequest req;
        req.xpath = q;
        req.bypass_cache = true;
        futs.push_back(svc.Submit(std::move(req)));
      }
    }
    for (auto& f : futs) {
      auto r = f.get();
      ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      EXPECT_EQ(r.value().nodes, serial.value().nodes) << q;
    }
  }
  EXPECT_GT(svc.metrics().morsels_scheduled.load(), 0u);
  EXPECT_GE(svc.metrics().max_query_threads.load(), 1u);
}

// ---------------------------------------------------------------------------
// ResultCache + LatencyHistogram units
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, LruEvictsBeyondCapacity) {
  ResultCache cache(2);
  auto entry = [](int n) {
    auto e = std::make_shared<ResultCache::Entry>();
    e->nodes.assign(static_cast<size_t>(n), xml::NodeId{});
    return e;
  };
  cache.Put("a", entry(1));
  cache.Put("b", entry(2));
  ASSERT_NE(cache.Get("a"), nullptr);  // refreshes a
  cache.Put("c", entry(3));            // evicts b (LRU tail)
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  auto e = std::make_shared<ResultCache::Entry>();
  cache.Put("a", e);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, BudgetEvictsUnderPressureAndReleasesOnClear) {
  auto entry = [](int n) {
    auto e = std::make_shared<ResultCache::Entry>();
    e->nodes.assign(static_cast<size_t>(n), xml::NodeId{});
    return e;
  };
  // Learn one entry's charge with an account-only budget, then build a
  // cache whose budget holds two entries but not three.
  size_t charge;
  {
    MemoryBudget meter(0);
    ResultCache probe(8, &meter);
    probe.Put("a", entry(10));
    charge = meter.used();
    ASSERT_GT(charge, 0u);
  }
  MemoryBudget budget(2 * charge + charge / 2);
  ResultCache cache(8, &budget);
  cache.Put("a", entry(10));
  cache.Put("b", entry(10));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh: b is now the LRU tail
  cache.Put("c", entry(10));           // budget forces b out, not capacity
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_LE(budget.used(), budget.cap());

  // An entry that can never fit is dropped without wiping the cache.
  cache.Put("huge", entry(100000));
  EXPECT_EQ(cache.Get("huge"), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  cache.Clear();
  EXPECT_EQ(budget.used(), 0u);
}

TEST(LatencyHistogramTest, PercentilesBracketSamples) {
  service::LatencyHistogram h;
  EXPECT_EQ(h.PercentileUs(0.5), 0u);  // empty
  for (uint64_t i = 0; i < 100; ++i) h.RecordUs(100);   // bucket [64,128)
  for (uint64_t i = 0; i < 5; ++i) h.RecordUs(10000);   // bucket [8192,16384)
  EXPECT_EQ(h.count(), 105u);
  EXPECT_EQ(h.PercentileUs(0.50), 128u);
  EXPECT_EQ(h.PercentileUs(0.99), 16384u);
  EXPECT_GT(h.MeanUs(), 100.0);
  EXPECT_LT(h.MeanUs(), 10000.0);
}

}  // namespace
}  // namespace xprel
