// Unit and regression tests for the DML layer (src/dml): subtree
// insert/delete/text update with incremental maintenance of the shredded
// stores, Dewey gap allocation with local-renumber fallback, Paths
// refcounting, path-id-scoped cache invalidation, rollback on injected
// faults, and writer-excludes-readers concurrency.

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/xmark.h"
#include "dml/mutator.h"
#include "engine/engine.h"
#include "service/query_service.h"
#include "shred/schema_map.h"
#include "tests/testutil.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xsd/xsd_parser.h"

namespace xprel {
namespace {

using dml::DocumentMutator;
using engine::Backend;
using engine::XPathEngine;

constexpr Backend kSqlBackends[] = {Backend::kPpf, Backend::kEdgePpf,
                                    Backend::kAccelerator, Backend::kNaive};

constexpr char kItemFragment[] =
    "<item id=\"itemZ%ID%\"><location>Germany</location>"
    "<quantity>1</quantity><name>dml widget</name>"
    "<payment>Creditcard</payment><description><text>fresh "
    "paint</text></description>"
    "<shipping>Will ship internationally</shipping></item>";

std::string ItemFragment(int id) {
  std::string s = kItemFragment;
  const std::string marker = "%ID%";
  s.replace(s.find(marker), marker.size(), std::to_string(id));
  return s;
}

struct Corpus {
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<XPathEngine> engine;
};

std::unique_ptr<Corpus> MakeCorpus(xml::Document doc, const char* xsd) {
  auto c = std::make_unique<Corpus>();
  c->doc = std::move(doc);
  auto schema = xsd::ParseXsd(xsd);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  if (!schema.ok()) return nullptr;
  c->schema = std::move(schema).value();
  auto graph = xsd::SchemaGraph::Build(c->schema);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  if (!graph.ok()) return nullptr;
  c->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());
  auto eng = XPathEngine::Build(c->doc, *c->graph);
  EXPECT_TRUE(eng.ok()) << eng.status().ToString();
  if (!eng.ok()) return nullptr;
  c->engine = std::move(eng).value();
  return c;
}

std::unique_ptr<Corpus> XMarkCorpus(double scale = 0.003) {
  data::XMarkOptions opt;
  opt.scale = scale;
  return MakeCorpus(data::GenerateXMark(opt), data::XMarkXsd());
}

// Results as a sorted multiset of serialized subtrees: stable across engines
// whose node ids differ (mutated vs. reshredded documents).
std::vector<std::string> ResultShapes(const xml::Document& doc,
                                      const std::vector<xml::NodeId>& nodes) {
  struct Ser {
    const xml::Document& d;
    void Node(xml::NodeId n, std::string& s) const {
      const xml::Node& node = d.node(n);
      if (node.kind == xml::NodeKind::kText) {
        s += xml::EscapeXml(node.text);
        return;
      }
      s += '<';
      s += node.name;
      for (const xml::Attribute& a : node.attributes) {
        s += ' ';
        s += a.name;
        s += "=\"";
        s += xml::EscapeXml(a.value);
        s += '"';
      }
      s += '>';
      for (xml::NodeId c : node.children) Node(c, s);
      s += "</";
      s += node.name;
      s += '>';
    }
  };
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (xml::NodeId id : nodes) {
    std::string frag;
    Ser{doc}.Node(id, frag);
    out.push_back(std::move(frag));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> RunShapes(Corpus& c, Backend b,
                                   const std::string& xpath) {
  auto out = c.engine->Run(b, xpath);
  EXPECT_TRUE(out.ok()) << xpath << ": " << out.status().ToString();
  if (!out.ok()) return {};
  return ResultShapes(c.doc, out.value().nodes);
}

// Reshreds the mutated document from scratch (serialize -> reparse ->
// rebuild) — the ground truth every incremental path must match.
std::unique_ptr<Corpus> Reshred(const Corpus& c, const char* xsd) {
  auto parsed = xml::ParseXml(xml::SerializeXml(c.doc));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return nullptr;
  return MakeCorpus(std::move(parsed).value(), xsd);
}

void ExpectAllBackendsMatchReshred(Corpus& c, const char* xsd,
                                   const std::vector<std::string>& queries) {
  auto fresh = Reshred(c, xsd);
  ASSERT_NE(fresh, nullptr);
  for (const std::string& q : queries) {
    auto expected = RunShapes(*fresh, Backend::kPpf, q);
    for (Backend b : kSqlBackends) {
      EXPECT_EQ(RunShapes(c, b, q), expected)
          << q << " on " << BackendName(b) << " diverges from reshred";
    }
    EXPECT_EQ(RunShapes(c, Backend::kStaircase, q), expected)
        << q << " on staircase diverges from reshred";
  }
}

size_t CountNodes(Corpus& c, Backend b, const std::string& xpath) {
  auto out = c.engine->Run(b, xpath);
  EXPECT_TRUE(out.ok()) << xpath << ": " << out.status().ToString();
  return out.ok() ? out.value().nodes.size() : 0;
}

TEST(DmlInsert, MaintainsEveryBackend) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  const size_t items_before = CountNodes(*c, Backend::kPpf, "//item");

  DocumentMutator mut(c->doc, *c->engine);
  auto r = mut.InsertFragmentAt("/site/regions/africa", 0, ItemFragment(1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().node, xml::kNoNode);

  for (Backend b : kSqlBackends) {
    EXPECT_EQ(CountNodes(*c, b, "//item"), items_before + 1)
        << BackendName(b);
  }
  EXPECT_EQ(CountNodes(*c, Backend::kStaircase, "//item"), items_before + 1);
  ExpectAllBackendsMatchReshred(
      *c, data::XMarkXsd(),
      {"//item", "/site/regions/africa/item", "//item/name", "//keyword"});
}

TEST(DmlInsert, SchemaViolationIsRejectedAndHarmless) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  const size_t items_before = CountNodes(*c, Backend::kPpf, "//item");

  DocumentMutator mut(c->doc, *c->engine);
  // <person> is not allowed under a region by the schema.
  auto r = mut.InsertFragmentAt("/site/regions/africa", 0,
                                "<person id=\"p\"><name>x</name></person>");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(mut.stats().rollbacks, 1u);
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "//item"), items_before);
  EXPECT_EQ(CountNodes(*c, Backend::kEdgePpf, "//person/name"),
            CountNodes(*c, Backend::kPpf, "//person/name"));
}

TEST(DmlInsert, GapCaretAvoidsRenumberUntilExhausted) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  DocumentMutator mut(c->doc, *c->engine);

  // First insert at the front carets into the gap below the first sibling
  // (stride 8 leaves room), so no renumber happens.
  auto r = mut.InsertFragmentAt("/site/regions/africa", 0, ItemFragment(10));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().renumbered);
  EXPECT_EQ(mut.stats().dewey_renumbers, 0u);

  // Hammering the same position exhausts the halving gap (8 -> 4 -> 2 -> 1)
  // and must fall back to a local renumber, tracked in stats.
  for (int i = 11; i < 18; ++i) {
    auto rr = mut.InsertFragmentAt("/site/regions/africa", 0,
                                   ItemFragment(i));
    ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  }
  EXPECT_GE(mut.stats().dewey_renumbers, 1u);
  EXPECT_EQ(mut.stats().mutations_applied, 8u);

  ExpectAllBackendsMatchReshred(*c, data::XMarkXsd(),
                                {"/site/regions/africa/item",
                                 "/site/regions/africa/item/name", "//item"});
}

TEST(DmlDelete, RemovesSubtreeEverywhere) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  const size_t items_before = CountNodes(*c, Backend::kPpf, "//item");
  ASSERT_GT(items_before, 1u);

  DocumentMutator mut(c->doc, *c->engine);
  auto r = mut.DeleteSubtreeAt("/site/regions/africa/item");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  for (Backend b : kSqlBackends) {
    EXPECT_EQ(CountNodes(*c, b, "//item"), items_before - 1)
        << BackendName(b);
  }
  ExpectAllBackendsMatchReshred(*c, data::XMarkXsd(),
                                {"//item", "/site/regions/africa/item",
                                 "//item/location"});
}

TEST(DmlDelete, ManyDeletesTriggerCompactionAndStayCorrect) {
  auto c = XMarkCorpus(0.01);
  ASSERT_NE(c, nullptr);
  DocumentMutator mut(c->doc, *c->engine);

  // Delete items until well past the 25% tombstone threshold.
  const size_t items_before = CountNodes(*c, Backend::kPpf, "//item");
  const size_t to_delete = items_before / 2;
  for (size_t i = 0; i < to_delete; ++i) {
    auto r = mut.DeleteSubtreeAt("//item");
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().ToString();
  }
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "//item"),
            items_before - to_delete);
  ExpectAllBackendsMatchReshred(*c, data::XMarkXsd(),
                                {"//item", "//item/name", "//keyword"});
}

TEST(DmlPaths, NewPathInternsAndRetiresWithRefcount) {
  // Figure 1 document without any E/F subtree: inserting one creates two
  // new paths; deleting it again retires them.
  auto parsed = xml::ParseXml(
      "<A x=\"1\"><B><C><D>d</D></C><G>g</G></B></A>");
  ASSERT_TRUE(parsed.ok());
  auto c = MakeCorpus(std::move(parsed).value(), testutil::kFigure1Xsd);
  ASSERT_NE(c, nullptr);

  const size_t paths_before = c->engine->ppf_store()->live_paths();
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "/A/B/C/E/F"), 0u);

  DocumentMutator mut(c->doc, *c->engine);
  auto ins = mut.InsertFragmentAt("/A/B/C", 1, "<E><F>f</F></E>");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_TRUE(ins.value().affected.paths_changed);
  EXPECT_EQ(c->engine->ppf_store()->live_paths(), paths_before + 2);
  EXPECT_EQ(mut.stats().paths_added, 2u);
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "/A/B/C/E/F"), 1u);
  EXPECT_EQ(CountNodes(*c, Backend::kEdgePpf, "/A/B/C/E/F"), 1u);

  auto del = mut.DeleteSubtree(ins.value().node);
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_TRUE(del.value().affected.paths_changed);
  EXPECT_EQ(c->engine->ppf_store()->live_paths(), paths_before);
  EXPECT_EQ(mut.stats().paths_retired, 2u);
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "/A/B/C/E/F"), 0u);
}

TEST(DmlUpdateText, RewritesValueOnAllBackends) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  DocumentMutator mut(c->doc, *c->engine);

  auto r = mut.UpdateTextAt("/site/regions/africa/item/name", "renamed gadget");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().affected.paths_changed);
  EXPECT_FALSE(r.value().affected.ppf.empty());

  for (Backend b : kSqlBackends) {
    EXPECT_EQ(CountNodes(*c, b, "//item[name = 'renamed gadget']"), 1u)
        << BackendName(b);
  }
  ExpectAllBackendsMatchReshred(*c, data::XMarkXsd(),
                                {"//item/name", "//name"});
}

// Satellite: the plan-cache enforcement gap. A plan cached before a
// mutation must not serve stale RowId bitmaps afterwards — the version
// snapshot makes the hit revalidate and rebuild.
TEST(DmlPlanCache, CachedPlanRevalidatesAfterMutation) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);

  const std::string q = "/site/regions/africa/item/name";
  for (Backend b : {Backend::kPpf, Backend::kEdgePpf}) {
    auto before = c->engine->Run(b, q);
    ASSERT_TRUE(before.ok());
    const size_t n_before = before.value().nodes.size();

    DocumentMutator mut(c->doc, *c->engine);
    auto ins = mut.InsertFragmentAt("/site/regions/africa", 0,
                                    ItemFragment(100 + static_cast<int>(b)));
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();

    // Same engine, same query string: a stale cached plan would replay
    // pre-mutation bitmaps and miss the new item.
    auto after = c->engine->Run(b, q);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after.value().nodes.size(), n_before + 1) << BackendName(b);
  }
}

TEST(DmlInvalidation, PlanCacheDropsOnlyIntersectingEntries) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);

  // Two PPF queries over disjoint paths.
  const std::string q_items = "/site/regions/africa/item/quantity";
  const std::string q_people = "/site/people/person/name";
  ASSERT_TRUE(c->engine->Run(Backend::kPpf, q_items).ok());
  ASSERT_TRUE(c->engine->Run(Backend::kPpf, q_people).ok());
  const size_t cached = c->engine->plan_cache_size();
  ASSERT_GE(cached, 2u);

  DocumentMutator mut(c->doc, *c->engine);
  auto r = mut.UpdateTextAt(q_items, "7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().affected.paths_changed);

  const auto& mc = c->engine->mutation_counters();
  EXPECT_GE(mc.plan_entries_invalidated.load(), 1u);
  // The person/name entry must have survived path-scoped invalidation.
  EXPECT_LT(mc.plan_entries_invalidated.load(), cached);
}

TEST(DmlInvalidation, ResultCacheSurgicalVsPathsChanged) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  service::QueryService svc(*c->engine, {.workers = 2});

  const std::string q_items = "/site/regions/africa/item/quantity";
  const std::string q_people = "/site/people/person/name";
  auto prime = [&](const std::string& q) {
    auto resp = svc.Run({.backend = Backend::kPpf, .xpath = q});
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  };
  prime(q_items);
  prime(q_people);

  DocumentMutator mut(c->doc, *c->engine);
  auto r = mut.UpdateTextAt(q_items, "9");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  svc.InvalidateMutation(r.value().affected);

  // The untouched query keeps serving from cache; the touched one misses.
  auto people = svc.Run({.backend = Backend::kPpf, .xpath = q_people});
  ASSERT_TRUE(people.ok());
  EXPECT_TRUE(people.value().cache_hit);
  auto items = svc.Run({.backend = Backend::kPpf, .xpath = q_items});
  ASSERT_TRUE(items.ok());
  EXPECT_FALSE(items.value().cache_hit);
  EXPECT_GE(svc.metrics().cache_entries_invalidated.load(), 1u);

  // A mutation that changes the Paths summary falls back to dropping
  // everything (generation bump): even the untouched query misses once.
  prime(q_people);
  auto del = mut.DeleteSubtreeAt("/site/regions/africa/item/mailbox");
  if (del.ok() && del.value().affected.paths_changed) {
    svc.InvalidateMutation(del.value().affected);
    auto again = svc.Run({.backend = Backend::kPpf, .xpath = q_people});
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.value().cache_hit);
  }
}

TEST(DmlCounters, SurfaceInExplainAndDumpMetrics) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  service::QueryService svc(*c->engine, {.workers = 2});

  DocumentMutator mut(c->doc, *c->engine);
  ASSERT_TRUE(
      mut.InsertFragmentAt("/site/regions/asia", 0, ItemFragment(7)).ok());

  auto explain = c->engine->ExplainPlan(Backend::kPpf, "//item");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("mutations: applied=1"), std::string::npos)
      << explain.value();

  std::string dump = svc.DumpMetrics();
  EXPECT_NE(dump.find("mutations: applied=1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("entries_invalidated"), std::string::npos) << dump;
}

TEST(DmlBudget, RefusedReservationLeavesEngineUntouched) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  const size_t items_before = CountNodes(*c, Backend::kPpf, "//item");

  MemoryBudget tiny(64);  // far below any fragment's footprint
  DocumentMutator mut(c->doc, *c->engine, &tiny);
  auto r = mut.InsertFragmentAt("/site/regions/africa", 0, ItemFragment(3));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mut.stats().mutations_applied, 0u);
  EXPECT_EQ(CountNodes(*c, Backend::kPpf, "//item"), items_before);
  EXPECT_EQ(tiny.used(), 0u);
}

TEST(DmlFaults, EveryDmlPointRollsBackToConsistency) {
  if (!fault::FaultInjectionEnabled()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  const char* points[] = {"dml.apply",      "dml.ppf_insert",
                          "dml.edge_insert", "dml.ppf_delete",
                          "dml.edge_delete", "dml.ppf_text",
                          "dml.edge_text",   "dml.ppf_dewey",
                          "dml.edge_dewey"};
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  DocumentMutator mut(c->doc, *c->engine);
  int fragment_id = 500;

  for (const char* point : points) {
    fault::FaultInjector::Instance().Arm(point);
    // Drive a mutation mix so every armed point is actually crossed.
    auto ins = mut.InsertFragmentAt("/site/regions/europe", 0,
                                    ItemFragment(fragment_id++));
    auto upd = mut.UpdateTextAt("/site/regions/asia/item/name",
                                std::string("t-") + point);
    auto del = mut.DeleteSubtreeAt("/site/regions/samerica/item");
    bool any_failed = !ins.ok() || !upd.ok() || !del.ok();
    // The dewey points only fire when an insert exhausts its gap and
    // renumbers; keep careting into the same front gap (8 -> 4 -> 2 -> 1)
    // until a renumber crosses the armed point and fails the insert.
    for (int extra = 0; !any_failed && extra < 8; ++extra) {
      any_failed = !mut.InsertFragmentAt("/site/regions/europe", 0,
                                         ItemFragment(fragment_id++))
                        .ok();
    }
    fault::FaultInjector::Instance().Disarm(point);
    EXPECT_TRUE(any_failed) << point << " never fired";

    // Whatever failed must have left the engine equivalent to a from-scratch
    // shred of the current document.
    ExpectAllBackendsMatchReshred(
        *c, data::XMarkXsd(),
        {"//item", "//item/name", "/site/regions/europe/item"});
  }
  EXPECT_GE(mut.stats().rollbacks, 1u);
}

// Writer-excludes-readers under concurrency: queries racing mutations must
// observe either the pre- or post-mutation state, never a torn one. Run
// under tsan (preset) this also proves the lock discipline.
TEST(DmlConcurrency, ReadersRaceWriterSafely) {
  auto c = XMarkCorpus();
  ASSERT_NE(c, nullptr);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Bounded reader loops: std::shared_mutex implementations may prefer
  // readers, so an unbounded polling loop would starve the writer and turn
  // this into a multi-minute test.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      const Backend b = t == 0   ? Backend::kPpf
                        : t == 1 ? Backend::kEdgePpf
                                 : Backend::kStaircase;
      for (int i = 0; i < 60 && !stop.load(std::memory_order_acquire); ++i) {
        auto out = c->engine->Run(b, "//item/name");
        if (!out.ok()) failures.fetch_add(1);
        std::this_thread::yield();
      }
    });
  }

  DocumentMutator mut(c->doc, *c->engine);
  for (int i = 0; i < 10; ++i) {
    auto ins = mut.InsertFragmentAt("/site/regions/africa", 0,
                                    ItemFragment(900 + i));
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    if (i % 4 == 3) {
      auto del = mut.DeleteSubtreeAt("/site/regions/africa/item");
      ASSERT_TRUE(del.ok()) << del.status().ToString();
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  ExpectAllBackendsMatchReshred(*c, data::XMarkXsd(), {"//item/name"});
}

}  // namespace
}  // namespace xprel
