#ifndef XPREL_TESTS_QUERIES_H_
#define XPREL_TESTS_QUERIES_H_

namespace xprel::testutil {

// The paper's XPathMark query subset (Appendix B) plus Q-A (Section 5).
struct NamedQuery {
  const char* id;
  const char* xpath;
};

inline constexpr NamedQuery kXMarkQueries[] = {
    {"Q1", "/site/regions/*/item"},
    {"Q2",
     "/site/closed_auctions/closed_auction/annotation/description/parlist/"
     "listitem/text/keyword"},
    {"Q3", "//keyword"},
    {"Q4", "/descendant-or-self::listitem/descendant-or-self::keyword"},
    {"Q5", "/site/regions/*/item[parent::namerica or parent::samerica]"},
    {"Q6", "//keyword/ancestor::listitem"},
    {"Q7", "//keyword/ancestor-or-self::mail"},
    {"Q9",
     "/site/open_auctions/open_auction[@id='open_auction0']/bidder/"
     "preceding-sibling::bidder"},
    {"Q10", "/site/regions/*/item[@id='item0']/following::item"},
    {"Q11",
     "/site/open_auctions/open_auction/bidder[personref/@person='person1']"
     "/preceding::bidder[personref/@person='person0']"},
    {"Q12", "//item[@featured='yes']"},
    {"Q13", "//*[@id]"},
    {"Q21",
     "/site/regions/*/item[@id='item0']/description//keyword/text()"},
    {"Q22", "/site/regions/namerica/item | /site/regions/samerica/item"},
    {"Q23", "/site/people/person[address and (phone or homepage)]"},
    {"Q24", "/site/people/person[not(homepage)]"},
    {"QA",
     "/site/open_auctions/open_auction[bidder/date = interval/start]"},
};

// The paper's DBLP query set (Table 7).
inline constexpr NamedQuery kDblpQueries[] = {
    {"QD1",
     "//inproceedings/title[preceding-sibling::author = "
     "'Harold G. Longbotham']"},
    {"QD2", "/dblp/inproceedings[year>=1994]//sup"},
    {"QD3", "/dblp/inproceedings/title/sup"},
    {"QD4", "//i[parent::*/parent::sub/ancestor::article]"},
    {"QD5", "/dblp/inproceedings[author=/dblp/book/author]/title"},
};

}  // namespace xprel::testutil

#endif  // XPREL_TESTS_QUERIES_H_
