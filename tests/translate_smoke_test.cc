// End-to-end smoke tests: Figure 1 schema/doc, PPF translation vs oracle.

#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace xprel {
namespace {

using testutil::ExpectPpfMatchesOracle;
using testutil::Fixture;
using testutil::MakeFixture;

class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = MakeFixture(testutil::kFigure1Xsd, testutil::kFigure1Doc);
    ASSERT_NE(fx_, nullptr);
  }
  std::unique_ptr<Fixture> fx_;
};

TEST_F(Figure1Test, SchemaGraphMarking) {
  // A, B, C, D, E are U-P; G and its descendants are I-P (recursion).
  const xsd::SchemaGraph& g = *fx_->graph;
  for (int id : g.ReachableNodes()) {
    const xsd::GraphNode& n = g.node(id);
    if (n.tag == "G") {
      EXPECT_EQ(n.path_class, xsd::PathClass::kInfinitePaths) << n.tag;
    } else {
      EXPECT_EQ(n.path_class, xsd::PathClass::kUniquePath) << n.tag;
    }
  }
}

TEST_F(Figure1Test, SimpleChildPaths) {
  ExpectPpfMatchesOracle(*fx_, "/A");
  ExpectPpfMatchesOracle(*fx_, "/A/B");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/D");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/E/F");
}

TEST_F(Figure1Test, DescendantAndWildcard) {
  ExpectPpfMatchesOracle(*fx_, "//F");
  ExpectPpfMatchesOracle(*fx_, "//G");
  ExpectPpfMatchesOracle(*fx_, "/A//F");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/*/F");
  ExpectPpfMatchesOracle(*fx_, "/A/*");
  ExpectPpfMatchesOracle(*fx_, "//*");
  ExpectPpfMatchesOracle(*fx_, "/A/B//G");
}

TEST_F(Figure1Test, Predicates) {
  ExpectPpfMatchesOracle(*fx_, "/A[@x=3]/B");
  ExpectPpfMatchesOracle(*fx_, "/A[@x=4]/B");
  ExpectPpfMatchesOracle(*fx_, "/A[@x]/B/C");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C]");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C/E/F=2]");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C//F=5]/C/D");
  ExpectPpfMatchesOracle(*fx_, "/A/B[not(C)]");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C and G]");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C or G]");
  ExpectPpfMatchesOracle(*fx_, "/A[@x=3]/B/C//F");
}

TEST_F(Figure1Test, BackwardAxes) {
  ExpectPpfMatchesOracle(*fx_, "//F/parent::E");
  ExpectPpfMatchesOracle(*fx_, "//F/ancestor::B");
  ExpectPpfMatchesOracle(*fx_, "//F/parent::E/parent::C");
  ExpectPpfMatchesOracle(*fx_, "//G/ancestor::G");
  ExpectPpfMatchesOracle(*fx_, "//G[parent::B]");
  ExpectPpfMatchesOracle(*fx_, "//G[parent::G]");
  ExpectPpfMatchesOracle(*fx_, "//F[parent::E or ancestor::B]");
  ExpectPpfMatchesOracle(*fx_, "//D/ancestor-or-self::C");
}

TEST_F(Figure1Test, OrderAxes) {
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/following-sibling::C");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/following-sibling::G");
  ExpectPpfMatchesOracle(*fx_, "//C/following::G");
  ExpectPpfMatchesOracle(*fx_, "//G/preceding::C");
  ExpectPpfMatchesOracle(*fx_, "//C[D]/following-sibling::C");
  ExpectPpfMatchesOracle(*fx_, "//G/preceding-sibling::C");
}

TEST_F(Figure1Test, UnionAndOrSelf) {
  ExpectPpfMatchesOracle(*fx_, "/A/B/C | /A/B/G");
  ExpectPpfMatchesOracle(*fx_, "//D | //F");
  ExpectPpfMatchesOracle(*fx_, "/descendant-or-self::G");
  ExpectPpfMatchesOracle(*fx_, "//G/descendant-or-self::G");
}

TEST_F(Figure1Test, RecursiveQueries) {
  ExpectPpfMatchesOracle(*fx_, "/A/B/G/G");
  ExpectPpfMatchesOracle(*fx_, "/A/B/G/G/G");
  ExpectPpfMatchesOracle(*fx_, "//G/G");
  ExpectPpfMatchesOracle(*fx_, "//G[G]");
  ExpectPpfMatchesOracle(*fx_, "//G[not(G)]");
}

TEST_F(Figure1Test, TextProjection) {
  ExpectPpfMatchesOracle(*fx_, "//F/text()");
  ExpectPpfMatchesOracle(*fx_, "/A/B/C/D/text()");
}

TEST_F(Figure1Test, ValueComparisons) {
  ExpectPpfMatchesOracle(*fx_, "//F[. = 2]");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C/D = 'd1']");
  ExpectPpfMatchesOracle(*fx_, "/A/B[C/D = C/D]");
  ExpectPpfMatchesOracle(*fx_, "//C[E/F = 5]/D");
}

TEST_F(Figure1Test, TranslationShape) {
  // Table 3 (2): a single child-step PPF after a predicate uses an FK
  // equijoin, and the U-P optimization drops every Paths join.
  translate::PpfTranslator translator(fx_->store->mapping());
  auto tq = translator.TranslateString("/A[@x=3]/B");
  ASSERT_TRUE(tq.ok()) << tq.status().ToString();
  std::string sql = tq.value().ToSqlString();
  EXPECT_NE(sql.find("B.A_id = A.id"), std::string::npos) << sql;
  EXPECT_EQ(sql.find("Paths"), std::string::npos) << sql;
  EXPECT_NE(sql.find("A.x = 3"), std::string::npos) << sql;
}

TEST_F(Figure1Test, TranslationUsesRegexForRecursion) {
  translate::PpfTranslator translator(fx_->store->mapping());
  auto tq = translator.TranslateString("//G");
  ASSERT_TRUE(tq.ok()) << tq.status().ToString();
  std::string sql = tq.value().ToSqlString();
  EXPECT_NE(sql.find("REGEXP_LIKE"), std::string::npos) << sql;
}

}  // namespace
}  // namespace xprel
