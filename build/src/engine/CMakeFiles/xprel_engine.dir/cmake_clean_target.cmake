file(REMOVE_RECURSE
  "libxprel_engine.a"
)
