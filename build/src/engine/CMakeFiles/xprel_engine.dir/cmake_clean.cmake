file(REMOVE_RECURSE
  "CMakeFiles/xprel_engine.dir/engine.cc.o"
  "CMakeFiles/xprel_engine.dir/engine.cc.o.d"
  "libxprel_engine.a"
  "libxprel_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
