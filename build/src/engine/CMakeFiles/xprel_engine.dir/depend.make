# Empty dependencies file for xprel_engine.
# This may be replaced when dependencies are built.
