# Empty dependencies file for xprel_xpatheval.
# This may be replaced when dependencies are built.
