file(REMOVE_RECURSE
  "libxprel_xpatheval.a"
)
