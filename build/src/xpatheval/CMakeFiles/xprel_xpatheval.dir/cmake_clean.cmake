file(REMOVE_RECURSE
  "CMakeFiles/xprel_xpatheval.dir/evaluator.cc.o"
  "CMakeFiles/xprel_xpatheval.dir/evaluator.cc.o.d"
  "libxprel_xpatheval.a"
  "libxprel_xpatheval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_xpatheval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
