# Empty dependencies file for xprel_translate.
# This may be replaced when dependencies are built.
