file(REMOVE_RECURSE
  "CMakeFiles/xprel_translate.dir/edge_translator.cc.o"
  "CMakeFiles/xprel_translate.dir/edge_translator.cc.o.d"
  "CMakeFiles/xprel_translate.dir/ppf.cc.o"
  "CMakeFiles/xprel_translate.dir/ppf.cc.o.d"
  "CMakeFiles/xprel_translate.dir/schema_nav.cc.o"
  "CMakeFiles/xprel_translate.dir/schema_nav.cc.o.d"
  "CMakeFiles/xprel_translate.dir/translator.cc.o"
  "CMakeFiles/xprel_translate.dir/translator.cc.o.d"
  "libxprel_translate.a"
  "libxprel_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
