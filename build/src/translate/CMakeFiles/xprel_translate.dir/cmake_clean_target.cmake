file(REMOVE_RECURSE
  "libxprel_translate.a"
)
