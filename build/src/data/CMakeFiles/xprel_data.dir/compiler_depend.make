# Empty compiler generated dependencies file for xprel_data.
# This may be replaced when dependencies are built.
