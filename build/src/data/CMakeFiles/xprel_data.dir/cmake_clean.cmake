file(REMOVE_RECURSE
  "CMakeFiles/xprel_data.dir/dblp.cc.o"
  "CMakeFiles/xprel_data.dir/dblp.cc.o.d"
  "CMakeFiles/xprel_data.dir/xmark.cc.o"
  "CMakeFiles/xprel_data.dir/xmark.cc.o.d"
  "libxprel_data.a"
  "libxprel_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
