file(REMOVE_RECURSE
  "libxprel_data.a"
)
