# Empty compiler generated dependencies file for xprel_xpath.
# This may be replaced when dependencies are built.
