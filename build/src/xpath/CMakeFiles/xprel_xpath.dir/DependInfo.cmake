
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/ast.cc" "src/xpath/CMakeFiles/xprel_xpath.dir/ast.cc.o" "gcc" "src/xpath/CMakeFiles/xprel_xpath.dir/ast.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/xpath/CMakeFiles/xprel_xpath.dir/parser.cc.o" "gcc" "src/xpath/CMakeFiles/xprel_xpath.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xprel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
