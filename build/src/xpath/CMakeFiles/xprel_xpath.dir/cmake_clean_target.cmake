file(REMOVE_RECURSE
  "libxprel_xpath.a"
)
