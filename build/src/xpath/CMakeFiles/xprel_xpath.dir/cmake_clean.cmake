file(REMOVE_RECURSE
  "CMakeFiles/xprel_xpath.dir/ast.cc.o"
  "CMakeFiles/xprel_xpath.dir/ast.cc.o.d"
  "CMakeFiles/xprel_xpath.dir/parser.cc.o"
  "CMakeFiles/xprel_xpath.dir/parser.cc.o.d"
  "libxprel_xpath.a"
  "libxprel_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
