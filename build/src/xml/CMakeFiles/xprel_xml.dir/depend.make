# Empty dependencies file for xprel_xml.
# This may be replaced when dependencies are built.
