file(REMOVE_RECURSE
  "libxprel_xml.a"
)
