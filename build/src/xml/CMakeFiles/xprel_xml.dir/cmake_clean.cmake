file(REMOVE_RECURSE
  "CMakeFiles/xprel_xml.dir/document.cc.o"
  "CMakeFiles/xprel_xml.dir/document.cc.o.d"
  "CMakeFiles/xprel_xml.dir/parser.cc.o"
  "CMakeFiles/xprel_xml.dir/parser.cc.o.d"
  "CMakeFiles/xprel_xml.dir/serializer.cc.o"
  "CMakeFiles/xprel_xml.dir/serializer.cc.o.d"
  "libxprel_xml.a"
  "libxprel_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
