file(REMOVE_RECURSE
  "CMakeFiles/xprel_common.dir/status.cc.o"
  "CMakeFiles/xprel_common.dir/status.cc.o.d"
  "CMakeFiles/xprel_common.dir/string_util.cc.o"
  "CMakeFiles/xprel_common.dir/string_util.cc.o.d"
  "libxprel_common.a"
  "libxprel_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
