file(REMOVE_RECURSE
  "libxprel_common.a"
)
