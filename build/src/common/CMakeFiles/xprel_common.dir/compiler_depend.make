# Empty compiler generated dependencies file for xprel_common.
# This may be replaced when dependencies are built.
