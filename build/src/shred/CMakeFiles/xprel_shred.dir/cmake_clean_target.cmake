file(REMOVE_RECURSE
  "libxprel_shred.a"
)
