file(REMOVE_RECURSE
  "CMakeFiles/xprel_shred.dir/edge_loader.cc.o"
  "CMakeFiles/xprel_shred.dir/edge_loader.cc.o.d"
  "CMakeFiles/xprel_shred.dir/schema_loader.cc.o"
  "CMakeFiles/xprel_shred.dir/schema_loader.cc.o.d"
  "CMakeFiles/xprel_shred.dir/schema_map.cc.o"
  "CMakeFiles/xprel_shred.dir/schema_map.cc.o.d"
  "libxprel_shred.a"
  "libxprel_shred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_shred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
