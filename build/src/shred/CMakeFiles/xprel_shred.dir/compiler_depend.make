# Empty compiler generated dependencies file for xprel_shred.
# This may be replaced when dependencies are built.
