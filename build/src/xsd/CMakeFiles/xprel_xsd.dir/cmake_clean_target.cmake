file(REMOVE_RECURSE
  "libxprel_xsd.a"
)
