# Empty compiler generated dependencies file for xprel_xsd.
# This may be replaced when dependencies are built.
