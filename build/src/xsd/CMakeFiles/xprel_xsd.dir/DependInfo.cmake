
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsd/schema.cc" "src/xsd/CMakeFiles/xprel_xsd.dir/schema.cc.o" "gcc" "src/xsd/CMakeFiles/xprel_xsd.dir/schema.cc.o.d"
  "/root/repo/src/xsd/schema_graph.cc" "src/xsd/CMakeFiles/xprel_xsd.dir/schema_graph.cc.o" "gcc" "src/xsd/CMakeFiles/xprel_xsd.dir/schema_graph.cc.o.d"
  "/root/repo/src/xsd/xsd_parser.cc" "src/xsd/CMakeFiles/xprel_xsd.dir/xsd_parser.cc.o" "gcc" "src/xsd/CMakeFiles/xprel_xsd.dir/xsd_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xprel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xprel_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
