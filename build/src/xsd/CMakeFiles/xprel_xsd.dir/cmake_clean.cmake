file(REMOVE_RECURSE
  "CMakeFiles/xprel_xsd.dir/schema.cc.o"
  "CMakeFiles/xprel_xsd.dir/schema.cc.o.d"
  "CMakeFiles/xprel_xsd.dir/schema_graph.cc.o"
  "CMakeFiles/xprel_xsd.dir/schema_graph.cc.o.d"
  "CMakeFiles/xprel_xsd.dir/xsd_parser.cc.o"
  "CMakeFiles/xprel_xsd.dir/xsd_parser.cc.o.d"
  "libxprel_xsd.a"
  "libxprel_xsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_xsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
