file(REMOVE_RECURSE
  "CMakeFiles/xprel_rex.dir/regex.cc.o"
  "CMakeFiles/xprel_rex.dir/regex.cc.o.d"
  "libxprel_rex.a"
  "libxprel_rex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_rex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
