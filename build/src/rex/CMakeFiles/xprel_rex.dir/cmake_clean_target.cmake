file(REMOVE_RECURSE
  "libxprel_rex.a"
)
