# Empty compiler generated dependencies file for xprel_rex.
# This may be replaced when dependencies are built.
