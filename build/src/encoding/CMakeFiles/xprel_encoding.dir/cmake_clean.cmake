file(REMOVE_RECURSE
  "CMakeFiles/xprel_encoding.dir/dewey.cc.o"
  "CMakeFiles/xprel_encoding.dir/dewey.cc.o.d"
  "libxprel_encoding.a"
  "libxprel_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
