file(REMOVE_RECURSE
  "libxprel_encoding.a"
)
