# Empty compiler generated dependencies file for xprel_encoding.
# This may be replaced when dependencies are built.
