file(REMOVE_RECURSE
  "CMakeFiles/xprel_accel.dir/accel_store.cc.o"
  "CMakeFiles/xprel_accel.dir/accel_store.cc.o.d"
  "CMakeFiles/xprel_accel.dir/accel_translator.cc.o"
  "CMakeFiles/xprel_accel.dir/accel_translator.cc.o.d"
  "CMakeFiles/xprel_accel.dir/staircase.cc.o"
  "CMakeFiles/xprel_accel.dir/staircase.cc.o.d"
  "libxprel_accel.a"
  "libxprel_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
