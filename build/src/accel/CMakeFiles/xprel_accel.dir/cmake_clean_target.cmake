file(REMOVE_RECURSE
  "libxprel_accel.a"
)
