# Empty compiler generated dependencies file for xprel_accel.
# This may be replaced when dependencies are built.
