file(REMOVE_RECURSE
  "libxprel_rel.a"
)
