
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/btree.cc" "src/rel/CMakeFiles/xprel_rel.dir/btree.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/btree.cc.o.d"
  "/root/repo/src/rel/executor.cc" "src/rel/CMakeFiles/xprel_rel.dir/executor.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/executor.cc.o.d"
  "/root/repo/src/rel/key_codec.cc" "src/rel/CMakeFiles/xprel_rel.dir/key_codec.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/key_codec.cc.o.d"
  "/root/repo/src/rel/planner.cc" "src/rel/CMakeFiles/xprel_rel.dir/planner.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/planner.cc.o.d"
  "/root/repo/src/rel/sql_ast.cc" "src/rel/CMakeFiles/xprel_rel.dir/sql_ast.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/sql_ast.cc.o.d"
  "/root/repo/src/rel/table.cc" "src/rel/CMakeFiles/xprel_rel.dir/table.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/table.cc.o.d"
  "/root/repo/src/rel/value.cc" "src/rel/CMakeFiles/xprel_rel.dir/value.cc.o" "gcc" "src/rel/CMakeFiles/xprel_rel.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xprel_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/xprel_rex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
