# Empty compiler generated dependencies file for xprel_rel.
# This may be replaced when dependencies are built.
