file(REMOVE_RECURSE
  "CMakeFiles/xprel_rel.dir/btree.cc.o"
  "CMakeFiles/xprel_rel.dir/btree.cc.o.d"
  "CMakeFiles/xprel_rel.dir/executor.cc.o"
  "CMakeFiles/xprel_rel.dir/executor.cc.o.d"
  "CMakeFiles/xprel_rel.dir/key_codec.cc.o"
  "CMakeFiles/xprel_rel.dir/key_codec.cc.o.d"
  "CMakeFiles/xprel_rel.dir/planner.cc.o"
  "CMakeFiles/xprel_rel.dir/planner.cc.o.d"
  "CMakeFiles/xprel_rel.dir/sql_ast.cc.o"
  "CMakeFiles/xprel_rel.dir/sql_ast.cc.o.d"
  "CMakeFiles/xprel_rel.dir/table.cc.o"
  "CMakeFiles/xprel_rel.dir/table.cc.o.d"
  "CMakeFiles/xprel_rel.dir/value.cc.o"
  "CMakeFiles/xprel_rel.dir/value.cc.o.d"
  "libxprel_rel.a"
  "libxprel_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprel_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
