
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/translator_sql_test.cc" "tests/CMakeFiles/translator_sql_test.dir/translator_sql_test.cc.o" "gcc" "tests/CMakeFiles/translator_sql_test.dir/translator_sql_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/xprel_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/xprel_data.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/xprel_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/xpatheval/CMakeFiles/xprel_xpatheval.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/xprel_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/shred/CMakeFiles/xprel_shred.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/xprel_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/xprel_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xprel_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xprel_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/xprel_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/xprel_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xprel_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
