# Empty dependencies file for translator_sql_test.
# This may be replaced when dependencies are built.
