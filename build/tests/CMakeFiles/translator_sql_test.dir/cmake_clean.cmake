file(REMOVE_RECURSE
  "CMakeFiles/translator_sql_test.dir/translator_sql_test.cc.o"
  "CMakeFiles/translator_sql_test.dir/translator_sql_test.cc.o.d"
  "translator_sql_test"
  "translator_sql_test.pdb"
  "translator_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
