file(REMOVE_RECURSE
  "CMakeFiles/engine_backends_test.dir/engine_backends_test.cc.o"
  "CMakeFiles/engine_backends_test.dir/engine_backends_test.cc.o.d"
  "engine_backends_test"
  "engine_backends_test.pdb"
  "engine_backends_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_backends_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
