# Empty dependencies file for engine_backends_test.
# This may be replaced when dependencies are built.
