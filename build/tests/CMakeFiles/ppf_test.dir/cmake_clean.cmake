file(REMOVE_RECURSE
  "CMakeFiles/ppf_test.dir/ppf_test.cc.o"
  "CMakeFiles/ppf_test.dir/ppf_test.cc.o.d"
  "ppf_test"
  "ppf_test.pdb"
  "ppf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
