# Empty compiler generated dependencies file for ppf_test.
# This may be replaced when dependencies are built.
