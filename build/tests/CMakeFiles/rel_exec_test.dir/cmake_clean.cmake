file(REMOVE_RECURSE
  "CMakeFiles/rel_exec_test.dir/rel_exec_test.cc.o"
  "CMakeFiles/rel_exec_test.dir/rel_exec_test.cc.o.d"
  "rel_exec_test"
  "rel_exec_test.pdb"
  "rel_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rel_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
