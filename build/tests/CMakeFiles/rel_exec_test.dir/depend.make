# Empty dependencies file for rel_exec_test.
# This may be replaced when dependencies are built.
