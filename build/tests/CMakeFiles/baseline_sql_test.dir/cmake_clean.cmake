file(REMOVE_RECURSE
  "CMakeFiles/baseline_sql_test.dir/baseline_sql_test.cc.o"
  "CMakeFiles/baseline_sql_test.dir/baseline_sql_test.cc.o.d"
  "baseline_sql_test"
  "baseline_sql_test.pdb"
  "baseline_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
