# Empty dependencies file for baseline_sql_test.
# This may be replaced when dependencies are built.
