file(REMOVE_RECURSE
  "CMakeFiles/rex_test.dir/rex_test.cc.o"
  "CMakeFiles/rex_test.dir/rex_test.cc.o.d"
  "rex_test"
  "rex_test.pdb"
  "rex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
