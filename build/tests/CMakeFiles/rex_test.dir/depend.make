# Empty dependencies file for rex_test.
# This may be replaced when dependencies are built.
