file(REMOVE_RECURSE
  "CMakeFiles/data_shred_test.dir/data_shred_test.cc.o"
  "CMakeFiles/data_shred_test.dir/data_shred_test.cc.o.d"
  "data_shred_test"
  "data_shred_test.pdb"
  "data_shred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_shred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
