# Empty dependencies file for data_shred_test.
# This may be replaced when dependencies are built.
