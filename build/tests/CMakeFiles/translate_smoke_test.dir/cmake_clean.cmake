file(REMOVE_RECURSE
  "CMakeFiles/translate_smoke_test.dir/translate_smoke_test.cc.o"
  "CMakeFiles/translate_smoke_test.dir/translate_smoke_test.cc.o.d"
  "translate_smoke_test"
  "translate_smoke_test.pdb"
  "translate_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
