# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rex_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/value_codec_test[1]_include.cmake")
include("/root/repo/build/tests/dewey_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/xsd_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_parser_test[1]_include.cmake")
include("/root/repo/build/tests/ppf_test[1]_include.cmake")
include("/root/repo/build/tests/rel_exec_test[1]_include.cmake")
include("/root/repo/build/tests/translate_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/translator_sql_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/engine_backends_test[1]_include.cmake")
include("/root/repo/build/tests/random_property_test[1]_include.cmake")
include("/root/repo/build/tests/data_shred_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_sql_test[1]_include.cmake")
