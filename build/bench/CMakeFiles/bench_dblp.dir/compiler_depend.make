# Empty compiler generated dependencies file for bench_dblp.
# This may be replaced when dependencies are built.
