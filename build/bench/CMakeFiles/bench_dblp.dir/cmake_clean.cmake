file(REMOVE_RECURSE
  "CMakeFiles/bench_dblp.dir/bench_dblp.cc.o"
  "CMakeFiles/bench_dblp.dir/bench_dblp.cc.o.d"
  "bench_dblp"
  "bench_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
