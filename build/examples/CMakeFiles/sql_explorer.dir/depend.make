# Empty dependencies file for sql_explorer.
# This may be replaced when dependencies are built.
