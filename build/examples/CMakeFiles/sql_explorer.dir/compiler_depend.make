# Empty compiler generated dependencies file for sql_explorer.
# This may be replaced when dependencies are built.
