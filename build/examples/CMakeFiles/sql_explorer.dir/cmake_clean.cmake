file(REMOVE_RECURSE
  "CMakeFiles/sql_explorer.dir/sql_explorer.cpp.o"
  "CMakeFiles/sql_explorer.dir/sql_explorer.cpp.o.d"
  "sql_explorer"
  "sql_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
