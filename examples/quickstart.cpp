// Quickstart: parse an XML document and its schema, shred into the
// schema-aware relational store, translate an XPath query to SQL with the
// PPF translator, and execute it.
//
//   ./examples/quickstart

#include <cstdio>

#include "engine/engine.h"
#include "xml/parser.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace {

// A small product-catalog schema and document.
const char* kXsd = R"(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="catalog">
    <xs:complexType><xs:sequence>
      <xs:element ref="product" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="product">
    <xs:complexType><xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="price" type="xs:string"/>
      <xs:element ref="part" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence><xs:attribute name="sku"/></xs:complexType>
  </xs:element>
  <xs:element name="part">
    <xs:complexType><xs:sequence>
      <xs:element name="label" type="xs:string"/>
      <xs:element ref="part" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
)";

const char* kDoc = R"(
<catalog>
  <product sku="A-100">
    <name>Espresso machine</name>
    <price>249</price>
    <part><label>boiler</label>
      <part><label>valve</label></part>
    </part>
  </product>
  <product sku="B-200">
    <name>Grinder</name>
    <price>99</price>
    <part><label>burr</label></part>
  </product>
</catalog>
)";

}  // namespace

int main() {
  using namespace xprel;

  // 1. Parse the document and the schema; build the annotated schema graph.
  auto doc = xml::ParseXml(kDoc);
  if (!doc.ok()) {
    std::fprintf(stderr, "xml: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  auto schema = xsd::ParseXsd(kXsd);
  if (!schema.ok()) {
    std::fprintf(stderr, "xsd: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto graph = xsd::SchemaGraph::Build(schema.value());
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Schema graph marking (paper Fig. 2):\n%s\n",
              graph.value().DescribeMarking().c_str());

  // 2. Build the engine: this shreds the document into every enabled store.
  auto engine = engine::XPathEngine::Build(doc.value(), graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Relational image:\n%s\n",
              engine.value()->ppf_store()->db().DescribeStats().c_str());

  // 3. Translate and run a few queries.
  const char* queries[] = {
      "/catalog/product",
      "//part[label='valve']",
      "/catalog/product[price=99]/name",
      "//part/ancestor::product",
  };
  for (const char* q : queries) {
    auto out = engine.value()->Run(engine::Backend::kPpf, q);
    if (!out.ok()) {
      std::fprintf(stderr, "%s: %s\n", q, out.status().ToString().c_str());
      return 1;
    }
    std::printf("XPath: %s\n  SQL:  %s\n  -> %zu node(s):", q,
                out.value().sql.c_str(), out.value().nodes.size());
    for (xml::NodeId id : out.value().nodes) {
      std::printf(" <%s>", doc.value().node(id).name.c_str());
    }
    std::printf("\n\n");
  }
  return 0;
}
