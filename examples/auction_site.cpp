// Auction-site analytics: generates an XMark-like document and answers the
// kind of workload the paper's introduction motivates — comparing the PPF
// backend's SQL against the conventional per-step translation.
//
//   ./examples/auction_site [scale]        (default 0.02)

#include <cstdio>
#include <cstdlib>

#include "data/xmark.h"
#include "engine/engine.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

int main(int argc, char** argv) {
  using namespace xprel;

  data::XMarkOptions opt;
  opt.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::printf("Generating auction site (scale %.3g)...\n", opt.scale);
  xml::Document doc = data::GenerateXMark(opt);
  std::printf("  %d nodes (%d elements)\n", doc.size(), doc.CountElements());

  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  struct Question {
    const char* what;
    const char* xpath;
  };
  const Question questions[] = {
      {"Featured items", "//item[@featured='yes']"},
      {"Items sold in North/South America",
       "/site/regions/*/item[parent::namerica or parent::samerica]"},
      {"People reachable by phone or homepage",
       "/site/people/person[address and (phone or homepage)]"},
      {"Auctions where the first bid arrived on the start date",
       "/site/open_auctions/open_auction[bidder/date = interval/start]"},
      {"Keywords buried in nested list items",
       "//listitem//keyword"},
  };

  for (const Question& q : questions) {
    auto ppf = engine.value()->Run(engine::Backend::kPpf, q.xpath);
    if (!ppf.ok()) {
      std::fprintf(stderr, "%s: %s\n", q.xpath,
                   ppf.status().ToString().c_str());
      continue;
    }
    std::printf("\n%s\n  %s\n", q.what, q.xpath);
    std::printf("  -> %zu nodes in %.2f ms (%zu rows scanned, %zu index "
                "probes)\n",
                ppf.value().nodes.size(), ppf.value().elapsed_ms,
                ppf.value().stats.rows_scanned,
                ppf.value().stats.index_probes);
    std::printf("  PPF SQL: %s\n", ppf.value().sql.c_str());
    auto naive = engine.value()->Run(engine::Backend::kNaive, q.xpath);
    if (naive.ok()) {
      std::printf("  conventional translation: %.2f ms (%zu rows scanned)\n",
                  naive.value().elapsed_ms,
                  naive.value().stats.rows_scanned);
    } else {
      std::printf("  conventional translation: %s\n",
                  naive.status().ToString().c_str());
    }
  }
  return 0;
}
