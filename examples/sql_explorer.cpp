// SQL explorer: prints the SQL every translator produces for a given XPath
// expression, side by side — a window into what each of the paper's systems
// actually executes — followed by the executor's access plan (join strategy
// per step, bitmap pre-filters, semi-join builds), and finally the query
// run twice through a QueryService so the service metrics block (latency
// histograms, cache hit rate) is visible. Reads the XPath from the command
// line (or uses a default), against the XMark schema.
//
//   ./examples/sql_explorer "//keyword/ancestor::listitem"
//
// Observability subcommands:
//
//   ./examples/sql_explorer explain analyze "//keyword"   per-step actuals
//   ./examples/sql_explorer trace last ["<xpath>"]        last span tree
//   ./examples/sql_explorer metrics --prometheus          scrape format
//
// Durability subcommands:
//
//   ./examples/sql_explorer save <dir>            durable image: source.xml,
//                                                 WAL with a few mutations,
//                                                 checkpointed snapshot
//                                                 (overwrites a prior image)
//   ./examples/sql_explorer open --recover <dir>  crash-recover the image and
//                                                 serve a query from it

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "data/xmark.h"
#include "durability/manager.h"
#include "engine/engine.h"
#include "service/query_service.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace {

constexpr const char* kDefaultXPath = "/site/regions/*/item[parent::namerica]";

constexpr xprel::engine::Backend kSqlBackends[] = {
    xprel::engine::Backend::kPpf,
    xprel::engine::Backend::kEdgePpf,
    xprel::engine::Backend::kAccelerator,
    xprel::engine::Backend::kNaive,
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xprel;

  enum class Mode {
    kDefault,
    kExplainAnalyze,
    kTraceLast,
    kMetricsProm,
    kSave,
    kOpenRecover,
  };
  Mode mode = Mode::kDefault;
  const char* xpath = kDefaultXPath;
  const char* dir = nullptr;
  if (argc >= 3 && std::strcmp(argv[1], "explain") == 0 &&
      std::strcmp(argv[2], "analyze") == 0) {
    mode = Mode::kExplainAnalyze;
    if (argc > 3) xpath = argv[3];
  } else if (argc >= 3 && std::strcmp(argv[1], "trace") == 0 &&
             std::strcmp(argv[2], "last") == 0) {
    mode = Mode::kTraceLast;
    if (argc > 3) xpath = argv[3];
  } else if (argc >= 3 && std::strcmp(argv[1], "metrics") == 0 &&
             std::strcmp(argv[2], "--prometheus") == 0) {
    mode = Mode::kMetricsProm;
    if (argc > 3) xpath = argv[3];
  } else if (argc >= 3 && std::strcmp(argv[1], "save") == 0) {
    mode = Mode::kSave;
    dir = argv[2];
  } else if (argc >= 4 && std::strcmp(argv[1], "open") == 0 &&
             std::strcmp(argv[2], "--recover") == 0) {
    mode = Mode::kOpenRecover;
    dir = argv[3];
  } else if (argc > 1) {
    xpath = argv[1];
  }

  data::XMarkOptions opt;
  opt.scale = 0.002;  // tiny: only needed so stores exist
  xml::Document doc = data::GenerateXMark(opt);
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (mode == Mode::kSave) {
    // The durable image's reshred fallback reparses dir/source.xml, so the
    // document saved must be the fixed point of serialize-then-parse (node
    // ids line up with what the WAL records reference).
    auto parsed = xml::ParseXml(xml::SerializeXml(doc));
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    doc = std::move(parsed).value();
    auto eng = engine::XPathEngine::Build(doc, graph.value());
    if (!eng.ok()) {
      std::fprintf(stderr, "%s\n", eng.status().ToString().c_str());
      return 1;
    }
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // `save` overwrites a prior image
    auto mgr =
        durability::DurabilityManager::Create(dir, doc, *eng.value(), {});
    if (!mgr.ok()) {
      std::fprintf(stderr, "%s\n", mgr.status().ToString().c_str());
      return 1;
    }
    // A few durable mutations so the recovered image visibly differs from
    // the pristine document, then a checkpoint so `open --recover` takes
    // the snapshot path (delete a snapshot to watch the WAL replay path).
    auto region = eng.value()->Run(engine::Backend::kPpf,
                                   "/site/regions/africa");
    if (region.ok() && !region.value().nodes.empty()) {
      auto r = mgr.value()->InsertFragment(
          region.value().nodes[0], 0,
          "<item id=\"saved0\"><name>saved by sql_explorer</name></item>");
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    auto name = eng.value()->Run(engine::Backend::kPpf, "//item/name");
    if (name.ok() && !name.value().nodes.empty()) {
      auto r = mgr.value()->UpdateText(name.value().nodes[0],
                                       "renamed durably");
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    Status ck = mgr.value()->Checkpoint();
    if (!ck.ok()) {
      std::fprintf(stderr, "%s\n", ck.ToString().c_str());
      return 1;
    }
    const durability::DurabilityStats& s = mgr.value()->stats();
    std::printf("saved: dir=%s applied_lsn=%llu wal_records=%llu "
                "checkpoints=%llu snapshot_bytes=%llu\n",
                dir,
                static_cast<unsigned long long>(mgr.value()->applied_lsn()),
                static_cast<unsigned long long>(s.wal_records.load()),
                static_cast<unsigned long long>(s.checkpoints.load()),
                static_cast<unsigned long long>(s.snapshot_bytes.load()));
    return 0;
  }

  if (mode == Mode::kOpenRecover) {
    auto rec = durability::OpenOrRecover(dir, graph.value());
    if (!rec.ok()) {
      std::fprintf(stderr, "%s\n", rec.status().ToString().c_str());
      return 1;
    }
    const durability::RecoveryReport& report = rec.value().report;
    std::printf("recovered: dir=%s used_snapshot=%d reshred_fallback=%d "
                "replayed=%llu skipped_aborted=%llu torn_segments=%llu "
                "recovered_lsn=%llu\n",
                dir, report.used_snapshot ? 1 : 0,
                report.reshred_fallback ? 1 : 0,
                static_cast<unsigned long long>(report.replayed),
                static_cast<unsigned long long>(report.skipped_aborted),
                static_cast<unsigned long long>(report.torn_segments),
                static_cast<unsigned long long>(report.recovered_lsn));
    std::printf("\n--- recovery spans ---\n%s", report.trace.c_str());

    service::ServiceOptions sopt;
    sopt.workers = 2;
    service::QueryService svc(*rec.value().engine, sopt);
    svc.AttachDurability(rec.value().manager.get());
    auto r = svc.Run({.xpath = xpath});
    if (!r.ok()) {
      std::fprintf(stderr, "service: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s -> %zu nodes in %.2f ms\n", xpath,
                r.value().nodes.size(), r.value().elapsed_ms);
    std::printf("\n--- service metrics ---\n%s", svc.DumpMetrics().c_str());
    return 0;
  }

  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (mode == Mode::kExplainAnalyze) {
    std::printf("XPath: %s\n", xpath);
    for (engine::Backend b : kSqlBackends) {
      std::printf("\n--- %s ---\n", engine::BackendName(b));
      auto analyzed = engine.value()->ExplainAnalyze(b, xpath);
      if (analyzed.ok()) {
        std::printf("%s", analyzed.value().c_str());
      } else {
        std::printf("(%s)\n", analyzed.status().ToString().c_str());
      }
    }
    return 0;
  }

  if (mode == Mode::kTraceLast || mode == Mode::kMetricsProm) {
    // Drive a couple of requests through the serving layer so the trace
    // ring / registry have something to show. The second run bypasses the
    // result cache, so the most recent trace is a full execution (queue,
    // plan, execute spans) rather than a bare cache-lookup hit.
    service::ServiceOptions sopt;
    sopt.workers = 2;
    service::QueryService svc(*engine.value(), sopt);
    for (int i = 0; i < 2; ++i) {
      auto r = svc.Run({.xpath = xpath, .bypass_cache = i == 1});
      if (!r.ok()) {
        std::fprintf(stderr, "service: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    if (mode == Mode::kTraceLast) {
      std::printf("%s", svc.RenderLastTrace().c_str());
    } else {
      std::printf("%s", svc.RenderPrometheus().c_str());
    }
    return 0;
  }

  std::printf("XPath: %s\n", xpath);
  for (engine::Backend b : kSqlBackends) {
    std::printf("\n--- %s ---\n", engine::BackendName(b));
    auto sql = engine.value()->TranslateToSql(b, xpath);
    if (sql.ok()) {
      std::printf("%s\n", sql.value().c_str());
    } else {
      std::printf("(%s)\n", sql.status().ToString().c_str());
      continue;
    }
    auto plan = engine.value()->ExplainPlan(b, xpath);
    if (plan.ok()) {
      std::printf("plan:\n%s", plan.value().c_str());
    } else {
      std::printf("plan: (%s)\n", plan.status().ToString().c_str());
    }
  }
  std::printf("\n--- %s ---\n(no SQL: native staircase-join evaluation)\n",
              engine::BackendName(engine::Backend::kStaircase));

  // Run the query through the serving layer twice — the second request is
  // a result-cache hit — and show what the service's metrics look like.
  service::ServiceOptions sopt;
  sopt.workers = 2;
  service::QueryService svc(*engine.value(), sopt);
  for (int i = 0; i < 2; ++i) {
    auto r = svc.Run({.xpath = xpath});
    if (!r.ok()) {
      std::printf("\nservice: (%s)\n", r.status().ToString().c_str());
      return 0;
    }
    std::printf("\nservice run %d: %zu nodes in %.2f ms%s\n", i + 1,
                r.value().nodes.size(), r.value().elapsed_ms,
                r.value().cache_hit ? " (cache hit)" : "");
  }
  std::printf("\n--- service metrics ---\n%s", svc.DumpMetrics().c_str());
  return 0;
}
