// SQL explorer: prints the SQL every translator produces for a given XPath
// expression, side by side — a window into what each of the paper's systems
// actually executes — followed by the executor's access plan (join strategy
// per step, bitmap pre-filters, semi-join builds), and finally the query
// run twice through a QueryService so the service metrics block (latency
// histograms, cache hit rate) is visible. Reads the XPath from the command
// line (or uses a default), against the XMark schema.
//
//   ./examples/sql_explorer "//keyword/ancestor::listitem"
//
// Observability subcommands:
//
//   ./examples/sql_explorer explain analyze "//keyword"   per-step actuals
//   ./examples/sql_explorer trace last ["<xpath>"]        last span tree
//   ./examples/sql_explorer metrics --prometheus          scrape format

#include <cstdio>
#include <cstring>

#include "data/xmark.h"
#include "engine/engine.h"
#include "service/query_service.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

namespace {

constexpr const char* kDefaultXPath = "/site/regions/*/item[parent::namerica]";

constexpr xprel::engine::Backend kSqlBackends[] = {
    xprel::engine::Backend::kPpf,
    xprel::engine::Backend::kEdgePpf,
    xprel::engine::Backend::kAccelerator,
    xprel::engine::Backend::kNaive,
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xprel;

  enum class Mode { kDefault, kExplainAnalyze, kTraceLast, kMetricsProm };
  Mode mode = Mode::kDefault;
  const char* xpath = kDefaultXPath;
  if (argc >= 3 && std::strcmp(argv[1], "explain") == 0 &&
      std::strcmp(argv[2], "analyze") == 0) {
    mode = Mode::kExplainAnalyze;
    if (argc > 3) xpath = argv[3];
  } else if (argc >= 3 && std::strcmp(argv[1], "trace") == 0 &&
             std::strcmp(argv[2], "last") == 0) {
    mode = Mode::kTraceLast;
    if (argc > 3) xpath = argv[3];
  } else if (argc >= 3 && std::strcmp(argv[1], "metrics") == 0 &&
             std::strcmp(argv[2], "--prometheus") == 0) {
    mode = Mode::kMetricsProm;
    if (argc > 3) xpath = argv[3];
  } else if (argc > 1) {
    xpath = argv[1];
  }

  data::XMarkOptions opt;
  opt.scale = 0.002;  // tiny: only needed so stores exist
  xml::Document doc = data::GenerateXMark(opt);
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  if (mode == Mode::kExplainAnalyze) {
    std::printf("XPath: %s\n", xpath);
    for (engine::Backend b : kSqlBackends) {
      std::printf("\n--- %s ---\n", engine::BackendName(b));
      auto analyzed = engine.value()->ExplainAnalyze(b, xpath);
      if (analyzed.ok()) {
        std::printf("%s", analyzed.value().c_str());
      } else {
        std::printf("(%s)\n", analyzed.status().ToString().c_str());
      }
    }
    return 0;
  }

  if (mode == Mode::kTraceLast || mode == Mode::kMetricsProm) {
    // Drive a couple of requests through the serving layer so the trace
    // ring / registry have something to show. The second run bypasses the
    // result cache, so the most recent trace is a full execution (queue,
    // plan, execute spans) rather than a bare cache-lookup hit.
    service::ServiceOptions sopt;
    sopt.workers = 2;
    service::QueryService svc(*engine.value(), sopt);
    for (int i = 0; i < 2; ++i) {
      auto r = svc.Run({.xpath = xpath, .bypass_cache = i == 1});
      if (!r.ok()) {
        std::fprintf(stderr, "service: %s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    if (mode == Mode::kTraceLast) {
      std::printf("%s", svc.RenderLastTrace().c_str());
    } else {
      std::printf("%s", svc.RenderPrometheus().c_str());
    }
    return 0;
  }

  std::printf("XPath: %s\n", xpath);
  for (engine::Backend b : kSqlBackends) {
    std::printf("\n--- %s ---\n", engine::BackendName(b));
    auto sql = engine.value()->TranslateToSql(b, xpath);
    if (sql.ok()) {
      std::printf("%s\n", sql.value().c_str());
    } else {
      std::printf("(%s)\n", sql.status().ToString().c_str());
      continue;
    }
    auto plan = engine.value()->ExplainPlan(b, xpath);
    if (plan.ok()) {
      std::printf("plan:\n%s", plan.value().c_str());
    } else {
      std::printf("plan: (%s)\n", plan.status().ToString().c_str());
    }
  }
  std::printf("\n--- %s ---\n(no SQL: native staircase-join evaluation)\n",
              engine::BackendName(engine::Backend::kStaircase));

  // Run the query through the serving layer twice — the second request is
  // a result-cache hit — and show what the service's metrics look like.
  service::ServiceOptions sopt;
  sopt.workers = 2;
  service::QueryService svc(*engine.value(), sopt);
  for (int i = 0; i < 2; ++i) {
    auto r = svc.Run({.xpath = xpath});
    if (!r.ok()) {
      std::printf("\nservice: (%s)\n", r.status().ToString().c_str());
      return 0;
    }
    std::printf("\nservice run %d: %zu nodes in %.2f ms%s\n", i + 1,
                r.value().nodes.size(), r.value().elapsed_ms,
                r.value().cache_hit ? " (cache hit)" : "");
  }
  std::printf("\n--- service metrics ---\n%s", svc.DumpMetrics().c_str());
  return 0;
}
