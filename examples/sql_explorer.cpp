// SQL explorer: prints the SQL every translator produces for a given XPath
// expression, side by side — a window into what each of the paper's systems
// actually executes — followed by the executor's access plan (join strategy
// per step, bitmap pre-filters, semi-join builds). Reads the XPath from the
// command line (or uses a default), against the XMark schema.
//
//   ./examples/sql_explorer "//keyword/ancestor::listitem"

#include <cstdio>

#include "data/xmark.h"
#include "engine/engine.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

int main(int argc, char** argv) {
  using namespace xprel;

  const char* xpath =
      argc > 1 ? argv[1] : "/site/regions/*/item[parent::namerica]";

  data::XMarkOptions opt;
  opt.scale = 0.002;  // tiny: only needed so stores exist
  xml::Document doc = data::GenerateXMark(opt);
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("XPath: %s\n", xpath);
  const engine::Backend backends[] = {
      engine::Backend::kPpf,
      engine::Backend::kEdgePpf,
      engine::Backend::kAccelerator,
      engine::Backend::kNaive,
  };
  for (engine::Backend b : backends) {
    std::printf("\n--- %s ---\n", engine::BackendName(b));
    auto sql = engine.value()->TranslateToSql(b, xpath);
    if (sql.ok()) {
      std::printf("%s\n", sql.value().c_str());
    } else {
      std::printf("(%s)\n", sql.status().ToString().c_str());
      continue;
    }
    auto plan = engine.value()->ExplainPlan(b, xpath);
    if (plan.ok()) {
      std::printf("plan:\n%s", plan.value().c_str());
    } else {
      std::printf("plan: (%s)\n", plan.status().ToString().c_str());
    }
  }
  std::printf("\n--- %s ---\n(no SQL: native staircase-join evaluation)\n",
              engine::BackendName(engine::Backend::kStaircase));
  return 0;
}
