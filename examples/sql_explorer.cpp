// SQL explorer: prints the SQL every translator produces for a given XPath
// expression, side by side — a window into what each of the paper's systems
// actually executes — followed by the executor's access plan (join strategy
// per step, bitmap pre-filters, semi-join builds), and finally the query
// run twice through a QueryService so the service metrics block (latency
// histograms, cache hit rate) is visible. Reads the XPath from the command
// line (or uses a default), against the XMark schema.
//
//   ./examples/sql_explorer "//keyword/ancestor::listitem"

#include <cstdio>

#include "data/xmark.h"
#include "engine/engine.h"
#include "service/query_service.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

int main(int argc, char** argv) {
  using namespace xprel;

  const char* xpath =
      argc > 1 ? argv[1] : "/site/regions/*/item[parent::namerica]";

  data::XMarkOptions opt;
  opt.scale = 0.002;  // tiny: only needed so stores exist
  xml::Document doc = data::GenerateXMark(opt);
  auto schema = xsd::ParseXsd(data::XMarkXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("XPath: %s\n", xpath);
  const engine::Backend backends[] = {
      engine::Backend::kPpf,
      engine::Backend::kEdgePpf,
      engine::Backend::kAccelerator,
      engine::Backend::kNaive,
  };
  for (engine::Backend b : backends) {
    std::printf("\n--- %s ---\n", engine::BackendName(b));
    auto sql = engine.value()->TranslateToSql(b, xpath);
    if (sql.ok()) {
      std::printf("%s\n", sql.value().c_str());
    } else {
      std::printf("(%s)\n", sql.status().ToString().c_str());
      continue;
    }
    auto plan = engine.value()->ExplainPlan(b, xpath);
    if (plan.ok()) {
      std::printf("plan:\n%s", plan.value().c_str());
    } else {
      std::printf("plan: (%s)\n", plan.status().ToString().c_str());
    }
  }
  std::printf("\n--- %s ---\n(no SQL: native staircase-join evaluation)\n",
              engine::BackendName(engine::Backend::kStaircase));

  // Run the query through the serving layer twice — the second request is
  // a result-cache hit — and show what the service's metrics look like.
  service::ServiceOptions sopt;
  sopt.workers = 2;
  service::QueryService svc(*engine.value(), sopt);
  for (int i = 0; i < 2; ++i) {
    auto r = svc.Run({.xpath = xpath});
    if (!r.ok()) {
      std::printf("\nservice: (%s)\n", r.status().ToString().c_str());
      return 0;
    }
    std::printf("\nservice run %d: %zu nodes in %.2f ms%s\n", i + 1,
                r.value().nodes.size(), r.value().elapsed_ms,
                r.value().cache_hit ? " (cache hit)" : "");
  }
  std::printf("\n--- service metrics ---\n%s", svc.DumpMetrics().c_str());
  return 0;
}
