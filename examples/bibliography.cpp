// Bibliography search: generates a DBLP-like corpus and demonstrates the
// optimizations the paper highlights on it — recursive '//' steps answered
// by one regex (QD2), and backward-path predicates folded into path
// filters with no joins at all (QD4).
//
//   ./examples/bibliography [inproceedings]   (default 2000)

#include <cstdio>
#include <cstdlib>

#include "data/dblp.h"
#include "engine/engine.h"
#include "xsd/schema_graph.h"
#include "xsd/xsd_parser.h"

int main(int argc, char** argv) {
  using namespace xprel;

  data::DblpOptions opt;
  opt.inproceedings = argc > 1 ? std::atoi(argv[1]) : 2000;
  opt.articles = opt.inproceedings / 2;
  std::printf("Generating bibliography (%d inproceedings, %d articles, "
              "%d books)...\n",
              opt.inproceedings, opt.articles, opt.books);
  xml::Document doc = data::GenerateDblp(opt);

  auto schema = xsd::ParseXsd(data::DblpXsd()).value();
  auto graph = xsd::SchemaGraph::Build(schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSchema marking — note sup/sub are I-P (recursive markup):\n%s",
              graph.value().DescribeMarking().c_str());

  auto engine = engine::XPathEngine::Build(doc, graph.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      // Recursive '//' handled by a single regex over root-to-node paths.
      "/dblp/inproceedings[year>=1994]//sup",
      // A backward simple path predicate: no joins, pure path filtering
      // (paper Table 5-2 — the reason QD4 is the paper's biggest win).
      "//i[parent::*/parent::sub/ancestor::article]",
      // Value join between two absolute paths.
      "/dblp/inproceedings[author=/dblp/book/author]/title",
  };

  for (const char* q : queries) {
    auto out = engine.value()->Run(engine::Backend::kPpf, q);
    if (!out.ok()) {
      std::fprintf(stderr, "%s: %s\n", q, out.status().ToString().c_str());
      continue;
    }
    std::printf("\nXPath: %s\n  SQL:  %s\n  -> %zu nodes in %.2f ms\n", q,
                out.value().sql.c_str(), out.value().nodes.size(),
                out.value().elapsed_ms);
  }
  return 0;
}
