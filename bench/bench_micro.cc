// A3: microbenchmarks of the supporting substrates (google-benchmark):
// Dewey encoding operations, the regex engine, B+-tree access paths, and
// the key codec.

#include <benchmark/benchmark.h>

#include <random>

#include "encoding/dewey.h"
#include "rel/btree.h"
#include "rel/key_codec.h"
#include "rex/regex.h"

namespace xprel {
namespace {

using encoding::Dewey;

void BM_DeweyChild(benchmark::State& state) {
  std::string parent = Dewey::FromComponents({1, 4, 2, 9});
  uint32_t ordinal = 1;
  for (auto _ : state) {
    std::string child = Dewey::Child(parent, ordinal++ & 0xFFFF);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_DeweyChild);

void BM_DeweyIsDescendant(benchmark::State& state) {
  std::string a = Dewey::FromComponents({1, 4, 2});
  std::string d = Dewey::FromComponents({1, 4, 2, 9, 17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dewey::IsDescendant(d, a));
  }
}
BENCHMARK(BM_DeweyIsDescendant);

void BM_RegexCompilePathPattern(benchmark::State& state) {
  for (auto _ : state) {
    auto re = rex::Regex::Compile("^/site/regions/[^/]+/item/(.+/)?keyword$");
    benchmark::DoNotOptimize(re);
  }
}
BENCHMARK(BM_RegexCompilePathPattern);

void BM_RegexMatchPath(benchmark::State& state) {
  auto re = rex::Regex::Compile("^/site/(.+/)?keyword$").value();
  std::string path =
      "/site/regions/namerica/item/description/parlist/listitem/text/keyword";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.Matches(path));
  }
}
BENCHMARK(BM_RegexMatchPath);

void BM_BTreeInsert(benchmark::State& state) {
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    rel::BTree tree;
    std::vector<std::string> keys;
    keys.reserve(static_cast<size_t>(state.range(0)));
    for (int64_t i = 0; i < state.range(0); ++i) {
      keys.push_back(rel::EncodeKey({rel::Value::Int(
          static_cast<int64_t>(rng()) % 1000000)}));
    }
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.Insert(keys[i], static_cast<rel::RowId>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  rel::BTree tree;
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(rel::EncodeKey({rel::Value::Int(i)}),
                static_cast<rel::RowId>(i));
  }
  std::string lo = rel::EncodeKey({rel::Value::Int(n / 4)});
  std::string hi = rel::EncodeKey({rel::Value::Int(n / 4 + state.range(0))});
  for (auto _ : state) {
    size_t count = 0;
    for (auto it = tree.Scan(lo, hi); it.Valid(); it.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_KeyCodecEncode(benchmark::State& state) {
  std::string dewey = Dewey::FromComponents({1, 3, 200, 5, 17});
  for (auto _ : state) {
    std::string key = rel::EncodeKey(
        {rel::Value::Bytes(dewey), rel::Value::Int(42)});
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_KeyCodecEncode);

}  // namespace
}  // namespace xprel

BENCHMARK_MAIN();
