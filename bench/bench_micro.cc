// A3: microbenchmarks of the supporting substrates (google-benchmark):
// Dewey encoding operations, the regex engine, B+-tree access paths, and
// the key codec.
//
// `bench_micro --json` instead runs the XPathMark query set on the PPF
// backend and writes BENCH_micro.json (one record per query: id, backend,
// avg ms, result nodes, rows_scanned, index_probes, EXISTS-memo hits and
// misses) so successive PRs have a machine-readable perf trajectory.
// `--threads=N` runs each query with N-way intra-query morsel parallelism
// (default 1 = serial); `--scale=F` overrides the corpus scale. Both are
// recorded in every JSON record so check_regression.py can refuse to
// compare runs taken under different configurations.
// Env knobs: XPREL_REPS, XPREL_XMARK_SMALL_SCALE (see bench/harness.h).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <random>

#include "bench/harness.h"
#include "encoding/dewey.h"
#include "rel/btree.h"
#include "rel/key_codec.h"
#include "rel/query.h"
#include "rex/regex.h"
#include "service/thread_pool.h"

namespace xprel {
namespace {

using encoding::Dewey;

void BM_DeweyChild(benchmark::State& state) {
  std::string parent = Dewey::FromComponents({1, 4, 2, 9});
  uint32_t ordinal = 1;
  for (auto _ : state) {
    std::string child = Dewey::Child(parent, ordinal++ & 0xFFFF);
    benchmark::DoNotOptimize(child);
  }
}
BENCHMARK(BM_DeweyChild);

void BM_DeweyIsDescendant(benchmark::State& state) {
  std::string a = Dewey::FromComponents({1, 4, 2});
  std::string d = Dewey::FromComponents({1, 4, 2, 9, 17});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dewey::IsDescendant(d, a));
  }
}
BENCHMARK(BM_DeweyIsDescendant);

void BM_RegexCompilePathPattern(benchmark::State& state) {
  for (auto _ : state) {
    auto re = rex::Regex::Compile("^/site/regions/[^/]+/item/(.+/)?keyword$");
    benchmark::DoNotOptimize(re);
  }
}
BENCHMARK(BM_RegexCompilePathPattern);

void BM_RegexMatchPath(benchmark::State& state) {
  auto re = rex::Regex::Compile("^/site/(.+/)?keyword$").value();
  std::string path =
      "/site/regions/namerica/item/description/parlist/listitem/text/keyword";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.Matches(path));
  }
}
BENCHMARK(BM_RegexMatchPath);

void BM_BTreeInsert(benchmark::State& state) {
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    rel::BTree tree;
    std::vector<std::string> keys;
    keys.reserve(static_cast<size_t>(state.range(0)));
    for (int64_t i = 0; i < state.range(0); ++i) {
      keys.push_back(rel::EncodeKey({rel::Value::Int(
          static_cast<int64_t>(rng()) % 1000000)}));
    }
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.Insert(keys[i], static_cast<rel::RowId>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeRangeScan(benchmark::State& state) {
  rel::BTree tree;
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(rel::EncodeKey({rel::Value::Int(i)}),
                static_cast<rel::RowId>(i));
  }
  std::string lo = rel::EncodeKey({rel::Value::Int(n / 4)});
  std::string hi = rel::EncodeKey({rel::Value::Int(n / 4 + state.range(0))});
  for (auto _ : state) {
    size_t count = 0;
    for (auto it = tree.Scan(lo, hi); it.Valid(); it.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeRangeScan)->Arg(100)->Arg(10000);

void BM_KeyCodecEncode(benchmark::State& state) {
  std::string dewey = Dewey::FromComponents({1, 3, 200, 5, 17});
  for (auto _ : state) {
    std::string key = rel::EncodeKey(
        {rel::Value::Bytes(dewey), rel::Value::Int(42)});
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_KeyCodecEncode);

}  // namespace

namespace bench {
namespace {

// --json mode: per-query timing + executor counters on the PPF backend,
// written to BENCH_micro.json.
int RunJsonMode(int threads, double scale_override) {
  int reps = EnvInt("XPREL_REPS", 3);
  double scale = scale_override > 0
                     ? scale_override
                     : EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);
  if (threads < 1) threads = 1;
  auto corpus = BuildXMark("XMark small", scale);

  // threads > 1: morsels fan out over a pool via the helper lane; the
  // timing thread itself always drains morsels too (caller-runs), so a
  // pool of threads-1 helpers yields N-way execution.
  service::ThreadPool pool(threads > 1 ? threads - 1 : 1);
  rel::ExecControl control;
  if (threads > 1) {
    control.runner = &pool.intra_runner();
    control.parallelism = threads;
  }
  const rel::ExecControl* ctl = threads > 1 ? &control : nullptr;

  FILE* f = std::fopen("BENCH_micro.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_micro.json for writing\n");
    return 1;
  }
  std::fprintf(f, "[\n");
  std::printf("%-5s %8s %8s %10s %10s %8s %8s %8s %8s %8s %8s %8s %8s\n",
              "query", "nodes", "ms", "rows_scan", "idx_probes", "ex_hit",
              "ex_miss", "hj_probe", "mj_round", "bm_hit", "sj_build",
              "batches", "bsize");
  double log_ms_sum = 0;
  int timed = 0;
  size_t n = sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]);
  for (size_t i = 0; i < n; ++i) {
    const NamedQuery& q = kXMarkQueries[i];
    double total_ms = 0;
    engine::QueryOutcome last;
    bool ok = true;
    // One untimed warm-up run per query so the timed reps measure
    // steady-state execution (plan cache warm), not one-off translate+plan.
    { auto warm = corpus->engine->Run(engine::Backend::kPpf, q.xpath, ctl); }
    for (int r = 0; r < reps; ++r) {
      auto out = corpus->engine->Run(engine::Backend::kPpf, q.xpath, ctl);
      if (!out.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.id, out.status().ToString().c_str());
        ok = false;
        break;
      }
      total_ms += out.value().elapsed_ms;
      last = std::move(out).value();
    }
    if (!ok) continue;
    double ms = total_ms / reps;
    // Traced pass: same reps with per-step actuals collection attached, so
    // every record carries its own tracing-overhead ratio and
    // `check_regression.py --trace-overhead` can hold the geomean ≤ 1.05×.
    double traced_ms_total = 0;
    bool traced_ok = true;
    for (int r = 0; r < reps; ++r) {
      rel::ExecTrace etrace;
      auto out = corpus->engine->Run(engine::Backend::kPpf, q.xpath, ctl,
                                     &etrace);
      if (!out.ok()) {
        traced_ok = false;
        break;
      }
      traced_ms_total += out.value().elapsed_ms;
    }
    double ms_traced = traced_ok ? traced_ms_total / reps : ms;
    double trace_overhead = ms > 1e-6 ? ms_traced / ms : 1.0;
    log_ms_sum += std::log(ms > 1e-6 ? ms : 1e-6);
    ++timed;
    std::printf(
        "%-5s %8zu %8.2f %10zu %10zu %8zu %8zu %8zu %8zu %8zu %8zu %8zu "
        "%8u\n",
        q.id, last.nodes.size(), ms, last.stats.rows_scanned,
        last.stats.index_probes, last.stats.exists_cache_hits,
        last.stats.exists_cache_misses, last.stats.hash_join_probes,
        last.stats.merge_join_rounds, last.stats.bitmap_prefilter_hits,
        last.stats.exists_semijoin_builds, last.stats.batches_emitted,
        last.stats.batch_size);
    std::fprintf(
        f,
        "  {\"query\": \"%s\", \"backend\": \"PPF\", \"scale\": %g, "
        "\"threads\": %d, \"ms\": %.4f, "
        "\"nodes\": %zu, \"rows_scanned\": %zu, \"index_probes\": %zu, "
        "\"exists_cache_hits\": %zu, \"exists_cache_misses\": %zu, "
        "\"hash_join_probes\": %zu, \"merge_join_rounds\": %zu, "
        "\"bitmap_prefilter_hits\": %zu, \"exists_semijoin_builds\": %zu, "
        "\"batches_emitted\": %zu, \"batch_size\": %u, "
        "\"ms_traced\": %.4f, \"trace_overhead\": %.4f}%s\n",
        q.id, scale, threads, ms, last.nodes.size(), last.stats.rows_scanned,
        last.stats.index_probes, last.stats.exists_cache_hits,
        last.stats.exists_cache_misses, last.stats.hash_join_probes,
        last.stats.merge_join_rounds, last.stats.bitmap_prefilter_hits,
        last.stats.exists_semijoin_builds, last.stats.batches_emitted,
        last.stats.batch_size, ms_traced, trace_overhead,
        i + 1 < n ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  if (timed > 0) {
    std::printf("geomean ms: %.3f over %d queries (avg of %d reps, "
                "%d thread%s)\n",
                std::exp(log_ms_sum / timed), timed, reps, threads,
                threads == 1 ? "" : "s");
  }
  std::printf("wrote BENCH_micro.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xprel

int main(int argc, char** argv) {
  bool json = false;
  int threads = 1;
  double scale = 0;  // 0 = env default
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else {
      argv[kept++] = argv[i];  // leave the rest for google-benchmark
    }
  }
  argc = kept;
  if (json) return xprel::bench::RunJsonMode(threads, scale);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
