// Experiment E3 (paper Figure 4 / Appendix C, large document): five-system
// comparison on the large XMark document (~2.5x small by default; set
// XPREL_XMARK_LARGE_SCALE=1.0 for the paper's 10x analogue).

#include "bench/systems_table.h"

int main() {
  using namespace xprel::bench;
  int reps = EnvInt("XPREL_REPS", 2);
  double large = EnvDouble("XPREL_XMARK_LARGE_SCALE", 0.25);
  std::printf("E3 / Figure 4 + Appendix C (large): systems comparison "
              "(times in ms, avg of %d)\n", reps);
  auto corpus = BuildXMark("XMark large", large);
  RunSystemsTable(*corpus, kXMarkQueries,
                  sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]), reps);
  return 0;
}
