#!/usr/bin/env python3
"""Fail CI when the BENCH_micro query suite or BENCH_service regresses.

Micro mode (default): runs `bench_micro --json` (or takes an already-
produced JSON) and compares the per-query timings against the committed
baseline BENCH_micro.json. Exits non-zero if the geomean slows down by
more than --threshold (default 20%), if any query's node count diverges
from the baseline, or if the corpus scale differs from the baseline's —
a perf harness that silently changes its answers (or its input size) is
measuring nothing.

Service mode (--service): compares BENCH_service.json (from
`bench_service`) against the committed baseline. Fails when service
throughput (QPS) regresses by more than --threshold, when any request was
rejected or timed out at the default load, or when a response diverged
from the serial node sets.

Both comparison modes refuse to compare runs taken at different corpus
scales or intra-query thread counts (--scale / --threads on the bench
binaries) — mismatched configurations measure nothing.

Scaling mode (--scaling): gates the intra-query morsel-parallelism curve
recorded in BENCH_service.json. The 4-thread uncached geomean must be at
least --scaling-min (default 2.0) times faster than 1-thread, and the
1-thread geomean must not regress more than --serial-threshold (default
10%) vs the committed baseline. The speedup half is enforced only on
hosts with >= 4 cores — with fewer cores the caller-runs fallback
serializes morsels and the target is physically unreachable.

Update mode (--update): compares BENCH_update.json (from `bench_update`)
against the committed baseline. Fails when the read-only query geomean
regresses by more than --threshold, when the mixed 90/10 read-write
workload's surgical (path-id-scoped) cache hit rate fails to beat the
generation-bump fallback's on the identical operation sequence, when any
operation failed, or when the end-of-run mutate-vs-reshred oracle
diverged. Mutation latencies are reported for trend-watching.

Trace-overhead mode (--trace-overhead): gates the observability tax
recorded in BENCH_micro.json. Every record carries a per-query
`trace_overhead` ratio (avg traced ms / avg untraced ms, measured
back-to-back by `bench_micro --json`); the geomean must stay within
--trace-threshold (default 5%) of untraced execution, so per-step
EXPLAIN ANALYZE instrumentation can never quietly become a tax on
ordinary queries.

Durability mode (--durability): gates the durability economics recorded
in BENCH_update.json's "durability" section. Recovery from the newest
snapshot plus the WAL tail must beat reshredding the saved XML with a
full replay (otherwise snapshots are dead weight), the WAL's per-mutation
overhead with fsync off must stay within --durability-overhead-max
(default 15%) of the bare mutator, and the post-recovery consistency
check must have passed.

Tsan mode (--tsan): runs the executor test targets (shared cached plans
under concurrent execution) from the `tsan` preset build, so batch-local
executor state is proven re-entrant by ThreadSanitizer on every gate run.

Hardening mode (--hardening): runs the hardening_test binary from the
`fault-injection` preset build (XPREL_FAULT_INJECTION=ON + asan-ubsan with
leak detection). Fails on any test failure, on a crash, and — crucially —
when the binary reports "fault injection compiled out": a sweep that
silently skipped because the points weren't compiled in is not a pass.

Usage:
  bench/check_regression.py --bench-bin build/bench/bench_micro
  bench/check_regression.py --candidate build/bench/BENCH_micro.json
  bench/check_regression.py --service --candidate BENCH_service.json
  bench/check_regression.py --service --bench-bin build/bench/bench_service
  bench/check_regression.py --scaling --candidate BENCH_service.json
  bench/check_regression.py --update --candidate BENCH_update.json
  bench/check_regression.py --update --bench-bin build/bench/bench_update
  bench/check_regression.py --durability --candidate BENCH_update.json
  bench/check_regression.py --trace-overhead --candidate BENCH_micro.json
  bench/check_regression.py --trace-overhead --bench-bin build/bench/bench_micro
  bench/check_regression.py --hardening
  bench/check_regression.py --hardening --hardening-bin build-fault/tests/hardening_test
  bench/check_regression.py --tsan
  bench/check_regression.py --tsan --tsan-dir build-tsan
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path):
    with open(path) as f:
        return {rec["query"]: rec for rec in json.load(f)}


def load_obj(path):
    with open(path) as f:
        return json.load(f)


def geomean_ratio(baseline, candidate):
    """Geomean over shared queries of candidate_ms / baseline_ms."""
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        sys.exit("error: no queries in common between baseline and candidate")
    log_sum = 0.0
    for q in shared:
        b = max(baseline[q]["ms"], 1e-6)
        c = max(candidate[q]["ms"], 1e-6)
        log_sum += math.log(c / b)
    return math.exp(log_sum / len(shared)), shared


def run_bench(bench_bin, json_name, extra_args):
    """Runs a bench binary in a scratch dir and loads the JSON it writes,
    so the committed baseline is never clobbered."""
    with tempfile.TemporaryDirectory() as tmp:
        subprocess.run([os.path.abspath(bench_bin)] + extra_args,
                       cwd=tmp, check=True)
        return load_obj(os.path.join(tmp, json_name))


def check_micro(args):
    baseline = load(args.baseline)
    if args.candidate:
        candidate = load(args.candidate)
    else:
        records = run_bench(args.bench_bin, "BENCH_micro.json", ["--json"])
        candidate = {rec["query"]: rec for rec in records}

    shared = sorted(set(baseline) & set(candidate))

    # Timings and node counts are only comparable at the same corpus scale
    # (XPREL_XMARK_SMALL_SCALE / --scale) and the same intra-query thread
    # count (--threads). Older baselines predate the fields.
    for field, knob in (("scale", "--scale (or XPREL_XMARK_SMALL_SCALE)"),
                        ("threads", "--threads")):
        diffs = [q for q in shared
                 if field in baseline[q] and field in candidate[q]
                 and baseline[q][field] != candidate[q][field]]
        if diffs:
            q = diffs[0]
            print(f"FAIL: {field} mismatch ({candidate[q][field]} vs "
                  f"baseline {baseline[q][field]}); rerun with {knob} set "
                  f"to the baseline's value.")
            return 1

    mismatched = [q for q in shared
                  if baseline[q]["nodes"] != candidate[q]["nodes"]]
    if mismatched:
        for q in mismatched:
            print(f"FAIL {q}: node count {candidate[q]['nodes']} != "
                  f"baseline {baseline[q]['nodes']}")
        print("note: node counts scale with XPREL_XMARK_SMALL_SCALE; compare "
              "runs at the scale the baseline was generated with (default).")
        return 1

    ratio, shared = geomean_ratio(baseline, candidate)
    print(f"geomean candidate/baseline ms ratio: {ratio:.3f} "
          f"over {len(shared)} queries (>1 is slower)")
    # Vectorized-executor fields (informational; older baselines predate
    # them, so their absence on either side is never an error).
    batches = sum(candidate[q].get("batches_emitted", 0) for q in shared)
    sizes = {candidate[q]["batch_size"] for q in shared
             if "batch_size" in candidate[q]}
    if batches or sizes:
        print(f"batches emitted: {batches} total "
              f"(batch size {', '.join(str(s) for s in sorted(sizes))})")
    worst = max(shared, key=lambda q: candidate[q]["ms"] / max(baseline[q]["ms"], 1e-6))
    print(f"worst query: {worst} "
          f"({baseline[worst]['ms']:.3f} ms -> {candidate[worst]['ms']:.3f} ms)")
    if ratio > 1.0 + args.threshold:
        print(f"FAIL: geomean regressed more than {args.threshold:.0%}")
        return 1
    print("OK")
    return 0


def check_service(args):
    baseline = load_obj(args.baseline)
    if args.candidate:
        candidate = load_obj(args.candidate)
    else:
        candidate = run_bench(args.bench_bin, "BENCH_service.json", [])

    fail = False
    if baseline.get("scale") != candidate.get("scale"):
        print(f"FAIL: corpus scale mismatch ({candidate.get('scale')} vs "
              f"baseline {baseline.get('scale')}); set "
              f"XPREL_XMARK_SMALL_SCALE (or --scale) to the baseline's "
              f"scale.")
        fail = True
    # Throughput is only comparable at the same intra-query parallelism
    # setting. Absent on either side = older record, not an error.
    if ("threads" in baseline and "threads" in candidate
            and baseline["threads"] != candidate["threads"]):
        print(f"FAIL: threads mismatch ({candidate['threads']} vs baseline "
              f"{baseline['threads']}); rerun bench_service with --threads "
              f"set to the baseline's value.")
        fail = True
    # At the default closed-loop load the admission queue is far larger than
    # the client count and no deadlines are set, so any rejection or timeout
    # is a service bug, not an overload artifact. `mismatches` is the
    # correctness gate (concurrent responses vs the serial node sets) and
    # must be present — a record without it proves nothing.
    for key in ("rejected", "timed_out", "mismatches"):
        if key not in candidate:
            print(f"FAIL: {key} missing from candidate record "
                  f"(regenerate BENCH_service.json with the current "
                  f"bench_service)")
            fail = True
        elif candidate[key] != 0:
            print(f"FAIL: {key} = {candidate[key]} (must be 0 at default load)")
            fail = True
    if not candidate.get("control_paths_ok", False):
        print("FAIL: cancellation/deadline control-path check failed")
        fail = True

    for key in ("service_qps", "service_uncached_qps"):
        b, c = baseline.get(key), candidate.get(key)
        if b is None or c is None:
            continue
        ratio = c / max(b, 1e-6)
        print(f"{key}: {b:.1f} -> {c:.1f} QPS (x{ratio:.2f})")
        if ratio < 1.0 - args.threshold:
            print(f"FAIL: {key} regressed more than {args.threshold:.0%}")
            fail = True
    print(f"speedup over serial: baseline {baseline.get('speedup', 0):.2f}x, "
          f"candidate {candidate.get('speedup', 0):.2f}x")
    if fail:
        return 1
    print("OK")
    return 0


def check_scaling(args):
    """Gates the intra-query scaling curve in BENCH_service.json: the
    4-thread uncached geomean must be at least --scaling-min times faster
    than the 1-thread geomean, and the 1-thread (serial) geomean must not
    regress more than --serial-threshold vs. the committed baseline. On a
    host with fewer than 4 cores the speedup target is physically
    unreachable (the caller-runs fallback degrades every morsel to the
    submitting thread), so the ratio is reported but only the serial
    non-regression half of the gate is enforced."""
    baseline = load_obj(args.baseline)
    if args.candidate:
        candidate = load_obj(args.candidate)
    else:
        candidate = run_bench(args.bench_bin, "BENCH_service.json", [])

    scaling = candidate.get("scaling")
    if not scaling or "t1" not in scaling or "t4" not in scaling:
        print("FAIL: no scaling curve in candidate record (regenerate "
              "BENCH_service.json with the current bench_service)")
        return 1

    fail = False
    t1, t4 = scaling["t1"], scaling["t4"]
    ratio = t1 / max(t4, 1e-6)
    for key in sorted(scaling):
        print(f"scaling {key}: {scaling[key]:.3f} ms geomean "
              f"(x{t1 / max(scaling[key], 1e-6):.2f} vs t1)")
    cores = os.cpu_count() or 1
    if ratio < args.scaling_min:
        if cores < 4:
            print(f"SKIP speedup half of the gate: host has {cores} core(s); "
                  f"4-thread execution cannot beat 1-thread here "
                  f"(measured x{ratio:.2f}, want >= x{args.scaling_min:.2f} "
                  f"on a >=4-core host)")
        else:
            print(f"FAIL: 4-thread speedup x{ratio:.2f} < "
                  f"x{args.scaling_min:.2f} over 1-thread")
            fail = True
    else:
        print(f"4-thread speedup: x{ratio:.2f} (>= x{args.scaling_min:.2f})")

    base_scaling = baseline.get("scaling")
    if base_scaling and "t1" in base_scaling:
        if baseline.get("scale") != candidate.get("scale"):
            print(f"FAIL: corpus scale mismatch ({candidate.get('scale')} vs "
                  f"baseline {baseline.get('scale')}); serial comparison "
                  f"would be meaningless.")
            fail = True
        else:
            serial_ratio = t1 / max(base_scaling["t1"], 1e-6)
            print(f"serial (t1) geomean: {base_scaling['t1']:.3f} -> "
                  f"{t1:.3f} ms (x{serial_ratio:.2f})")
            if serial_ratio > 1.0 + args.serial_threshold:
                print(f"FAIL: serial geomean regressed more than "
                      f"{args.serial_threshold:.0%}")
                fail = True
    else:
        print("note: baseline has no scaling record (predates the curve); "
              "serial non-regression check skipped")
    if fail:
        return 1
    print("OK")
    return 0


def check_update(args):
    """Gates BENCH_update.json (from bench_update): correctness first
    (zero failed operations, mutate-vs-reshred oracle green), then the
    read-only geomean non-regression, then the cache-invalidation claim —
    surgical must beat generation-bump on the identical op sequence."""
    baseline = load_obj(args.baseline)
    if args.candidate:
        candidate = load_obj(args.candidate)
    else:
        candidate = run_bench(args.bench_bin, "BENCH_update.json", [])

    for field, knob in (("scale", "--scale"), ("threads", "--threads")):
        if (field in baseline and field in candidate
                and baseline[field] != candidate[field]):
            print(f"FAIL: {field} mismatch ({candidate[field]} vs baseline "
                  f"{baseline[field]}); rerun bench_update with {knob} set "
                  f"to the baseline's value.")
            return 1

    fail = False
    # A fast but wrong DML layer measures nothing: every operation must
    # have applied cleanly and the mutated engine must equal a from-scratch
    # reshred of the mutated document.
    if candidate.get("failures", 1) != 0:
        print(f"FAIL: failures = {candidate.get('failures')} (must be 0)")
        fail = True
    if not candidate.get("oracle_ok", False):
        print("FAIL: mutate-vs-reshred oracle diverged (or is missing from "
              "the record); regenerate with the current bench_update")
        fail = True

    b = baseline.get("read_only_geomean_ms")
    c = candidate.get("read_only_geomean_ms")
    if b is not None and c is not None:
        ratio = c / max(b, 1e-6)
        print(f"read-only geomean: {b:.3f} -> {c:.3f} ms (x{ratio:.2f})")
        if ratio > 1.0 + args.threshold:
            print(f"FAIL: read-only geomean regressed more than "
                  f"{args.threshold:.0%}")
            fail = True

    mixed = candidate.get("mixed", {})
    surgical = mixed.get("surgical_hit_rate")
    genbump = mixed.get("generation_hit_rate")
    if surgical is None or genbump is None:
        print("FAIL: mixed hit rates missing from candidate record "
              "(regenerate BENCH_update.json with the current bench_update)")
        fail = True
    else:
        print(f"mixed 90/10 hit rate: surgical {surgical:.1%} vs "
              f"generation-bump {genbump:.1%}")
        if surgical <= genbump:
            print("FAIL: path-id-scoped invalidation must beat the "
                  "generation-bump hit rate on the same op sequence")
            fail = True

    for key in ("insert_mean_ms", "update_mean_ms", "delete_mean_ms"):
        if key in baseline and key in candidate:
            print(f"{key}: {baseline[key]:.3f} -> {candidate[key]:.3f} ms")
    if fail:
        return 1
    print("OK")
    return 0


def check_durability(args):
    """Gates BENCH_update.json's "durability" section: recovery from
    snapshot + WAL tail must beat reshred-from-XML + full replay, the
    WAL's mutation-latency overhead (fsync off) must stay within
    --durability-overhead-max, and the recovered engine's consistency
    check must have passed."""
    if args.candidate:
        candidate = load_obj(args.candidate)
    else:
        candidate = run_bench(args.bench_bin, "BENCH_update.json", [])
    dur = candidate.get("durability")
    if not dur:
        print("FAIL: no \"durability\" section in the record; regenerate "
              "BENCH_update.json with the current bench_update")
        return 1

    fail = False
    if not dur.get("recovered_ok", False):
        print("FAIL: recovered engine failed the consistency check "
              "(recovered_ok)")
        fail = True

    recover = dur.get("recover_ms")
    reshred = dur.get("reshred_ms")
    if recover is None or reshred is None:
        print("FAIL: recover_ms / reshred_ms missing from the record")
        fail = True
    else:
        print(f"recovery: snapshot+tail {recover:.1f} ms vs "
              f"reshred+replay {reshred:.1f} ms")
        if recover >= reshred:
            print("FAIL: snapshot recovery must beat reshred-from-XML — "
                  "otherwise checkpoints are pure overhead")
            fail = True

    overhead = dur.get("durable_overhead_pct")
    if overhead is None:
        print("FAIL: durable_overhead_pct missing from the record")
        fail = True
    else:
        print(f"durable mutation overhead (fsync off): {overhead:+.1f}% "
              f"(plain {dur.get('plain_mutation_mean_ms', 0):.3f} ms -> "
              f"wal {dur.get('durable_mutation_mean_ms', 0):.3f} ms)")
        if overhead > args.durability_overhead_max:
            print(f"FAIL: WAL overhead exceeds "
                  f"{args.durability_overhead_max:.0f}%")
            fail = True

    for key in ("durable_fsync_mean_ms", "checkpoint_ms", "snapshot_bytes",
                "wal_bytes"):
        if key in dur:
            print(f"{key}: {dur[key]}")
    if fail:
        return 1
    print("OK")
    return 0


def check_trace_overhead(args):
    """Gates the tracing overhead in BENCH_micro.json: the geomean of
    per-query ms_traced / ms (traced pass vs untraced pass of the same
    bench run) must stay within --trace-threshold of 1.0. No baseline is
    involved — both passes come from one binary on one host, so the ratio
    is self-normalizing."""
    if args.candidate:
        candidate = load(args.candidate)
    else:
        records = run_bench(args.bench_bin, "BENCH_micro.json", ["--json"])
        candidate = {rec["query"]: rec for rec in records}

    queries = sorted(q for q in candidate if "trace_overhead" in candidate[q])
    if not queries:
        print("FAIL: no trace_overhead fields in candidate record "
              "(regenerate BENCH_micro.json with the current bench_micro)")
        return 1
    log_sum = sum(math.log(max(candidate[q]["trace_overhead"], 1e-6))
                  for q in queries)
    geo = math.exp(log_sum / len(queries))
    worst = max(queries, key=lambda q: candidate[q]["trace_overhead"])
    print(f"traced/untraced geomean: x{geo:.3f} over {len(queries)} queries "
          f"(>1 means tracing costs time)")
    print(f"worst query: {worst} "
          f"(x{candidate[worst]['trace_overhead']:.3f}, "
          f"{candidate[worst]['ms']:.3f} -> "
          f"{candidate[worst].get('ms_traced', 0):.3f} ms)")
    if geo > 1.0 + args.trace_threshold:
        print(f"FAIL: tracing overhead geomean exceeds "
              f"{args.trace_threshold:.0%}")
        return 1
    print("OK")
    return 0


# The executor test targets that exercise shared cached plans from
# concurrent executions — the surface where batch-local state could race.
# dml_test adds the writer-excludes-readers discipline: concurrent Run()
# against a mutating DocumentMutator on the engine's shared_mutex.
# observability_test races the trace ring, the TraceContext span tree, and
# per-morsel StepStats accumulation at parallelism=4. durability_test
# races the background checkpointer (WAL mutex + engine reader lock)
# against durable mutations and concurrent readers.
TSAN_TEST_BINS = ("rel_exec_test", "join_engine_test",
                  "random_property_test", "service_test", "dml_test",
                  "observability_test", "durability_test")


def check_tsan(args):
    """Runs the executor test targets from the tsan preset build. Shared
    compiled plans must stay re-entrant now that execution keeps
    batch-local state (selection vectors, dictionary memos, merge
    accumulators); ThreadSanitizer proves it on the real concurrency
    tests rather than by inspection."""
    tsan_dir = args.tsan_dir
    missing = [b for b in TSAN_TEST_BINS
               if not os.path.exists(os.path.join(tsan_dir, "tests", b))]
    if missing:
        print(f"FAIL: {', '.join(missing)} not found under {tsan_dir}; "
              f"build the `tsan` preset first "
              f"(cmake --preset tsan && cmake --build {tsan_dir} -j)")
        return 1
    env = dict(os.environ)
    env.setdefault("TSAN_OPTIONS", "halt_on_error=1")
    for b in TSAN_TEST_BINS:
        path = os.path.join(tsan_dir, "tests", b)
        print(f"-- {b} (tsan)")
        proc = subprocess.run([os.path.abspath(path)], capture_output=True,
                              text=True, env=env)
        if proc.returncode != 0:
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            print(f"FAIL: {b} exited {proc.returncode} under tsan")
            return 1
    print(f"OK: {len(TSAN_TEST_BINS)} executor test targets clean under tsan")
    return 0


def check_hardening(args):
    if not os.path.exists(args.hardening_bin):
        print(f"FAIL: {args.hardening_bin} not found; build the "
              f"`fault-injection` preset first "
              f"(cmake --preset fault-injection && "
              f"cmake --build build-fault -j)")
        return 1
    # The DML fault points (dml.*) are swept by the fault-gated cases in
    # the dml tests: every point must roll the mutation back to a state
    # indistinguishable from a from-scratch reshred, leak-free under asan.
    # durability_test adds the crash sweep: every wal./snap. point plus
    # byte-granular torn tails must recover to the same oracle.
    bins = [args.hardening_bin]
    tests_dir = os.path.dirname(args.hardening_bin)
    for extra in ("dml_test", "dml_oracle_test", "durability_test"):
        path = os.path.join(tests_dir, extra)
        if not os.path.exists(path):
            print(f"FAIL: {path} not found; rebuild the `fault-injection` "
                  f"preset (cmake --preset fault-injection && "
                  f"cmake --build build-fault -j)")
            return 1
        bins.append(path)
    env = dict(os.environ)
    # Leaks on error paths are the whole point of this gate.
    env.setdefault("ASAN_OPTIONS", "detect_leaks=1")
    env.setdefault("UBSAN_OPTIONS", "print_stacktrace=1:halt_on_error=1")
    for b in bins:
        name = os.path.basename(b)
        print(f"-- {name} (fault-injection preset)")
        proc = subprocess.run([os.path.abspath(b)],
                              capture_output=True, text=True, env=env)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            print(f"FAIL: {name} exited {proc.returncode}")
            return 1
        if "fault injection compiled out" in proc.stdout + proc.stderr:
            print(f"FAIL: {name} fault sweep skipped — the binary was built "
                  f"without XPREL_FAULT_INJECTION; use the `fault-injection` "
                  f"preset")
            return 1
    print("OK: hardening gate passed (fault sweeps ran, no leaks, no crashes)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--service", action="store_true",
                    help="gate BENCH_service.json instead of BENCH_micro.json")
    ap.add_argument("--scaling", action="store_true",
                    help="gate the intra-query scaling curve in "
                         "BENCH_service.json (4-thread vs 1-thread geomean)")
    ap.add_argument("--durability", action="store_true",
                    help="gate BENCH_update.json's durability section: "
                         "snapshot recovery beats reshred, WAL overhead "
                         "within --durability-overhead-max")
    ap.add_argument("--durability-overhead-max", type=float, default=15.0,
                    help="max durable-mutation overhead vs the bare mutator "
                         "in percent, fsync off (default 15)")
    ap.add_argument("--update", action="store_true",
                    help="gate BENCH_update.json (DML latency, read-only "
                         "non-regression, surgical vs generation-bump "
                         "cache hit rate)")
    ap.add_argument("--scaling-min", type=float, default=2.0,
                    help="required 4-thread speedup over 1-thread "
                         "(default 2.0; enforced on hosts with >= 4 cores)")
    ap.add_argument("--serial-threshold", type=float, default=0.10,
                    help="allowed fractional regression of the 1-thread "
                         "scaling geomean vs the baseline (default 0.10)")
    ap.add_argument("--trace-overhead", action="store_true",
                    dest="trace_overhead",
                    help="gate the traced/untraced geomean ratio recorded "
                         "in BENCH_micro.json")
    ap.add_argument("--trace-threshold", type=float, default=0.05,
                    help="allowed fractional tracing overhead for "
                         "--trace-overhead (default 0.05)")
    ap.add_argument("--hardening", action="store_true",
                    help="run the fault-injection hardening gate instead of "
                         "a bench comparison")
    ap.add_argument("--tsan", action="store_true",
                    help="run the executor test targets from the tsan preset "
                         "build instead of a bench comparison")
    ap.add_argument("--tsan-dir",
                    default=os.path.join(REPO_ROOT, "build-tsan"),
                    help="tsan preset build directory "
                         "(default: build-tsan)")
    ap.add_argument("--hardening-bin",
                    default=os.path.join(REPO_ROOT, "build-fault", "tests",
                                         "hardening_test"),
                    help="hardening_test binary from the fault-injection "
                         "preset (default: build-fault/tests/hardening_test)")
    ap.add_argument("--baseline",
                    help="committed baseline JSON (default: repo root "
                         "BENCH_micro.json or BENCH_service.json)")
    ap.add_argument("--candidate",
                    help="candidate JSON; omit to run --bench-bin instead")
    ap.add_argument("--bench-bin",
                    help="bench binary used when --candidate is absent "
                         "(default: build/bench/bench_micro or bench_service)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20): "
                         "geomean slowdown (micro) or QPS drop (service)")
    args = ap.parse_args()

    if args.hardening:
        return check_hardening(args)
    if args.tsan:
        return check_tsan(args)

    if args.update or args.durability:
        name, binname = "BENCH_update.json", "bench_update"
    elif args.service or args.scaling:
        name, binname = "BENCH_service.json", "bench_service"
    else:
        name, binname = "BENCH_micro.json", "bench_micro"
    if args.baseline is None:
        args.baseline = os.path.join(REPO_ROOT, name)
    if args.bench_bin is None:
        args.bench_bin = os.path.join(REPO_ROOT, "build", "bench", binname)

    if args.durability:
        return check_durability(args)
    if args.update:
        return check_update(args)
    if args.scaling:
        return check_scaling(args)
    if args.trace_overhead:
        return check_trace_overhead(args)
    return check_service(args) if args.service else check_micro(args)


if __name__ == "__main__":
    sys.exit(main())
