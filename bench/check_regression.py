#!/usr/bin/env python3
"""Fail CI when the BENCH_micro query suite regresses.

Runs `bench_micro --json` (or takes an already-produced JSON) and compares
the per-query timings against the committed baseline BENCH_micro.json.
Exits non-zero if the geomean slows down by more than --threshold
(default 20%), or if any query's node count diverges from the baseline —
a perf harness that silently changes its answers is measuring nothing.

Usage:
  bench/check_regression.py --bench-bin build/bench/bench_micro
  bench/check_regression.py --candidate build/bench/BENCH_micro.json
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path):
    with open(path) as f:
        return {rec["query"]: rec for rec in json.load(f)}


def geomean_ratio(baseline, candidate):
    """Geomean over shared queries of candidate_ms / baseline_ms."""
    shared = sorted(set(baseline) & set(candidate))
    if not shared:
        sys.exit("error: no queries in common between baseline and candidate")
    log_sum = 0.0
    for q in shared:
        b = max(baseline[q]["ms"], 1e-6)
        c = max(candidate[q]["ms"], 1e-6)
        log_sum += math.log(c / b)
    return math.exp(log_sum / len(shared)), shared


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline",
                    default=os.path.join(REPO_ROOT, "BENCH_micro.json"),
                    help="committed baseline JSON (default: repo root)")
    ap.add_argument("--candidate",
                    help="candidate JSON; omit to run --bench-bin instead")
    ap.add_argument("--bench-bin",
                    default=os.path.join(REPO_ROOT, "build", "bench",
                                         "bench_micro"),
                    help="bench_micro binary used when --candidate is absent")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional geomean slowdown (default 0.20)")
    args = ap.parse_args()

    baseline = load(args.baseline)

    if args.candidate:
        candidate = load(args.candidate)
    else:
        # bench_micro writes BENCH_micro.json into its cwd; run it in a
        # scratch dir so the committed baseline is never clobbered.
        with tempfile.TemporaryDirectory() as tmp:
            subprocess.run([os.path.abspath(args.bench_bin), "--json"],
                           cwd=tmp, check=True)
            candidate = load(os.path.join(tmp, "BENCH_micro.json"))

    mismatched = [q for q in sorted(set(baseline) & set(candidate))
                  if baseline[q]["nodes"] != candidate[q]["nodes"]]
    if mismatched:
        for q in mismatched:
            print(f"FAIL {q}: node count {candidate[q]['nodes']} != "
                  f"baseline {baseline[q]['nodes']}")
        print("note: node counts scale with XPREL_XMARK_SMALL_SCALE; compare "
              "runs at the scale the baseline was generated with (default).")
        return 1

    ratio, shared = geomean_ratio(baseline, candidate)
    print(f"geomean candidate/baseline ms ratio: {ratio:.3f} "
          f"over {len(shared)} queries (>1 is slower)")
    worst = max(shared, key=lambda q: candidate[q]["ms"] / max(baseline[q]["ms"], 1e-6))
    print(f"worst query: {worst} "
          f"({baseline[worst]['ms']:.3f} ms -> {candidate[worst]['ms']:.3f} ms)")
    if ratio > 1.0 + args.threshold:
        print(f"FAIL: geomean regressed more than {args.threshold:.0%}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
