#ifndef XPREL_BENCH_HARNESS_H_
#define XPREL_BENCH_HARNESS_H_

// Shared scaffolding for the paper-table benchmark binaries (bench_fig3,
// bench_fig4_*, bench_dblp, bench_ablation). Each binary prints the same
// rows as the corresponding paper table/figure: query id, result node
// count, and per-system times in milliseconds.
//
// Environment knobs:
//   XPREL_XMARK_SMALL_SCALE  (default 0.1  — the paper's 12 MB analogue)
//   XPREL_XMARK_LARGE_SCALE  (default 0.25 — wall-clock-conservative "large";
//                             set 1.0 for the paper's 113 MB analogue)
//   XPREL_DBLP_RECORDS       (default 20000 inproceedings)
//   XPREL_REPS               (default 3 — timing repetitions, averaged)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "data/dblp.h"
#include "data/xmark.h"
#include "engine/engine.h"
#include "xsd/xsd_parser.h"

namespace xprel::bench {

struct NamedQuery {
  const char* id;
  const char* xpath;
};

// The paper's XPathMark subset (Appendix B) + Q-A; same list as the tests.
inline constexpr NamedQuery kXMarkQueries[] = {
    {"Q1", "/site/regions/*/item"},
    {"Q2",
     "/site/closed_auctions/closed_auction/annotation/description/parlist/"
     "listitem/text/keyword"},
    {"Q3", "//keyword"},
    {"Q4", "/descendant-or-self::listitem/descendant-or-self::keyword"},
    {"Q5", "/site/regions/*/item[parent::namerica or parent::samerica]"},
    {"Q6", "//keyword/ancestor::listitem"},
    {"Q7", "//keyword/ancestor-or-self::mail"},
    {"Q9",
     "/site/open_auctions/open_auction[@id='open_auction0']/bidder/"
     "preceding-sibling::bidder"},
    {"Q10", "/site/regions/*/item[@id='item0']/following::item"},
    {"Q11",
     "/site/open_auctions/open_auction/bidder[personref/@person='person1']"
     "/preceding::bidder[personref/@person='person0']"},
    {"Q12", "//item[@featured='yes']"},
    {"Q13", "//*[@id]"},
    {"Q21",
     "/site/regions/*/item[@id='item0']/description//keyword/text()"},
    {"Q22", "/site/regions/namerica/item | /site/regions/samerica/item"},
    {"Q23", "/site/people/person[address and (phone or homepage)]"},
    {"Q24", "/site/people/person[not(homepage)]"},
    {"QA",
     "/site/open_auctions/open_auction[bidder/date = interval/start]"},
};

inline constexpr NamedQuery kDblpQueries[] = {
    {"QD1",
     "//inproceedings/title[preceding-sibling::author = "
     "'Harold G. Longbotham']"},
    {"QD2", "/dblp/inproceedings[year>=1994]//sup"},
    {"QD3", "/dblp/inproceedings/title/sup"},
    {"QD4", "//i[parent::*/parent::sub/ancestor::article]"},
    {"QD5", "/dblp/inproceedings[author=/dblp/book/author]/title"},
};

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct Corpus {
  std::string label;
  xml::Document doc;
  xsd::Schema schema;
  std::unique_ptr<xsd::SchemaGraph> graph;
  std::unique_ptr<engine::XPathEngine> engine;
};

inline std::unique_ptr<Corpus> BuildCorpus(std::string label,
                                           xml::Document doc, const char* xsd,
                                           engine::EngineOptions options = {}) {
  auto c = std::make_unique<Corpus>();
  c->label = std::move(label);
  c->doc = std::move(doc);
  auto schema = xsd::ParseXsd(xsd);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    std::exit(1);
  }
  c->schema = std::move(schema).value();
  auto graph = xsd::SchemaGraph::Build(c->schema);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    std::exit(1);
  }
  c->graph = std::make_unique<xsd::SchemaGraph>(std::move(graph).value());
  auto eng = engine::XPathEngine::Build(c->doc, *c->graph, options);
  if (!eng.ok()) {
    std::fprintf(stderr, "engine: %s\n", eng.status().ToString().c_str());
    std::exit(1);
  }
  c->engine = std::move(eng).value();
  return c;
}

inline std::unique_ptr<Corpus> BuildXMark(const char* label, double scale,
                                          engine::EngineOptions options = {}) {
  data::XMarkOptions opt;
  opt.scale = scale;
  std::fprintf(stderr, "[build] XMark %s (scale %.3g)...\n", label, scale);
  return BuildCorpus(label, data::GenerateXMark(opt), data::XMarkXsd(),
                     options);
}

inline std::unique_ptr<Corpus> BuildDblp(const char* label, int inproceedings,
                                         engine::EngineOptions options = {}) {
  data::DblpOptions opt;
  opt.inproceedings = inproceedings;
  opt.articles = inproceedings / 2;
  opt.books = std::max(20, inproceedings / 160);
  std::fprintf(stderr, "[build] DBLP %s (%d inproceedings)...\n", label,
               inproceedings);
  return BuildCorpus(label, data::GenerateDblp(opt), data::DblpXsd(), options);
}

struct Timing {
  bool supported = false;
  double ms = 0;
  size_t nodes = 0;
  std::string error;
};

// Runs the query `reps` times and averages the wall-clock time.
inline Timing TimeQuery(const engine::XPathEngine& eng,
                        engine::Backend backend, const char* xpath, int reps) {
  Timing t;
  double total = 0;
  for (int i = 0; i < reps; ++i) {
    auto r = eng.Run(backend, xpath);
    if (!r.ok()) {
      t.error = r.status().ToString();
      return t;
    }
    total += r.value().elapsed_ms;
    t.nodes = r.value().nodes.size();
  }
  t.supported = true;
  t.ms = total / reps;
  return t;
}

inline void PrintCell(const Timing& t) {
  if (t.supported) {
    std::printf(" %9.2f", t.ms);
  } else {
    std::printf(" %9s", "N/A");
  }
}

}  // namespace xprel::bench

#endif  // XPREL_BENCH_HARNESS_H_
