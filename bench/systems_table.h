#ifndef XPREL_BENCH_SYSTEMS_TABLE_H_
#define XPREL_BENCH_SYSTEMS_TABLE_H_

// Shared printer for the Appendix C style five-system comparison tables
// (experiments E2-E4): per query, the result cardinality and average times
// for PPF, Edge-like PPF, staircase ("MonetDB-like"), the conventional
// per-step translation ("commercial"), and the XPath Accelerator.

#include "bench/harness.h"

namespace xprel::bench {

inline void RunSystemsTable(const Corpus& corpus, const NamedQuery* queries,
                            size_t count, int reps) {
  std::printf("\n== %s ==\n", corpus.label.c_str());
  std::printf("%-5s %9s %9s %9s %9s %9s %9s\n", "query", "nodes", "PPF",
              "EdgePPF", "MonetDB*", "Commerc*", "XPAccel");
  for (size_t i = 0; i < count; ++i) {
    Timing ppf = TimeQuery(*corpus.engine, engine::Backend::kPpf,
                           queries[i].xpath, reps);
    Timing edge = TimeQuery(*corpus.engine, engine::Backend::kEdgePpf,
                            queries[i].xpath, reps);
    Timing stair = TimeQuery(*corpus.engine, engine::Backend::kStaircase,
                             queries[i].xpath, reps);
    Timing naive = TimeQuery(*corpus.engine, engine::Backend::kNaive,
                             queries[i].xpath, reps);
    Timing accel = TimeQuery(*corpus.engine, engine::Backend::kAccelerator,
                             queries[i].xpath, reps);
    std::printf("%-5s %9zu", queries[i].id, ppf.nodes);
    PrintCell(ppf);
    PrintCell(edge);
    PrintCell(stair);
    PrintCell(naive);
    PrintCell(accel);
    std::printf("\n");
  }
  std::printf("(MonetDB* = staircase-join stand-in; Commerc* = conventional "
              "per-step translation stand-in; N/A = unsupported)\n");
}

}  // namespace xprel::bench

#endif  // XPREL_BENCH_SYSTEMS_TABLE_H_
