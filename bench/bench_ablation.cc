// Ablations A1 and A2 (DESIGN.md): the design choices the paper calls out.
//
//   A1 (Section 4.5): omit redundant root-to-node path filters via the
//      U-P / F-P / I-P schema marking, vs always joining Paths.
//   A2 (Section 4.2): FK equijoins for single-step child/parent PPFs, vs
//      Dewey theta-joins with LENGTH level checks.

#include "bench/harness.h"

namespace xprel::bench {
namespace {

// Queries dominated by the choice under test.
constexpr NamedQuery kA1Queries[] = {
    {"Q1", "/site/regions/*/item"},
    {"Q2",
     "/site/closed_auctions/closed_auction/annotation/description/parlist/"
     "listitem/text/keyword"},
    {"Q5", "/site/regions/*/item[parent::namerica or parent::samerica]"},
    {"Q22", "/site/regions/namerica/item | /site/regions/samerica/item"},
    {"Q23", "/site/people/person[address and (phone or homepage)]"},
};

constexpr NamedQuery kA2Queries[] = {
    {"Q1", "/site/regions/*/item"},
    {"Q9",
     "/site/open_auctions/open_auction[@id='open_auction0']/bidder/"
     "preceding-sibling::bidder"},
    {"Q23", "/site/people/person[address and (phone or homepage)]"},
    {"QA",
     "/site/open_auctions/open_auction[bidder/date = interval/start]"},
};

int Main() {
  int reps = EnvInt("XPREL_REPS", 3);
  double scale = EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);

  engine::EngineOptions base;
  base.enable_accel = false;
  base.enable_edge = false;

  engine::EngineOptions no_omit = base;
  no_omit.ppf_options.omit_redundant_path_filters = false;

  engine::EngineOptions no_fk = base;
  no_fk.ppf_options.fk_joins_for_child_parent = false;

  std::printf("Ablations (times in ms, avg of %d)\n", reps);

  auto on = BuildXMark("defaults", scale, base);
  auto a1 = BuildXMark("A1: always join Paths", scale, no_omit);
  auto a2 = BuildXMark("A2: Dewey joins for child/parent", scale, no_fk);

  std::printf("\n== A1: redundant path-filter omission (Section 4.5) ==\n");
  std::printf("%-5s %9s %9s %9s\n", "query", "nodes", "omit=on", "omit=off");
  for (const NamedQuery& q : kA1Queries) {
    Timing with = TimeQuery(*on->engine, engine::Backend::kPpf, q.xpath, reps);
    Timing without =
        TimeQuery(*a1->engine, engine::Backend::kPpf, q.xpath, reps);
    std::printf("%-5s %9zu", q.id, with.nodes);
    PrintCell(with);
    PrintCell(without);
    std::printf("\n");
  }

  std::printf("\n== A2: FK vs Dewey joins for child/parent (Section 4.2) ==\n");
  std::printf("%-5s %9s %9s %9s\n", "query", "nodes", "fk", "dewey");
  for (const NamedQuery& q : kA2Queries) {
    Timing fk = TimeQuery(*on->engine, engine::Backend::kPpf, q.xpath, reps);
    Timing dw = TimeQuery(*a2->engine, engine::Backend::kPpf, q.xpath, reps);
    std::printf("%-5s %9zu", q.id, fk.nodes);
    PrintCell(fk);
    PrintCell(dw);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace xprel::bench

int main() { return xprel::bench::Main(); }
