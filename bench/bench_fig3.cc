// Experiment E1 (paper Figure 3): schema-aware vs schema-oblivious
// PPF-based processing, on XMark (small + large) and DBLP.
//
// Reproduces the figure's two series as a table: per query, the result
// cardinality and the average execution time of
//   * PPF            — schema-aware PPF translation on the schema-aware store,
//   * Edge-like PPF  — the same PPF machinery on the Edge mapping.

#include "bench/harness.h"

namespace xprel::bench {
namespace {

void RunSet(const Corpus& corpus, const NamedQuery* queries, size_t count,
            int reps) {
  std::printf("\n== %s ==\n", corpus.label.c_str());
  std::printf("%-5s %9s %9s %9s %7s\n", "query", "nodes", "PPF",
              "EdgePPF", "ratio");
  for (size_t i = 0; i < count; ++i) {
    Timing ppf =
        TimeQuery(*corpus.engine, engine::Backend::kPpf, queries[i].xpath,
                  reps);
    Timing edge = TimeQuery(*corpus.engine, engine::Backend::kEdgePpf,
                            queries[i].xpath, reps);
    std::printf("%-5s %9zu", queries[i].id, ppf.nodes);
    PrintCell(ppf);
    PrintCell(edge);
    if (ppf.supported && edge.supported && ppf.ms > 0) {
      std::printf(" %6.1fx", edge.ms / ppf.ms);
    }
    std::printf("\n");
  }
}

int Main() {
  int reps = EnvInt("XPREL_REPS", 3);
  double small = EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);
  double large = EnvDouble("XPREL_XMARK_LARGE_SCALE", 0.25);
  int dblp_records = EnvInt("XPREL_DBLP_RECORDS", 20000);

  std::printf("E1 / Figure 3: schema-aware vs schema-oblivious PPF "
              "(times in ms, avg of %d)\n", reps);

  engine::EngineOptions opts;
  opts.enable_accel = false;  // only the two PPF stores are needed

  {
    auto corpus = BuildXMark("XMark small", small, opts);
    RunSet(*corpus, kXMarkQueries,
           sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]), reps);
  }
  {
    auto corpus = BuildXMark("XMark large", large, opts);
    RunSet(*corpus, kXMarkQueries,
           sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]), reps);
  }
  {
    auto corpus = BuildDblp("DBLP", dblp_records, opts);
    RunSet(*corpus, kDblpQueries,
           sizeof(kDblpQueries) / sizeof(kDblpQueries[0]), reps);
  }
  return 0;
}

}  // namespace
}  // namespace xprel::bench

int main() { return xprel::bench::Main(); }
