// Experiment E4 (paper Appendix C, DBLP table): five-system comparison on
// the DBLP-like bibliography.

#include "bench/systems_table.h"

int main() {
  using namespace xprel::bench;
  int reps = EnvInt("XPREL_REPS", 3);
  int records = EnvInt("XPREL_DBLP_RECORDS", 20000);
  std::printf("E4 / Appendix C (DBLP): systems comparison "
              "(times in ms, avg of %d)\n", reps);
  auto corpus = BuildDblp("DBLP", records);
  RunSystemsTable(*corpus, kDblpQueries,
                  sizeof(kDblpQueries) / sizeof(kDblpQueries[0]), reps);
  return 0;
}
