// Closed-loop throughput benchmark for the concurrent query service
// (src/service): N client threads replay the XPathMark mix against a
// QueryService on one shared XPathEngine and the result is compared with
// a single-threaded engine->Run baseline, query for query, node for node.
//
// Writes BENCH_service.json with serial QPS, service QPS (cached and
// cache-bypassing), the speedup ratio, and the admission/deadline counters
// so bench/check_regression.py --service can gate the numbers. Also smoke-
// checks the control paths: a cancelled and a deadline-expired request must
// come back as error statuses without wedging a pool slot.
//
// Knobs: XPREL_XMARK_SMALL_SCALE (corpus; must match the baseline's),
// XPREL_REPS (serial passes over the mix), XPREL_SERVICE_CLIENTS,
// XPREL_SERVICE_REPS (mix replays per client).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "service/query_service.h"

namespace xprel::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr size_t kNumQueries = sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]);

// One pass over the mix on the bare engine; returns queries executed.
size_t SerialPass(const engine::XPathEngine& eng,
                  std::vector<std::vector<xml::NodeId>>* expected) {
  for (size_t i = 0; i < kNumQueries; ++i) {
    auto r = eng.Run(engine::Backend::kPpf, kXMarkQueries[i].xpath);
    if (!r.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", kXMarkQueries[i].id,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    if (expected != nullptr) (*expected)[i] = std::move(r.value().nodes);
  }
  return kNumQueries;
}

// Replays the mix `reps` times from `clients` threads; every response is
// checked for node-set identity against `expected`. Returns QPS.
double ServicePass(service::QueryService& svc,
                   const std::vector<std::vector<xml::NodeId>>& expected,
                   int clients, int reps, bool bypass_cache,
                   std::atomic<size_t>& mismatches) {
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < reps; ++r) {
        // Stagger the starting query per client so distinct queries are in
        // flight together instead of every thread marching in lockstep.
        for (size_t k = 0; k < kNumQueries; ++k) {
          size_t i = (k + static_cast<size_t>(c)) % kNumQueries;
          service::QueryRequest req;
          req.xpath = kXMarkQueries[i].xpath;
          req.bypass_cache = bypass_cache;
          auto resp = svc.Run(std::move(req));
          if (!resp.ok()) {
            std::fprintf(stderr, "service %s: %s\n", kXMarkQueries[i].id,
                         resp.status().ToString().c_str());
            mismatches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (resp.value().nodes != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = SecondsSince(start);
  return static_cast<double>(clients) * reps * kNumQueries / secs;
}

// A cancelled and a deadline-expired request must surface as error
// statuses, and the pool must still serve afterwards. Uses its own
// service so the throughput metrics above stay clean.
bool CheckControlPaths(const engine::XPathEngine& eng) {
  service::ServiceOptions opt;
  opt.workers = 2;
  opt.check_interval = 64;
  service::QueryService svc(eng, opt);

  service::QueryRequest cancelled;
  cancelled.xpath = "//keyword";
  cancelled.bypass_cache = true;
  cancelled.cancel = std::make_shared<service::CancelToken>();
  cancelled.cancel->Cancel();
  auto rc = svc.Run(std::move(cancelled));
  if (rc.ok() || rc.status().code() != StatusCode::kCancelled) {
    std::fprintf(stderr, "control: pre-cancelled request not kCancelled\n");
    return false;
  }

  // Park both workers so a 1 ms deadline expires while the request queues.
  std::atomic<bool> release{false};
  for (int i = 0; i < opt.workers; ++i) {
    svc.pool().TrySubmit([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  service::QueryRequest late;
  late.xpath = "//keyword";
  late.bypass_cache = true;
  late.deadline = std::chrono::milliseconds(1);
  auto fut = svc.Submit(std::move(late));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  auto rd = fut.get();
  if (rd.ok() || rd.status().code() != StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr, "control: queued 1ms-deadline request not "
                 "kDeadlineExceeded\n");
    return false;
  }

  service::QueryRequest after;
  after.xpath = "//keyword";
  after.bypass_cache = true;
  auto ra = svc.Run(std::move(after));
  if (!ra.ok()) {
    std::fprintf(stderr, "control: pool did not recover: %s\n",
                 ra.status().ToString().c_str());
    return false;
  }
  return true;
}

int RunBench() {
  int reps = EnvInt("XPREL_REPS", 3);
  int clients = EnvInt("XPREL_SERVICE_CLIENTS", 8);
  int client_reps = EnvInt("XPREL_SERVICE_REPS", 4);
  double scale = EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);
  auto corpus = BuildXMark("XMark small", scale);
  const engine::XPathEngine& eng = *corpus->engine;

  // Warm-up pass populates the plan cache and the expected node sets.
  std::vector<std::vector<xml::NodeId>> expected(kNumQueries);
  SerialPass(eng, &expected);

  auto serial_start = Clock::now();
  size_t serial_n = 0;
  for (int r = 0; r < reps; ++r) serial_n += SerialPass(eng, nullptr);
  double serial_qps = static_cast<double>(serial_n) / SecondsSince(serial_start);

  service::ServiceOptions opt;
  opt.workers = 8;
  opt.queue_capacity = 256;
  std::atomic<size_t> mismatches{0};

  service::QueryService svc(eng, opt);
  double service_qps =
      ServicePass(svc, expected, clients, client_reps, false, mismatches);
  const service::MetricsRegistry& m = svc.metrics();
  uint64_t rejected = m.rejected.load(std::memory_order_relaxed);
  uint64_t timed_out = m.timed_out.load(std::memory_order_relaxed);
  double hit_rate = m.CacheHitRate();

  service::QueryService uncached(eng, opt);
  double uncached_qps =
      ServicePass(uncached, expected, clients, client_reps, true, mismatches);
  rejected += uncached.metrics().rejected.load(std::memory_order_relaxed);
  timed_out += uncached.metrics().timed_out.load(std::memory_order_relaxed);

  bool control_ok = CheckControlPaths(eng);
  size_t bad = mismatches.load();

  double speedup = service_qps / serial_qps;
  std::printf("serial:            %8.1f QPS (%d passes)\n", serial_qps, reps);
  std::printf("service (cached):  %8.1f QPS  -> %.2fx serial\n", service_qps,
              speedup);
  std::printf("service (bypass):  %8.1f QPS  -> %.2fx serial\n", uncached_qps,
              uncached_qps / serial_qps);
  std::printf("clients=%d workers=%d cache_hit_rate=%.1f%% rejected=%llu "
              "timed_out=%llu mismatches=%zu control_ok=%d\n",
              clients, opt.workers, 100.0 * hit_rate,
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(timed_out), bad,
              control_ok ? 1 : 0);
  std::puts(svc.DumpMetrics().c_str());

  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_service.json for writing\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": %g,\n"
      "  \"workers\": %d,\n"
      "  \"clients\": %d,\n"
      "  \"queries\": %zu,\n"
      "  \"serial_qps\": %.2f,\n"
      "  \"service_qps\": %.2f,\n"
      "  \"service_uncached_qps\": %.2f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"rejected\": %llu,\n"
      "  \"timed_out\": %llu,\n"
      "  \"mismatches\": %zu,\n"
      "  \"control_paths_ok\": %s\n"
      "}\n",
      scale, opt.workers, clients, kNumQueries, serial_qps, service_qps,
      uncached_qps, speedup, hit_rate,
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out), bad,
      control_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_service.json\n");
  return (bad == 0 && control_ok) ? 0 : 1;
}

}  // namespace
}  // namespace xprel::bench

int main() { return xprel::bench::RunBench(); }
