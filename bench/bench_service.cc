// Closed-loop throughput benchmark for the concurrent query service
// (src/service): N client threads replay the XPathMark mix against a
// QueryService on one shared XPathEngine and the result is compared with
// a single-threaded engine->Run baseline, query for query, node for node.
//
// Writes BENCH_service.json with serial QPS, service QPS (cached and
// cache-bypassing), the speedup ratio, the admission/deadline counters, and
// p50/p95/p99 queue-wait and execute-span durations from the bypass pass,
// so bench/check_regression.py --service can gate the numbers. Also smoke-
// checks the control paths: a cancelled and a deadline-expired request must
// come back as error statuses without wedging a pool slot.
//
// A scaling-curve phase then measures uncached single-stream latency with
// 1/2/4/8-way intra-query morsel parallelism (geomean ms over the mix,
// node sets checked against serial) and records it under "scaling" —
// big-document latency, not cached QPS, is the production headline.
//
// Flags: --threads=N sets ServiceOptions::parallelism for the throughput
// passes (0 = auto = pool width); --scale=F overrides the corpus scale.
// Both land in BENCH_service.json so check_regression.py can refuse
// cross-configuration comparisons.
// Env knobs: XPREL_XMARK_SMALL_SCALE (corpus; must match the baseline's),
// XPREL_REPS (serial passes over the mix), XPREL_SERVICE_CLIENTS,
// XPREL_SERVICE_REPS (mix replays per client).

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "rel/query.h"
#include "service/query_service.h"
#include "service/thread_pool.h"

namespace xprel::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr size_t kNumQueries = sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]);

// One pass over the mix on the bare engine; returns queries executed.
size_t SerialPass(const engine::XPathEngine& eng,
                  std::vector<std::vector<xml::NodeId>>* expected) {
  for (size_t i = 0; i < kNumQueries; ++i) {
    auto r = eng.Run(engine::Backend::kPpf, kXMarkQueries[i].xpath);
    if (!r.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", kXMarkQueries[i].id,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    if (expected != nullptr) (*expected)[i] = std::move(r.value().nodes);
  }
  return kNumQueries;
}

// Replays the mix `reps` times from `clients` threads; every response is
// checked for node-set identity against `expected`. Returns QPS.
double ServicePass(service::QueryService& svc,
                   const std::vector<std::vector<xml::NodeId>>& expected,
                   int clients, int reps, bool bypass_cache,
                   std::atomic<size_t>& mismatches) {
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < reps; ++r) {
        // Stagger the starting query per client so distinct queries are in
        // flight together instead of every thread marching in lockstep.
        for (size_t k = 0; k < kNumQueries; ++k) {
          size_t i = (k + static_cast<size_t>(c)) % kNumQueries;
          service::QueryRequest req;
          req.xpath = kXMarkQueries[i].xpath;
          req.bypass_cache = bypass_cache;
          auto resp = svc.Run(std::move(req));
          if (!resp.ok()) {
            std::fprintf(stderr, "service %s: %s\n", kXMarkQueries[i].id,
                         resp.status().ToString().c_str());
            mismatches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (resp.value().nodes != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = SecondsSince(start);
  return static_cast<double>(clients) * reps * kNumQueries / secs;
}

// A cancelled and a deadline-expired request must surface as error
// statuses, and the pool must still serve afterwards. Uses its own
// service so the throughput metrics above stay clean.
bool CheckControlPaths(const engine::XPathEngine& eng) {
  service::ServiceOptions opt;
  opt.workers = 2;
  opt.check_interval = 64;
  service::QueryService svc(eng, opt);

  service::QueryRequest cancelled;
  cancelled.xpath = "//keyword";
  cancelled.bypass_cache = true;
  cancelled.cancel = std::make_shared<service::CancelToken>();
  cancelled.cancel->Cancel();
  auto rc = svc.Run(std::move(cancelled));
  if (rc.ok() || rc.status().code() != StatusCode::kCancelled) {
    std::fprintf(stderr, "control: pre-cancelled request not kCancelled\n");
    return false;
  }

  // Park both workers so a 1 ms deadline expires while the request queues.
  std::atomic<bool> release{false};
  for (int i = 0; i < opt.workers; ++i) {
    svc.pool().TrySubmit([&release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  service::QueryRequest late;
  late.xpath = "//keyword";
  late.bypass_cache = true;
  late.deadline = std::chrono::milliseconds(1);
  auto fut = svc.Submit(std::move(late));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  auto rd = fut.get();
  if (rd.ok() || rd.status().code() != StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr, "control: queued 1ms-deadline request not "
                 "kDeadlineExceeded\n");
    return false;
  }

  service::QueryRequest after;
  after.xpath = "//keyword";
  after.bypass_cache = true;
  auto ra = svc.Run(std::move(after));
  if (!ra.ok()) {
    std::fprintf(stderr, "control: pool did not recover: %s\n",
                 ra.status().ToString().c_str());
    return false;
  }
  return true;
}

// Uncached single-stream latency with `threads`-way intra-query morsel
// parallelism: geomean over the mix of per-query average ms. Every run's
// node set is checked against the serial `expected` sets — a scaling curve
// that changes answers measures nothing.
double ScalingGeomeanMs(const engine::XPathEngine& eng, int threads, int reps,
                        const std::vector<std::vector<xml::NodeId>>& expected,
                        std::atomic<size_t>& mismatches) {
  // The timing thread drains morsels itself (caller-runs), so threads-1
  // pool helpers give threads-way execution.
  service::ThreadPool pool(threads > 1 ? threads - 1 : 1);
  rel::ExecControl control;
  if (threads > 1) {
    control.runner = &pool.intra_runner();
    control.parallelism = threads;
  }
  const rel::ExecControl* ctl = threads > 1 ? &control : nullptr;
  double log_sum = 0;
  for (size_t i = 0; i < kNumQueries; ++i) {
    double total = 0;
    for (int r = 0; r < reps; ++r) {
      auto out = eng.Run(engine::Backend::kPpf, kXMarkQueries[i].xpath, ctl);
      if (!out.ok()) {
        std::fprintf(stderr, "scaling t%d %s: %s\n", threads,
                     kXMarkQueries[i].id, out.status().ToString().c_str());
        mismatches.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      total += out.value().elapsed_ms;
      if (r == 0 && out.value().nodes != expected[i]) {
        std::fprintf(stderr, "scaling t%d %s: node set diverged from serial\n",
                     threads, kXMarkQueries[i].id);
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
    double ms = total / reps;
    log_sum += std::log(ms > 1e-6 ? ms : 1e-6);
  }
  return std::exp(log_sum / static_cast<double>(kNumQueries));
}

int RunBench(int threads, double scale_override) {
  int reps = EnvInt("XPREL_REPS", 3);
  int clients = EnvInt("XPREL_SERVICE_CLIENTS", 8);
  int client_reps = EnvInt("XPREL_SERVICE_REPS", 4);
  double scale = scale_override > 0
                     ? scale_override
                     : EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);
  auto corpus = BuildXMark("XMark small", scale);
  const engine::XPathEngine& eng = *corpus->engine;

  // Warm-up pass populates the plan cache and the expected node sets.
  std::vector<std::vector<xml::NodeId>> expected(kNumQueries);
  SerialPass(eng, &expected);

  auto serial_start = Clock::now();
  size_t serial_n = 0;
  for (int r = 0; r < reps; ++r) serial_n += SerialPass(eng, nullptr);
  double serial_qps = static_cast<double>(serial_n) / SecondsSince(serial_start);

  service::ServiceOptions opt;
  opt.workers = 8;
  opt.queue_capacity = 256;
  opt.parallelism = threads;  // 0 = auto (pool width)
  std::atomic<size_t> mismatches{0};

  service::QueryService svc(eng, opt);
  double service_qps =
      ServicePass(svc, expected, clients, client_reps, false, mismatches);
  const service::MetricsRegistry& m = svc.metrics();
  uint64_t rejected = m.rejected.load(std::memory_order_relaxed);
  uint64_t timed_out = m.timed_out.load(std::memory_order_relaxed);
  double hit_rate = m.CacheHitRate();

  service::QueryService uncached(eng, opt);
  double uncached_qps =
      ServicePass(uncached, expected, clients, client_reps, true, mismatches);
  rejected += uncached.metrics().rejected.load(std::memory_order_relaxed);
  timed_out += uncached.metrics().timed_out.load(std::memory_order_relaxed);

  // Span-duration percentiles from the bypass pass, where every request
  // really queues and executes (the cached pass answers most requests at
  // admission, so its histograms are mostly empty). queue_wait covers
  // admission -> worker pickup; execute covers pickup -> terminal status.
  const service::MetricsRegistry& mu = uncached.metrics();
  uint64_t queue_p50 = mu.queue_wait.PercentileUs(0.50);
  uint64_t queue_p95 = mu.queue_wait.PercentileUs(0.95);
  uint64_t queue_p99 = mu.queue_wait.PercentileUs(0.99);
  uint64_t exec_p50 = mu.latency.PercentileUs(0.50);
  uint64_t exec_p95 = mu.latency.PercentileUs(0.95);
  uint64_t exec_p99 = mu.latency.PercentileUs(0.99);

  bool control_ok = CheckControlPaths(eng);

  // Scaling curve: uncached single-stream geomean latency at 1/2/4/8-way
  // intra-query parallelism.
  constexpr int kScalingThreads[] = {1, 2, 4, 8};
  double scaling_ms[4];
  for (size_t t = 0; t < 4; ++t) {
    scaling_ms[t] =
        ScalingGeomeanMs(eng, kScalingThreads[t], reps, expected, mismatches);
  }
  size_t bad = mismatches.load();

  double speedup = service_qps / serial_qps;
  std::printf("serial:            %8.1f QPS (%d passes)\n", serial_qps, reps);
  std::printf("service (cached):  %8.1f QPS  -> %.2fx serial\n", service_qps,
              speedup);
  std::printf("service (bypass):  %8.1f QPS  -> %.2fx serial\n", uncached_qps,
              uncached_qps / serial_qps);
  std::printf("clients=%d workers=%d threads=%d cache_hit_rate=%.1f%% "
              "rejected=%llu timed_out=%llu mismatches=%zu control_ok=%d\n",
              clients, opt.workers, threads, 100.0 * hit_rate,
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(timed_out), bad,
              control_ok ? 1 : 0);
  std::printf("scaling (uncached geomean ms):");
  for (size_t t = 0; t < 4; ++t) {
    std::printf("  %dT %.3f (%.2fx)", kScalingThreads[t], scaling_ms[t],
                scaling_ms[0] / (scaling_ms[t] > 1e-9 ? scaling_ms[t] : 1e-9));
  }
  std::printf("\n");
  std::printf("bypass spans (us): queue p50/p95/p99 %llu/%llu/%llu  "
              "execute p50/p95/p99 %llu/%llu/%llu\n",
              static_cast<unsigned long long>(queue_p50),
              static_cast<unsigned long long>(queue_p95),
              static_cast<unsigned long long>(queue_p99),
              static_cast<unsigned long long>(exec_p50),
              static_cast<unsigned long long>(exec_p95),
              static_cast<unsigned long long>(exec_p99));
  std::puts(svc.DumpMetrics().c_str());

  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_service.json for writing\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": %g,\n"
      "  \"threads\": %d,\n"
      "  \"workers\": %d,\n"
      "  \"clients\": %d,\n"
      "  \"queries\": %zu,\n"
      "  \"serial_qps\": %.2f,\n"
      "  \"service_qps\": %.2f,\n"
      "  \"service_uncached_qps\": %.2f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"rejected\": %llu,\n"
      "  \"timed_out\": %llu,\n"
      "  \"mismatches\": %zu,\n"
      "  \"control_paths_ok\": %s,\n"
      "  \"queue_wait_us\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu},\n"
      "  \"execute_us\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu},\n"
      "  \"scaling\": {\"t1\": %.4f, \"t2\": %.4f, \"t4\": %.4f, "
      "\"t8\": %.4f}\n"
      "}\n",
      scale, threads, opt.workers, clients, kNumQueries, serial_qps,
      service_qps, uncached_qps, speedup, hit_rate,
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out), bad,
      control_ok ? "true" : "false",
      static_cast<unsigned long long>(queue_p50),
      static_cast<unsigned long long>(queue_p95),
      static_cast<unsigned long long>(queue_p99),
      static_cast<unsigned long long>(exec_p50),
      static_cast<unsigned long long>(exec_p95),
      static_cast<unsigned long long>(exec_p99), scaling_ms[0], scaling_ms[1],
      scaling_ms[2], scaling_ms[3]);
  std::fclose(f);
  std::printf("wrote BENCH_service.json\n");
  return (bad == 0 && control_ok) ? 0 : 1;
}

}  // namespace
}  // namespace xprel::bench

int main(int argc, char** argv) {
  int threads = 0;   // 0 = auto (pool width)
  double scale = 0;  // 0 = env default
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else {
      std::fprintf(stderr, "unknown flag %s (expected --threads=N or "
                   "--scale=F)\n", argv[i]);
      return 2;
    }
  }
  return xprel::bench::RunBench(threads, scale);
}
