// Experiment E2 (paper Figure 4 / Appendix C, small document): five-system
// comparison on the small XMark document.

#include "bench/systems_table.h"

int main() {
  using namespace xprel::bench;
  int reps = EnvInt("XPREL_REPS", 3);
  double small = EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);
  std::printf("E2 / Figure 4 + Appendix C (small): systems comparison "
              "(times in ms, avg of %d)\n", reps);
  auto corpus = BuildXMark("XMark small", small);
  RunSystemsTable(*corpus, kXMarkQueries,
                  sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]), reps);
  return 0;
}
