// Update-workload benchmark for the DML layer (src/dml): measures subtree
// insert/delete/text-update latency with incremental index maintenance,
// the read-only query mix before any mutation (the non-regression anchor),
// and a mixed 90/10 read-write workload served through the QueryService
// twice — once with path-id-scoped ("surgical") result-cache invalidation
// and once with the generation-bump fallback — so the cache-hit-rate win
// of surgical invalidation is a measured, gated number.
//
// Writes BENCH_update.json; bench/check_regression.py --update gates it:
// the read-only geomean must not regress more than the threshold, and the
// surgical hit rate must beat the generation-bump hit rate on the same
// operation sequence. A final mutate-vs-reshred spot check (oracle_ok)
// guards against a benchmark that got fast by answering wrong.
//
// Flags: --threads=N (ServiceOptions::parallelism; recorded), --scale=F
// (corpus scale, default 0.1 — the paper's 12 MB analogue).
// Env: XPREL_REPS (read-only timing passes), XPREL_UPDATE_MUTATIONS
// (latency-phase mutation count), XPREL_UPDATE_MIXED_OPS (mixed-phase ops).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "data/rng.h"
#include "dml/mutator.h"
#include "durability/manager.h"
#include "service/query_service.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xprel::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count() * 1e3;
}

constexpr size_t kNumQueries = sizeof(kXMarkQueries) / sizeof(kXMarkQueries[0]);

// Read mix for the 90/10 phase: half the queries never touch item paths
// (people/auctions), so surgical invalidation can keep them cached across
// item mutations; the other half go stale on every item write either way.
constexpr const char* kMixedReads[] = {
    "/site/people/person/name",
    "/site/people/person[address and (phone or homepage)]",
    "/site/open_auctions/open_auction/bidder",
    "/site/closed_auctions/closed_auction/price",
    "/site/regions/*/item",
    "//item[@featured='yes']",
    "/site/regions/africa/item/name",
    "//keyword",
};
constexpr size_t kNumMixedReads =
    sizeof(kMixedReads) / sizeof(kMixedReads[0]);

std::string ItemFragment(int id) {
  return "<item id=\"upd" + std::to_string(id) + "\">"
         "<location>Honduras</location><quantity>1</quantity>"
         "<name>update bench item " + std::to_string(id) + "</name>"
         "<payment>Cash</payment>"
         "<description><text>update bench payload</text></description>"
         "<shipping>Will ship only within country</shipping></item>";
}

const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};

struct LatencyStats {
  double mean_ms = 0;
  double p95_ms = 0;
};

LatencyStats Summarize(std::vector<double>& ms) {
  LatencyStats s;
  if (ms.empty()) return s;
  double total = 0;
  for (double v : ms) total += v;
  s.mean_ms = total / static_cast<double>(ms.size());
  std::sort(ms.begin(), ms.end());
  s.p95_ms = ms[std::min(ms.size() - 1, ms.size() * 95 / 100)];
  return s;
}

// Geomean ms over the XPathMark mix on the bare engine; also sums result
// nodes as a cheap cross-run identity check.
double ReadOnlyGeomean(const engine::XPathEngine& eng, int reps,
                       size_t* nodes_total, size_t* failures) {
  double log_sum = 0;
  for (size_t i = 0; i < kNumQueries; ++i) {
    double total = 0;
    for (int r = 0; r < reps; ++r) {
      auto out = eng.Run(engine::Backend::kPpf, kXMarkQueries[i].xpath);
      if (!out.ok()) {
        std::fprintf(stderr, "read-only %s: %s\n", kXMarkQueries[i].id,
                     out.status().ToString().c_str());
        ++*failures;
        return 0;
      }
      total += out.value().elapsed_ms;
      if (r == 0) *nodes_total += out.value().nodes.size();
    }
    double ms = total / reps;
    log_sum += std::log(ms > 1e-6 ? ms : 1e-6);
  }
  return std::exp(log_sum / static_cast<double>(kNumQueries));
}

struct MixedResult {
  double qps = 0;
  double hit_rate = 0;
  uint64_t invalidated = 0;
  size_t failures = 0;
};

// Replays `ops` operations (every 10th a mutation, same Rng seed for every
// mode) through a fresh QueryService over `corpus`. `surgical` selects
// path-id-scoped invalidation; otherwise every mutation bumps the cache
// generation.
MixedResult RunMixed(Corpus& corpus, int ops, int threads, bool surgical) {
  service::ServiceOptions opt;
  opt.workers = 4;
  opt.parallelism = threads;
  service::QueryService svc(*corpus.engine, opt);
  dml::DocumentMutator mut(corpus.doc, *corpus.engine);
  data::Rng rng(0xBEEF);

  MixedResult res;
  std::deque<int> inserted;
  int next_id = 0;
  auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    if (i % 10 == 9) {
      // Write op: alternate insert and delete of bench-owned items so the
      // document size stays stable and no path is ever created or retired.
      auto mutate = [&]() -> Result<dml::MutationResult> {
        if (inserted.size() < 2 || rng.Below(2) == 0) {
          const char* region = kRegions[rng.Below(6)];
          int id = next_id++;
          auto r = mut.InsertFragmentAt(
              std::string("/site/regions/") + region, 0, ItemFragment(id));
          if (r.ok()) inserted.push_back(id);
          return r;
        }
        int id = inserted.front();
        inserted.pop_front();
        return mut.DeleteSubtreeAt("//item[@id='upd" + std::to_string(id) +
                                   "']");
      };
      auto r = mutate();
      if (!r.ok()) {
        std::fprintf(stderr, "mixed mutation %d: %s\n", i,
                     r.status().ToString().c_str());
        ++res.failures;
        continue;
      }
      if (surgical) {
        svc.InvalidateMutation(r.value().affected);
      } else {
        svc.InvalidateResults();
      }
    } else {
      service::QueryRequest req;
      req.xpath = kMixedReads[rng.Below(kNumMixedReads)];
      auto resp = svc.Run(std::move(req));
      if (!resp.ok()) {
        std::fprintf(stderr, "mixed read %d: %s\n", i,
                     resp.status().ToString().c_str());
        ++res.failures;
      }
    }
  }
  res.qps = static_cast<double>(ops) / (MsSince(start) / 1e3);
  res.hit_rate = svc.metrics().CacheHitRate();
  res.invalidated = svc.metrics().cache_entries_invalidated.load();
  return res;
}

// Serializes the mutated document, reshreds from scratch, and compares a
// few query node-counts — a cheap end-of-run consistency oracle.
bool OracleCheck(Corpus& mutated) {
  auto parsed = xml::ParseXml(xml::SerializeXml(mutated.doc));
  if (!parsed.ok()) {
    std::fprintf(stderr, "oracle reparse: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  auto fresh = BuildCorpus("reshred", std::move(parsed).value(),
                           data::XMarkXsd());
  const char* queries[] = {"//item", "//item/name", "//keyword",
                           "/site/people/person/name"};
  for (const char* q : queries) {
    auto a = mutated.engine->Run(engine::Backend::kPpf, q);
    auto b = fresh->engine->Run(engine::Backend::kPpf, q);
    if (!a.ok() || !b.ok() ||
        a.value().nodes.size() != b.value().nodes.size()) {
      std::fprintf(stderr, "oracle: %s diverged from reshred (%zu vs %zu)\n",
                   q, a.ok() ? a.value().nodes.size() : 0,
                   b.ok() ? b.value().nodes.size() : 0);
      return false;
    }
  }
  return true;
}

struct DurabilityResult {
  double plain_mut_ms = 0;         // mean plain-mutator latency
  double durable_mut_ms = 0;       // mean WAL-logged latency, fsync off
  double durable_fsync_ms = 0;     // mean WAL-logged latency, fsync on
  double overhead_pct = 0;         // durable vs plain, fsync off
  double checkpoint_ms = 0;        // full snapshot + rotation
  double recover_ms = 0;           // OpenOrRecover: snapshot + empty tail
  double reshred_ms = 0;           // OpenOrRecover: source.xml + full replay
  uint64_t wal_bytes = 0;
  uint64_t snapshot_bytes = 0;
  bool recovered_ok = false;
  size_t failures = 0;
};

// One corpus plus its mutator (and optionally a DurabilityManager) taking
// timed insert/update pairs.
struct MutationLane {
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<dml::DocumentMutator> mut;
  std::unique_ptr<durability::DurabilityManager> mgr;  // null = plain lane
  std::vector<double> ms;
  size_t failures = 0;
};

void StepLane(MutationLane& lane, int i) {
  auto parent = lane.mut->ResolveTarget(std::string("/site/regions/") +
                                        kRegions[i % 6]);
  if (!parent.ok()) {
    ++lane.failures;
    return;
  }
  std::string frag = ItemFragment(200000 + i);
  auto t0 = Clock::now();
  auto r = lane.mgr != nullptr ? lane.mgr->InsertFragment(*parent, 0, frag)
                               : lane.mut->InsertFragment(*parent, 0, frag);
  if (!r.ok()) {
    ++lane.failures;
    return;
  }
  lane.ms.push_back(MsSince(t0));
  auto name = lane.mut->ResolveTarget(
      "//item[@id='upd" + std::to_string(200000 + i) + "']/name");
  if (!name.ok()) {
    ++lane.failures;
    return;
  }
  std::string text = "durable retitle " + std::to_string(i);
  t0 = Clock::now();
  auto u = lane.mgr != nullptr ? lane.mgr->UpdateText(*name, text)
                               : lane.mut->UpdateText(*name, text);
  if (!u.ok()) {
    ++lane.failures;
    return;
  }
  lane.ms.push_back(MsSince(t0));
}

// Releases a lane's stack in dependency order: the manager references the
// engine and document, the mutator references both too.
void DropLane(MutationLane& lane) {
  lane.mgr.reset();
  lane.mut.reset();
  lane.corpus.reset();
}

// Overhead as the median of paired per-op ratios. Entry i of both vectors
// is the same op shape on the same document milliseconds apart, so the
// ratio isolates the WAL cost per op; the median then discards scheduler
// spikes that a mean of either lane would absorb (observed swings of
// ±30% on a single-core host with mean-of-lane timing).
double MedianPairedOverheadPct(const std::vector<double>& base,
                               const std::vector<double>& durable) {
  if (base.size() != durable.size() || base.empty()) return 0;
  std::vector<double> ratio;
  ratio.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i] > 1e-6) ratio.push_back(durable[i] / base[i]);
  }
  if (ratio.empty()) return 0;
  std::nth_element(ratio.begin(), ratio.begin() + ratio.size() / 2,
                   ratio.end());
  return 100.0 * (ratio[ratio.size() / 2] - 1.0);
}

// Phase 7: the durability economics. Prices the WAL on the mutation path
// (fsync off and on) against the plain mutator, then a checkpoint, then
// both recovery rungs: snapshot + empty tail vs reshred-from-XML + full
// replay. check_regression.py --durability gates recover < reshred and
// the fsync-off overhead.
DurabilityResult RunDurability(double scale) {
  namespace fs = std::filesystem;
  const int n = EnvInt("XPREL_DURABILITY_MUTATIONS", 25);
  DurabilityResult res;

  // The durable document must be the fixed point of serialize-then-parse
  // so the reshred fallback reproduces the node ids the WAL references.
  data::XMarkOptions opt;
  opt.scale = scale;
  const std::string xml_src = xml::SerializeXml(data::GenerateXMark(opt));
  auto reparse = [&]() {
    auto parsed = xml::ParseXml(xml_src);
    if (!parsed.ok()) {
      std::fprintf(stderr, "durability reparse: %s\n",
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(parsed).value();
  };

  fs::remove_all("bench_durability_tmp");
  auto make_lane = [&](const char* label, const char* subdir,
                       bool fsync) -> MutationLane {
    MutationLane lane;
    lane.corpus = BuildCorpus(label, reparse(), data::XMarkXsd());
    lane.mut = std::make_unique<dml::DocumentMutator>(lane.corpus->doc,
                                                      *lane.corpus->engine);
    if (subdir != nullptr) {
      durability::DurabilityOptions dopt;
      dopt.fsync_wal = fsync;
      dopt.checkpoint_wal_bytes = 0;  // only the explicit checkpoint below
      auto mgr = durability::DurabilityManager::Create(
          (fs::path("bench_durability_tmp") / subdir).string(),
          lane.corpus->doc, *lane.corpus->engine, dopt);
      if (!mgr.ok()) {
        std::fprintf(stderr, "durability create: %s\n",
                     mgr.status().ToString().c_str());
        ++lane.failures;
      } else {
        lane.mgr = std::move(mgr).value();
      }
    }
    return lane;
  };

  // Overhead lane: ONE corpus pays all three prices (bare mutator, WAL,
  // WAL+fsync) in rotating order. Separately built corpora at this scale
  // were measured to differ by up to 2x in bare mutation cost from
  // allocation locality alone, swamping the WAL cost under test, so the
  // comparison must share a document, engine, and allocator history. Two
  // extra managers wrap the same corpus; their interleaved logs are never
  // recovered — recovery economics use the fully logged lane below.
  MutationLane alt = make_lane("durability-overhead", "alt", false);
  std::unique_ptr<durability::DurabilityManager> altf;
  {
    durability::DurabilityOptions dopt;
    dopt.fsync_wal = true;
    dopt.checkpoint_wal_bytes = 0;
    auto m = durability::DurabilityManager::Create(
        (fs::path("bench_durability_tmp") / "altf").string(),
        alt.corpus->doc, *alt.corpus->engine, dopt);
    if (!m.ok()) {
      std::fprintf(stderr, "durability create: %s\n",
                   m.status().ToString().c_str());
      ++res.failures;
      return res;
    }
    altf = std::move(m).value();
  }
  if (alt.mgr == nullptr) {
    ++res.failures;
    return res;
  }

  std::vector<double> plain_ms, wal_ms, fsync_ms;
  auto timed_pair = [&](durability::DurabilityManager* mgr,
                        std::vector<double>& out, int id,
                        const char* region) {
    auto parent =
        alt.mut->ResolveTarget(std::string("/site/regions/") + region);
    if (!parent.ok()) {
      ++res.failures;
      return;
    }
    std::string frag = ItemFragment(id);
    auto t0 = Clock::now();
    auto r = mgr != nullptr ? mgr->InsertFragment(*parent, 0, frag)
                            : alt.mut->InsertFragment(*parent, 0, frag);
    if (!r.ok()) {
      ++res.failures;
      return;
    }
    out.push_back(MsSince(t0));
    auto name = alt.mut->ResolveTarget("//item[@id='upd" + std::to_string(id) +
                                       "']/name");
    if (!name.ok()) {
      ++res.failures;
      return;
    }
    std::string text = "durable retitle " + std::to_string(id);
    t0 = Clock::now();
    auto u = mgr != nullptr ? mgr->UpdateText(*name, text)
                            : alt.mut->UpdateText(*name, text);
    if (!u.ok()) {
      ++res.failures;
      return;
    }
    out.push_back(MsSince(t0));
  };
  // Each round inserts three near-identical items into the same region,
  // one per mode, rotating which mode goes first so position-in-round
  // bias cancels across rounds.
  for (int k = 0; k < n; ++k) {
    const char* region = kRegions[k % 6];
    struct Slot {
      durability::DurabilityManager* mgr;
      std::vector<double>* out;
    };
    const Slot slots[3] = {{nullptr, &plain_ms},
                           {alt.mgr.get(), &wal_ms},
                           {altf.get(), &fsync_ms}};
    for (int s = 0; s < 3; ++s) {
      const int mode = (s + k) % 3;
      timed_pair(slots[mode].mgr, *slots[mode].out, 300000 + 3 * k + mode,
                 region);
    }
  }
  if (std::getenv("XPREL_DURABILITY_DEBUG") != nullptr) {
    for (size_t i = 0; i < plain_ms.size(); ++i) {
      std::fprintf(stderr, "[lane %zu] plain=%.3f wal=%.3f fsync=%.3f\n", i,
                   plain_ms[i], i < wal_ms.size() ? wal_ms[i] : -1,
                   i < fsync_ms.size() ? fsync_ms[i] : -1);
    }
  }
  res.plain_mut_ms = Summarize(plain_ms).mean_ms;
  res.durable_mut_ms = Summarize(wal_ms).mean_ms;
  res.durable_fsync_ms = Summarize(fsync_ms).mean_ms;
  res.overhead_pct = MedianPairedOverheadPct(plain_ms, wal_ms);
  res.failures += alt.failures;
  altf.reset();
  DropLane(alt);

  // Recovery lane: every op WAL-logged, then checkpointed, crashed, and
  // recovered twice (snapshot rung, then reshred rung).
  MutationLane walled = make_lane("durability-walled", "main", false);
  if (walled.mgr == nullptr) {
    ++res.failures;
    return res;
  }
  for (int i = 0; i < n; ++i) StepLane(walled, i);
  res.failures += walled.failures;
  res.wal_bytes = walled.mgr->stats().wal_bytes.load();

  const fs::path dir = fs::path("bench_durability_tmp") / "main";
  auto counted = walled.corpus->engine->Run(engine::Backend::kPpf, "//item");
  const size_t live_items =
      counted.ok() ? counted.value().nodes.size() : 0;

  {
    auto t0 = Clock::now();
    Status ck = walled.mgr->Checkpoint();
    res.checkpoint_ms = MsSince(t0);
    if (!ck.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", ck.ToString().c_str());
      ++res.failures;
    }
    res.snapshot_bytes = walled.mgr->stats().snapshot_bytes.load();
  }
  // Drop the stack: recovery starts cold.
  DropLane(walled);

  // The graph keeps references into the schema, so the schema must outlive
  // both recoveries below.
  auto schema = xsd::ParseXsd(data::XMarkXsd());
  if (!schema.ok()) {
    ++res.failures;
    return res;
  }
  auto graph = xsd::SchemaGraph::Build(schema.value());
  if (!graph.ok()) {
    ++res.failures;
    return res;
  }

  auto check = [&](const Result<durability::RecoveredEngine>& rec) {
    if (!rec.ok()) {
      std::fprintf(stderr, "recover: %s\n", rec.status().ToString().c_str());
      return false;
    }
    auto items =
        rec.value().engine->Run(engine::Backend::kPpf, "//item");
    return items.ok() && items.value().nodes.size() == live_items;
  };

  {
    auto t0 = Clock::now();
    auto rec = durability::OpenOrRecover(dir.string(), graph.value());
    res.recover_ms = MsSince(t0);
    res.recovered_ok = check(rec);
    if (rec.ok()) rec.value().manager.reset();  // close the WAL
  }

  // Remove the snapshots: the same directory must now recover through the
  // reshred-from-XML rung with a full WAL replay.
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (ent.path().extension() == ".snap") fs::remove(ent.path());
  }
  {
    auto t0 = Clock::now();
    auto rec = durability::OpenOrRecover(dir.string(), graph.value());
    res.reshred_ms = MsSince(t0);
    res.recovered_ok =
        res.recovered_ok && check(rec) &&
        rec.value().report.reshred_fallback;
  }
  if (!res.recovered_ok) ++res.failures;

  fs::remove_all("bench_durability_tmp");
  return res;
}

int RunBench(int threads, double scale_override) {
  const int reps = EnvInt("XPREL_REPS", 3);
  const int mutations = EnvInt("XPREL_UPDATE_MUTATIONS", 50);
  const int mixed_ops = EnvInt("XPREL_UPDATE_MIXED_OPS", 600);
  const double scale = scale_override > 0
                           ? scale_override
                           : EnvDouble("XPREL_XMARK_SMALL_SCALE", 0.1);

  auto corpus = BuildXMark("update", scale);
  size_t failures = 0;

  // Phase 1: read-only anchor on the pristine engine.
  size_t nodes_total = 0;
  double read_geomean =
      ReadOnlyGeomean(*corpus->engine, reps, &nodes_total, &failures);
  std::printf("read-only geomean: %.3f ms over %zu queries "
              "(%zu result nodes)\n",
              read_geomean, kNumQueries, nodes_total);

  // Phase 2: insert latency (timed mutation only; target resolution is
  // off the clock).
  dml::DocumentMutator mut(corpus->doc, *corpus->engine);
  std::vector<double> insert_ms, delete_ms, update_ms;
  std::vector<xml::NodeId> bench_items;
  for (int i = 0; i < mutations; ++i) {
    auto parent = mut.ResolveTarget(std::string("/site/regions/") +
                                    kRegions[i % 6]);
    if (!parent.ok()) {
      ++failures;
      continue;
    }
    std::string frag = ItemFragment(100000 + i);
    auto t0 = Clock::now();
    auto r = mut.InsertFragment(*parent, 0, frag);
    if (!r.ok()) {
      std::fprintf(stderr, "insert %d: %s\n", i,
                   r.status().ToString().c_str());
      ++failures;
      continue;
    }
    insert_ms.push_back(MsSince(t0));
    bench_items.push_back(r.value().node);
  }

  // Phase 3: text-update latency on the freshly inserted items.
  for (size_t i = 0; i < bench_items.size(); i += 2) {
    auto target = mut.ResolveTarget(
        "//item[@id='upd" + std::to_string(100000 + i) + "']/name");
    if (!target.ok()) continue;
    auto t0 = Clock::now();
    auto r = mut.UpdateText(*target, "retitled " + std::to_string(i));
    if (!r.ok()) {
      ++failures;
      continue;
    }
    update_ms.push_back(MsSince(t0));
  }

  // Phase 4: delete latency (removes everything phase 2 added).
  for (xml::NodeId node : bench_items) {
    auto t0 = Clock::now();
    auto r = mut.DeleteSubtree(node);
    if (!r.ok()) {
      std::fprintf(stderr, "delete: %s\n", r.status().ToString().c_str());
      ++failures;
      continue;
    }
    delete_ms.push_back(MsSince(t0));
  }

  LatencyStats ins = Summarize(insert_ms);
  LatencyStats del = Summarize(delete_ms);
  LatencyStats upd = Summarize(update_ms);
  const dml::MutationStats& ms = mut.stats();
  std::printf("insert: mean %.3f ms p95 %.3f ms (%zu ops)\n", ins.mean_ms,
              ins.p95_ms, insert_ms.size());
  std::printf("update: mean %.3f ms p95 %.3f ms (%zu ops)\n", upd.mean_ms,
              upd.p95_ms, update_ms.size());
  std::printf("delete: mean %.3f ms p95 %.3f ms (%zu ops)\n", del.mean_ms,
              del.p95_ms, delete_ms.size());
  std::printf("dewey_renumbers=%llu paths_added=%llu paths_retired=%llu "
              "rollbacks=%llu\n",
              static_cast<unsigned long long>(ms.dewey_renumbers),
              static_cast<unsigned long long>(ms.paths_added),
              static_cast<unsigned long long>(ms.paths_retired),
              static_cast<unsigned long long>(ms.rollbacks));

  // Phase 5: mixed 90/10 read-write, surgical vs generation-bump — same
  // seed, same op sequence, fresh service each. The surgical run reuses
  // this corpus (document content is back to baseline after phase 4); the
  // generation run gets an identical fresh corpus.
  MixedResult surgical = RunMixed(*corpus, mixed_ops, threads, true);
  auto corpus_gen = BuildXMark("update-genbump", scale);
  MixedResult genbump = RunMixed(*corpus_gen, mixed_ops, threads, false);
  failures += surgical.failures + genbump.failures;
  std::printf("mixed 90/10 surgical:   %7.1f ops/s  hit_rate=%.1f%% "
              "entries_invalidated=%llu\n",
              surgical.qps, 100 * surgical.hit_rate,
              static_cast<unsigned long long>(surgical.invalidated));
  std::printf("mixed 90/10 gen-bump:   %7.1f ops/s  hit_rate=%.1f%%\n",
              genbump.qps, 100 * genbump.hit_rate);

  // Phase 6: consistency oracle on the mutated corpus.
  bool oracle_ok = OracleCheck(*corpus);
  std::printf("oracle_ok=%d failures=%zu\n", oracle_ok ? 1 : 0, failures);

  // Phase 7: durability economics (WAL overhead, checkpoint, recovery).
  DurabilityResult dur = RunDurability(scale);
  failures += dur.failures;
  std::printf("durable mutation: plain %.3f ms, wal %.3f ms "
              "(paired median %+.1f%%), wal+fsync %.3f ms\n",
              dur.plain_mut_ms, dur.durable_mut_ms, dur.overhead_pct,
              dur.durable_fsync_ms);
  std::printf("checkpoint: %.1f ms (%llu snapshot bytes, %llu wal bytes)\n",
              dur.checkpoint_ms,
              static_cast<unsigned long long>(dur.snapshot_bytes),
              static_cast<unsigned long long>(dur.wal_bytes));
  std::printf("recovery: snapshot+tail %.1f ms vs reshred+replay %.1f ms "
              "(recovered_ok=%d)\n",
              dur.recover_ms, dur.reshred_ms, dur.recovered_ok ? 1 : 0);

  FILE* f = std::fopen("BENCH_update.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_update.json for writing\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"scale\": %g,\n"
      "  \"threads\": %d,\n"
      "  \"mutations\": %d,\n"
      "  \"mixed_ops\": %d,\n"
      "  \"read_only_geomean_ms\": %.4f,\n"
      "  \"read_only_nodes\": %zu,\n"
      "  \"insert_mean_ms\": %.4f,\n"
      "  \"insert_p95_ms\": %.4f,\n"
      "  \"update_mean_ms\": %.4f,\n"
      "  \"update_p95_ms\": %.4f,\n"
      "  \"delete_mean_ms\": %.4f,\n"
      "  \"delete_p95_ms\": %.4f,\n"
      "  \"dewey_renumbers\": %llu,\n"
      "  \"paths_added\": %llu,\n"
      "  \"paths_retired\": %llu,\n"
      "  \"mixed\": {\n"
      "    \"write_fraction\": 0.1,\n"
      "    \"surgical_qps\": %.2f,\n"
      "    \"surgical_hit_rate\": %.4f,\n"
      "    \"surgical_entries_invalidated\": %llu,\n"
      "    \"generation_qps\": %.2f,\n"
      "    \"generation_hit_rate\": %.4f\n"
      "  },\n"
      "  \"durability\": {\n"
      "    \"plain_mutation_mean_ms\": %.4f,\n"
      "    \"durable_mutation_mean_ms\": %.4f,\n"
      "    \"durable_overhead_pct\": %.2f,\n"
      "    \"durable_fsync_mean_ms\": %.4f,\n"
      "    \"wal_bytes\": %llu,\n"
      "    \"checkpoint_ms\": %.2f,\n"
      "    \"snapshot_bytes\": %llu,\n"
      "    \"recover_ms\": %.2f,\n"
      "    \"reshred_ms\": %.2f,\n"
      "    \"recovered_ok\": %s\n"
      "  },\n"
      "  \"failures\": %zu,\n"
      "  \"oracle_ok\": %s\n"
      "}\n",
      scale, threads, mutations, mixed_ops, read_geomean, nodes_total,
      ins.mean_ms, ins.p95_ms, upd.mean_ms, upd.p95_ms, del.mean_ms,
      del.p95_ms, static_cast<unsigned long long>(ms.dewey_renumbers),
      static_cast<unsigned long long>(ms.paths_added),
      static_cast<unsigned long long>(ms.paths_retired), surgical.qps,
      surgical.hit_rate,
      static_cast<unsigned long long>(surgical.invalidated), genbump.qps,
      genbump.hit_rate, dur.plain_mut_ms, dur.durable_mut_ms,
      dur.overhead_pct, dur.durable_fsync_ms,
      static_cast<unsigned long long>(dur.wal_bytes), dur.checkpoint_ms,
      static_cast<unsigned long long>(dur.snapshot_bytes), dur.recover_ms,
      dur.reshred_ms, dur.recovered_ok ? "true" : "false", failures,
      oracle_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_update.json\n");
  return (failures == 0 && oracle_ok) ? 0 : 1;
}

}  // namespace
}  // namespace xprel::bench

int main(int argc, char** argv) {
  int threads = 0;
  double scale = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::atof(argv[i] + 8);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (expected --threads=N or --scale=F)\n",
                   argv[i]);
      return 2;
    }
  }
  return xprel::bench::RunBench(threads, scale);
}
