#ifndef XPREL_TRANSLATE_TRANSLATOR_H_
#define XPREL_TRANSLATE_TRANSLATOR_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rel/sql_ast.h"
#include "shred/schema_map.h"
#include "xpath/ast.h"

namespace xprel::translate {

struct TranslateOptions {
  // Section 4.5: skip the Paths join when the schema proves it redundant
  // (U-P nodes, and F-P nodes whose every root path matches the regex).
  // Disabled by the A1 ablation bench.
  bool omit_redundant_path_filters = true;

  // Section 4.2: use integer FK equijoins for single-step child / parent
  // PPFs instead of Dewey theta-joins. Disabled by the A2 ablation bench
  // (which then emits BETWEEN + LENGTH conditions).
  bool fk_joins_for_child_parent = true;

  // --- conventional-translation mode (the "commercial RDBMS" baseline) ---
  // When `per_step_fragments` is set, every step becomes its own fragment
  // ('//' connectors merge into the following step as a descendant axis),
  // reproducing the classic one-join-per-step schema-aware translation the
  // paper's Section 1 criticizes. `use_path_index = false` additionally
  // forbids Paths joins entirely; this is only sound when each involved
  // relation stores a single element tag, and the translator reports
  // Unsupported otherwise. `backward_predicate_regex = false` turns off the
  // Table 5-2 optimization (backward predicate paths become EXISTS chains).
  bool per_step_fragments = false;
  bool use_path_index = true;
  bool backward_predicate_regex = true;
};

// The conventional baseline configuration described above.
inline TranslateOptions NaiveTranslateOptions() {
  TranslateOptions o;
  o.per_step_fragments = true;
  o.use_path_index = false;
  o.backward_predicate_regex = false;
  return o;
}

// The translated SQL plus projection metadata.
struct TranslatedQuery {
  rel::SqlQuery sql;
  // Projected columns are always [id, dewey_pos] plus `value` when the
  // XPath ends in text() or an attribute step.
  bool projects_value = false;
  // True when every select was pruned as schema-infeasible: the query is
  // statically empty.
  bool statically_empty = false;

  std::string ToSqlString() const { return rel::SqlToString(sql); }
};

// PPF-based XPath-to-SQL translation over the schema-aware mapping — the
// paper's primary contribution (Section 4):
//   * the backbone and predicate paths are split into Primitive Path
//     Fragments;
//   * each forward fragment becomes one relation joined (at most once) with
//     `Paths` under a regex filter derived from the maximal forward path;
//   * fragments are connected with Dewey lexicographic theta-joins (Table
//     2) or FK equijoins for single child/parent steps;
//   * predicates become EXISTS sub-selects, except backward simple paths,
//     which fold into extra regexes on the context's root-to-node path
//     (Table 5-2), and attribute tests, which become column restrictions;
//   * a prominent step matching several relations splits the statement into
//     a UNION, but inside predicates it becomes OR-ed sub-selects (4.4);
//   * U-P / F-P / I-P marking suppresses provably redundant path filters
//     (4.5).
class PpfTranslator {
 public:
  explicit PpfTranslator(const shred::SchemaAwareMapping& mapping,
                         TranslateOptions options = {});

  Result<TranslatedQuery> Translate(const xpath::XPathExpr& expr) const;
  Result<TranslatedQuery> TranslateString(std::string_view xpath) const;

  const TranslateOptions& options() const { return options_; }

 private:
  const shred::SchemaAwareMapping& mapping_;
  TranslateOptions options_;
};

}  // namespace xprel::translate

#endif  // XPREL_TRANSLATE_TRANSLATOR_H_
