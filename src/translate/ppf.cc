#include "translate/ppf.h"

namespace xprel::translate {

using xpath::Axis;
using xpath::Expr;
using xpath::ExprPtr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;

const char* PpfKindName(PpfKind k) {
  switch (k) {
    case PpfKind::kForward:
      return "forward";
    case PpfKind::kBackward:
      return "backward";
    case PpfKind::kOrder:
      return "order";
  }
  return "?";
}

namespace {

enum class StepDir { kForward, kBackward, kOrder };

StepDir DirOf(Axis axis) {
  if (xpath::IsForwardAxis(axis)) return StepDir::kForward;
  if (xpath::IsBackwardAxis(axis)) return StepDir::kBackward;
  return StepDir::kOrder;
}

}  // namespace

Result<std::vector<Ppf>> SplitIntoPpfs(const LocationPath& path) {
  std::vector<Ppf> out;
  bool prev_had_predicates = false;
  for (const Step& step : path.steps) {
    StepDir dir = DirOf(step.axis);
    bool start_new =
        out.empty() || prev_had_predicates ||
        dir == StepDir::kOrder || out.back().kind == PpfKind::kOrder ||
        (dir == StepDir::kForward && out.back().kind != PpfKind::kForward) ||
        (dir == StepDir::kBackward && out.back().kind != PpfKind::kBackward);
    if (start_new) {
      Ppf ppf;
      switch (dir) {
        case StepDir::kForward:
          ppf.kind = PpfKind::kForward;
          break;
        case StepDir::kBackward:
          ppf.kind = PpfKind::kBackward;
          break;
        case StepDir::kOrder:
          ppf.kind = PpfKind::kOrder;
          break;
      }
      out.push_back(std::move(ppf));
    }
    out.back().steps.push_back(&step);
    prev_had_predicates = !step.predicates.empty();
  }
  return out;
}

// ---------------------------------------------------------------------------
// -or-self expansion
// ---------------------------------------------------------------------------

namespace {

bool IsExpandableStep(const Step& s) {
  return (s.axis == Axis::kDescendantOrSelf ||
          s.axis == Axis::kAncestorOrSelf) &&
         s.test != NodeTestKind::kAnyNode;
}

// A '//' connector can stay implicit (the regex builder folds it into the
// following child/descendant hop) only when such a hop follows; a trailing
// connector, one followed by a non-downward axis, or one carrying
// predicates must be expanded into its self / strict-descendant branches.
bool IsExpandableConnector(const LocationPath& path, size_t i) {
  const Step& s = path.steps[i];
  if (s.axis != Axis::kDescendantOrSelf || s.test != NodeTestKind::kAnyNode) {
    return false;
  }
  if (!s.predicates.empty()) return true;
  if (i + 1 >= path.steps.size()) return true;
  Axis next = path.steps[i + 1].axis;
  return next != Axis::kChild && next != Axis::kDescendant &&
         next != Axis::kDescendantOrSelf;
}

ExprPtr ExpandExpr(const Expr& e);

// All -or-self-free variants of a path (including expansion inside step
// predicates).
std::vector<LocationPath> ExpandPath(const LocationPath& path) {
  // First expand predicates step-wise on a clone.
  LocationPath base = xpath::ClonePath(path);
  for (Step& s : base.steps) {
    for (ExprPtr& p : s.predicates) {
      p = ExpandExpr(*p);
    }
  }
  // Then expand the first -or-self step and recurse.
  for (size_t i = 0; i < base.steps.size(); ++i) {
    if (IsExpandableConnector(base, i)) {
      std::vector<LocationPath> out;
      // Branch 1: the self case — drop the connector (its predicates, if
      // any, move onto nothing expressible; connectors with predicates on
      // the self branch apply to the context node, which the kSelf variant
      // below covers).
      {
        LocationPath v = xpath::ClonePath(base);
        if (v.steps[i].predicates.empty()) {
          v.steps.erase(v.steps.begin() + static_cast<ptrdiff_t>(i));
        } else {
          v.steps[i].axis = Axis::kSelf;
        }
        if (!v.steps.empty()) {
          for (LocationPath& expanded : ExpandPath(v)) {
            out.push_back(std::move(expanded));
          }
        }
      }
      // Branch 2: the strict-descendant case.
      {
        LocationPath v = xpath::ClonePath(base);
        v.steps[i].axis = Axis::kDescendant;
        for (LocationPath& expanded : ExpandPath(v)) {
          out.push_back(std::move(expanded));
        }
      }
      return out;
    }
    if (!IsExpandableStep(base.steps[i])) continue;
    std::vector<LocationPath> out;
    for (Axis variant :
         {Axis::kSelf, base.steps[i].axis == Axis::kDescendantOrSelf
                           ? Axis::kDescendant
                           : Axis::kAncestor}) {
      LocationPath v = xpath::ClonePath(base);
      v.steps[i].axis = variant;
      for (LocationPath& expanded : ExpandPath(v)) {
        out.push_back(std::move(expanded));
      }
    }
    return out;
  }
  std::vector<LocationPath> out;
  out.push_back(std::move(base));
  return out;
}

ExprPtr ExpandExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kPath: {
      std::vector<LocationPath> variants = ExpandPath(e.path);
      ExprPtr combined;
      for (LocationPath& v : variants) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kPath;
        node->path = std::move(v);
        if (combined == nullptr) {
          combined = std::move(node);
        } else {
          auto parent = std::make_unique<Expr>();
          parent->kind = Expr::Kind::kOr;
          parent->children.push_back(std::move(combined));
          parent->children.push_back(std::move(node));
          combined = std::move(parent);
        }
      }
      return combined;
    }
    case Expr::Kind::kComparison: {
      // Expand each path operand; OR over the cartesian product.
      auto operand_variants =
          [](const Expr& op) -> std::vector<ExprPtr> {
        std::vector<ExprPtr> out;
        if (op.kind == Expr::Kind::kPath) {
          for (LocationPath& v : ExpandPath(op.path)) {
            auto node = std::make_unique<Expr>();
            node->kind = Expr::Kind::kPath;
            node->path = std::move(v);
            out.push_back(std::move(node));
          }
        } else {
          out.push_back(xpath::CloneExpr(op));
        }
        return out;
      };
      std::vector<ExprPtr> lhs = operand_variants(*e.children[0]);
      std::vector<ExprPtr> rhs = operand_variants(*e.children[1]);
      ExprPtr combined;
      for (const ExprPtr& l : lhs) {
        for (const ExprPtr& r : rhs) {
          auto cmp = std::make_unique<Expr>();
          cmp->kind = Expr::Kind::kComparison;
          cmp->op = e.op;
          cmp->children.push_back(xpath::CloneExpr(*l));
          cmp->children.push_back(xpath::CloneExpr(*r));
          if (combined == nullptr) {
            combined = std::move(cmp);
          } else {
            auto parent = std::make_unique<Expr>();
            parent->kind = Expr::Kind::kOr;
            parent->children.push_back(std::move(combined));
            parent->children.push_back(std::move(cmp));
            combined = std::move(parent);
          }
        }
      }
      return combined;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
    case Expr::Kind::kNot: {
      auto node = std::make_unique<Expr>();
      node->kind = e.kind;
      for (const ExprPtr& c : e.children) {
        node->children.push_back(ExpandExpr(*c));
      }
      return node;
    }
    default:
      return xpath::CloneExpr(e);
  }
}

}  // namespace

LocationPath MergeConnectors(const LocationPath& path) {
  LocationPath out;
  out.absolute = path.absolute;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& s = path.steps[i];
    bool connector = s.axis == Axis::kDescendantOrSelf &&
                     s.test == NodeTestKind::kAnyNode &&
                     s.predicates.empty();
    if (connector && i + 1 < path.steps.size()) {
      const Step& next = path.steps[i + 1];
      if (next.axis == Axis::kChild || next.axis == Axis::kDescendant) {
        Step merged = xpath::CloneStep(next);
        merged.axis = Axis::kDescendant;
        out.steps.push_back(std::move(merged));
        ++i;
        continue;
      }
      if (next.axis == Axis::kDescendantOrSelf &&
          next.test == NodeTestKind::kAnyNode && next.predicates.empty()) {
        continue;  // '..//..//' collapses to one connector
      }
    }
    out.steps.push_back(xpath::CloneStep(s));
  }
  return out;
}

XPathExpr ExpandOrSelfSteps(const XPathExpr& expr) {
  XPathExpr out;
  for (const LocationPath& branch : expr.branches) {
    for (LocationPath& v : ExpandPath(branch)) {
      out.branches.push_back(std::move(v));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path patterns
// ---------------------------------------------------------------------------

std::string EscapeRegexLiteral(const std::string& name) {
  std::string out;
  for (char c : name) {
    switch (c) {
      case '.':
      case '*':
      case '+':
      case '?':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case '|':
      case '^':
      case '$':
      case '\\':
        out.push_back('\\');
        break;
      default:
        break;
    }
    out.push_back(c);
  }
  return out;
}

std::string NodeTestPattern(const Step& step) {
  if (step.test == NodeTestKind::kName) return EscapeRegexLiteral(step.name);
  return "[^/]+";
}

void PathPattern::AppendChild(std::string name_pattern) {
  segments_.push_back({false, std::move(name_pattern)});
}

void PathPattern::AppendDescendant(std::string name_pattern) {
  segments_.push_back({true, std::move(name_pattern)});
}

bool PathPattern::IntersectLast(const std::string& name) {
  if (name == "[^/]+") return true;  // self::* constrains nothing
  if (segments_.empty()) {
    // self on the (virtual) document root: no element exists there, so a
    // rooted empty pattern cannot satisfy a name test. Unrooted empty
    // patterns describe an unknown context; the node-set computation
    // carries the constraint instead.
    return !rooted_;
  }
  Segment& last = segments_.back();
  if (last.name_pattern == name) return true;
  if (last.name_pattern == "[^/]+") {
    last.name_pattern = name;
    return true;
  }
  return false;
}

bool PathPattern::AllChildHops() const {
  for (const Segment& s : segments_) {
    if (s.descendant_hop) return false;
  }
  return true;
}

int PathPattern::MinDepth() const {
  return static_cast<int>(segments_.size());
}

std::string PathPattern::ToRegex() const {
  std::string out = "^";
  if (!rooted_) out += ".*";
  for (const Segment& s : segments_) {
    out += s.descendant_hop ? "/(.+/)?" : "/";
    out += s.name_pattern;
  }
  out += "$";
  return out;
}

bool ExtendForwardPattern(PathPattern& pattern,
                          const std::vector<const Step*>& steps) {
  bool pending_descendant = false;
  for (const Step* step : steps) {
    switch (step->axis) {
      case Axis::kSelf:
        if (step->test == NodeTestKind::kName) {
          if (!pattern.IntersectLast(EscapeRegexLiteral(step->name))) {
            return false;
          }
        }
        break;
      case Axis::kChild:
        if (pending_descendant) {
          pattern.AppendDescendant(NodeTestPattern(*step));
          pending_descendant = false;
        } else {
          pattern.AppendChild(NodeTestPattern(*step));
        }
        break;
      case Axis::kDescendant:
        pattern.AppendDescendant(NodeTestPattern(*step));
        pending_descendant = false;
        break;
      case Axis::kDescendantOrSelf:
        if (step->test == NodeTestKind::kAnyNode) {
          pending_descendant = true;  // the '//' connector
        } else {
          // Name-tested -or-self steps are expanded away beforehand; if one
          // slips through, over-approximate with the strict axis.
          pattern.AppendDescendant(NodeTestPattern(*step));
        }
        break;
      case Axis::kAttribute:
        // Attributes do not extend the element path.
        return true;
      default:
        // Not a forward axis; callers only pass forward fragments.
        return true;
    }
  }
  if (pending_descendant) {
    // Trailing '//' connector with no following step: over-approximate as a
    // strict descendant of unknown name.
    pattern.AppendDescendant("[^/]+");
  }
  return true;
}

std::string BackwardPathRegex(const std::vector<const Step*>& steps,
                              const std::string& context_pattern) {
  std::string piece = context_pattern + "$";
  for (const Step* step : steps) {
    std::string pat = NodeTestPattern(*step);
    switch (step->axis) {
      case Axis::kParent:
        piece = pat + "/" + piece;
        break;
      case Axis::kAncestor:
        piece = pat + "/(.+/)?" + piece;
        break;
      case Axis::kAncestorOrSelf:
        // Expanded away beforehand; over-approximate with ancestor.
        piece = pat + "/(.+/)?" + piece;
        break;
      default:
        break;
    }
  }
  return "^.*/" + piece;
}

}  // namespace xprel::translate
