#include "translate/translator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include <cmath>

#include "rex/regex.h"
#include "translate/ppf.h"
#include "translate/schema_nav.h"
#include "xpath/parser.h"

namespace xprel::translate {

using rel::Add;
using rel::And;
using rel::Between;
using rel::Bin;
using rel::Col;
using rel::Concat;
using rel::Exists;
using rel::Length;
using rel::LitBytes;
using rel::LitInt;
using rel::LitStr;
using rel::Not;
using rel::Or;
using rel::RegexpLike;
using rel::SelectStmt;
using rel::SqlExpr;
using rel::SqlExprPtr;
using rel::Value;
using shred::RelationInfo;
using shred::SchemaAwareMapping;
using xpath::Axis;
using xpath::CompOp;
using xpath::Expr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;
using xsd::PathClass;
using xsd::SchemaGraph;

namespace {

// The byte appended for Dewey upper bounds (the paper's || 'F').
const char kDeweyMaxByte[] = "\xFF";

// ---------------------------------------------------------------------------
// Trivial boolean constants, with folding combinators.
// ---------------------------------------------------------------------------

SqlExprPtr MakeTrue() { return rel::Eq(LitInt(1), LitInt(1)); }
SqlExprPtr MakeFalse() { return rel::Eq(LitInt(1), LitInt(0)); }

bool IsConstBool(const SqlExpr& e, int64_t rhs) {
  return e.kind == SqlExpr::Kind::kBinary && e.op == SqlExpr::BinOp::kEq &&
         e.args[0]->kind == SqlExpr::Kind::kLiteral &&
         e.args[1]->kind == SqlExpr::Kind::kLiteral &&
         e.args[0]->literal == Value::Int(1) &&
         e.args[1]->literal == Value::Int(rhs);
}
bool IsTrueExpr(const SqlExpr& e) { return IsConstBool(e, 1); }
bool IsFalseExpr(const SqlExpr& e) { return IsConstBool(e, 0); }

SqlExprPtr FoldAnd(SqlExprPtr a, SqlExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (IsTrueExpr(*a)) return b;
  if (IsTrueExpr(*b)) return a;
  if (IsFalseExpr(*a)) return a;
  if (IsFalseExpr(*b)) return b;
  return And(std::move(a), std::move(b));
}

SqlExprPtr FoldOr(SqlExprPtr a, SqlExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (IsFalseExpr(*a)) return b;
  if (IsFalseExpr(*b)) return a;
  if (IsTrueExpr(*a)) return a;
  if (IsTrueExpr(*b)) return b;
  return Or(std::move(a), std::move(b));
}

SqlExprPtr FoldNot(SqlExprPtr a) {
  if (IsTrueExpr(*a)) return MakeFalse();
  if (IsFalseExpr(*a)) return MakeTrue();
  return Not(std::move(a));
}

SqlExpr::BinOp SqlOpOf(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return SqlExpr::BinOp::kEq;
    case CompOp::kNe:
      return SqlExpr::BinOp::kNe;
    case CompOp::kLt:
      return SqlExpr::BinOp::kLt;
    case CompOp::kLe:
      return SqlExpr::BinOp::kLe;
    case CompOp::kGt:
      return SqlExpr::BinOp::kGt;
    case CompOp::kGe:
      return SqlExpr::BinOp::kGe;
  }
  return SqlExpr::BinOp::kEq;
}

// ---------------------------------------------------------------------------
// Build state
// ---------------------------------------------------------------------------

// An alias bound in some SELECT, with everything needed to join to it.
struct AliasState {
  std::string alias;
  std::string relation;
  NodeSet nodes;          // schema nodes this alias may hold
  std::string paths_alias;  // alias of its Paths join; "" when not joined
  PathPattern fwd;        // forward path pattern describing this alias
  bool fwd_exact = false;  // fwd describes the alias's full root path
};

// One SELECT under construction. Clonable for relation-choice branching.
struct StmtBuild {
  std::unique_ptr<SelectStmt> stmt = std::make_unique<SelectStmt>();
  std::vector<AliasState> aliases;

  StmtBuild Clone() const {
    StmtBuild out;
    out.stmt = rel::CloneSelect(*stmt);
    out.aliases = aliases;
    return out;
  }

  AliasState* Find(const std::string& alias) {
    for (AliasState& a : aliases) {
      if (a.alias == alias) return &a;
    }
    return nullptr;
  }

  void AddWhere(SqlExprPtr cond) {
    if (cond == nullptr || IsTrueExpr(*cond)) return;
    stmt->where = FoldAnd(std::move(stmt->where), std::move(cond));
  }
};

// Context threaded along a PPF chain.
struct ChainCtx {
  bool has_prev = false;
  bool prev_external = false;  // prev alias lives in the enclosing SELECT
  AliasState prev;
  NavContext nodes = NavContext::DocumentRoot();
  PathPattern fwd = PathPattern::Rooted();
  bool fwd_contiguous = true;  // fwd extends through the previous PPF
};

enum class Tri { kTrue, kFalse, kFilter };

// ---------------------------------------------------------------------------
// BranchTranslator: translates one (already -or-self-expanded) branch.
// ---------------------------------------------------------------------------

class BranchTranslator {
 public:
  BranchTranslator(const SchemaAwareMapping& mapping,
                   const TranslateOptions& options)
      : mapping_(mapping), graph_(mapping.graph()), options_(options) {}

  enum class ValueMode { kNone, kText, kAttribute };

  Status TranslateBranch(const LocationPath& path,
                         std::vector<std::unique_ptr<SelectStmt>>& out,
                         ValueMode& value_mode);

 private:
  using DoneFn = std::function<Status(StmtBuild, ChainCtx)>;

  std::string NewAlias(const std::string& relation) {
    int n = ++alias_use_[relation];
    return n == 1 ? relation : relation + "_" + std::to_string(n);
  }

  // Compiles (and caches) a translation-time regex for 4.5 decisions.
  Result<const rex::Regex*> CompiledRegex(const std::string& pattern) {
    auto it = regex_cache_.find(pattern);
    if (it == regex_cache_.end()) {
      auto re = rex::Regex::Compile(pattern);
      if (!re.ok()) return re.status();
      it = regex_cache_.emplace(pattern, std::move(re).value()).first;
    }
    return &it->second;
  }

  // Section 4.5 decision for filtering `relation` rows restricted to
  // `subset` with `regex`. kTrue: filter provably redundant; kFalse: no row
  // can match; kFilter: join Paths and apply the regex.
  Result<Tri> DecidePathFilter(const RelationInfo& info, const NodeSet& subset,
                               const std::string& regex) {
    if (!options_.use_path_index) {
      // Conventional mode: no Paths joins at all. Sound only when the
      // relation holds exactly the chosen nodes' tag.
      std::set<int> chosen(subset.begin(), subset.end());
      for (int n : info.nodes) {
        if (chosen.count(n) == 0) {
          return Status::Unsupported(
              "conventional translation requires tag-unique relations "
              "(relation " + info.name + ")");
        }
      }
      return Tri::kTrue;
    }
    if (!options_.omit_redundant_path_filters) return Tri::kFilter;
    // Any involved node with unbounded paths forces the filter.
    for (int n : info.nodes) {
      if (graph_.node(n).path_class == PathClass::kInfinitePaths) {
        return Tri::kFilter;
      }
    }
    auto re = CompiledRegex(regex);
    if (!re.ok()) return re.status();
    std::set<int> chosen(subset.begin(), subset.end());
    bool any_subset_match = false;
    bool all_ok = true;  // every stored row provably satisfies the filter
    for (int n : info.nodes) {
      for (const std::string& p : graph_.node(n).root_paths) {
        bool m = re.value()->Matches(p);
        if (chosen.count(n) > 0 && m) any_subset_match = true;
        if (!m) all_ok = false;        // a stored row the filter would drop
        if (m && chosen.count(n) == 0) {
          // A row outside the chosen subset would pass the regex; the
          // navigation said it should not qualify, but the regex cannot
          // tell them apart — keep the filter (conservative; joins decide).
          // Note: this can only loosen results within the same relation and
          // identical paths, which navigation would have included anyway.
        }
      }
    }
    if (!any_subset_match) return Tri::kFalse;
    return all_ok ? Tri::kTrue : Tri::kFilter;
  }

  // Adds (once) the Paths join for `alias` in `build`.
  std::string EnsurePathsJoin(StmtBuild& build, const std::string& alias) {
    AliasState* st = build.Find(alias);
    if (!st->paths_alias.empty()) return st->paths_alias;
    std::string paths_alias = alias + "_Paths";
    build.stmt->from.push_back({shred::kPathsTable, paths_alias});
    build.AddWhere(rel::Eq(Col(alias, shred::kPathIdColumn),
                           Col(paths_alias, shred::kIdColumn)));
    st->paths_alias = paths_alias;
    return paths_alias;
  }

  // REGEXP_LIKE condition on the alias's root-to-node path. `target` is the
  // build that owns the alias.
  SqlExprPtr PathRegexCondition(StmtBuild& target, const std::string& alias,
                                const std::string& regex) {
    std::string paths_alias = EnsurePathsJoin(target, alias);
    return RegexpLike(Col(paths_alias, shred::kPathsPathColumn), regex);
  }

  // Name pattern describing the tags of a node subset ("item" or
  // "(namerica|samerica)" or "[^/]+").
  std::string TagPattern(const NodeSet& subset) {
    std::set<std::string> tags;
    for (int n : subset) tags.insert(graph_.node(n).tag);
    if (tags.empty()) return "[^/]+";
    if (tags.size() == 1) return EscapeRegexLiteral(*tags.begin());
    std::string out = "(";
    bool first = true;
    for (const std::string& t : tags) {
      if (!first) out += "|";
      out += EscapeRegexLiteral(t);
      first = false;
    }
    out += ")";
    return out;
  }

  // --- structural joins (paper Table 2 / Algorithm 1 lines 8-14) ---------

  struct DepthInfo {
    bool fixed = true;
    int child_hops = 0;
  };

  static DepthInfo ForwardDepth(const Ppf& ppf) {
    DepthInfo d;
    for (const Step* s : ppf.steps) {
      switch (s->axis) {
        case Axis::kChild:
          ++d.child_hops;
          break;
        case Axis::kSelf:
        case Axis::kAttribute:
          break;
        default:
          d.fixed = false;
          ++d.child_hops;  // at least one hop
          break;
      }
    }
    return d;
  }

  static DepthInfo BackwardDepth(const Ppf& ppf) {
    DepthInfo d;
    for (const Step* s : ppf.steps) {
      if (s->axis == Axis::kParent) {
        ++d.child_hops;
      } else {
        d.fixed = false;
        ++d.child_hops;
      }
    }
    return d;
  }

  // FK column on `child_rel` referencing `parent_rel`, or "".
  std::string FkColumn(const std::string& child_rel,
                       const std::string& parent_rel) const {
    const RelationInfo* info = mapping_.FindRelation(child_rel);
    if (info == nullptr) return "";
    auto it = info->parent_fk_columns.find(parent_rel);
    return it == info->parent_fk_columns.end() ? "" : it->second;
  }

  // Emits the join between the previous prominent alias and the current
  // one. Returns false when the join is provably unsatisfiable.
  bool EmitStructuralJoin(StmtBuild& build, const ChainCtx& ctx,
                          const AliasState& cur, const Ppf& ppf) {
    const AliasState& prev = ctx.prev;
    auto dewey = [](const AliasState& a) {
      return Col(a.alias, shred::kDeweyColumn);
    };
    auto upper = [&](const AliasState& a) {
      return Concat(dewey(a), LitBytes(kDeweyMaxByte));
    };

    switch (ppf.kind) {
      case PpfKind::kForward: {
        DepthInfo d = ForwardDepth(ppf);
        if (options_.fk_joins_for_child_parent && ppf.IsSingleStep() &&
            ppf.prominent().axis == Axis::kChild) {
          std::string fk = FkColumn(cur.relation, prev.relation);
          if (!fk.empty()) {
            build.AddWhere(
                rel::Eq(Col(cur.alias, fk), Col(prev.alias, shred::kIdColumn)));
            return true;
          }
          return false;  // schema says prev can never parent cur
        }
        // Lemma 1 is strict (descendant, not -or-self): d(cur) > d(prev)
        // AND d(cur) < d(prev) || 0xFF. (-or-self steps are expanded away.)
        SqlExprPtr cond =
            And(Bin(SqlExpr::BinOp::kGt, dewey(cur), dewey(prev)),
                Bin(SqlExpr::BinOp::kLt, dewey(cur), upper(prev)));
        if (d.fixed) {
          cond = And(std::move(cond),
                     rel::Eq(Length(dewey(cur)),
                             Add(Length(dewey(prev)),
                                 LitInt(3 * d.child_hops))));
        }
        build.AddWhere(std::move(cond));
        return true;
      }
      case PpfKind::kBackward: {
        DepthInfo d = BackwardDepth(ppf);
        if (options_.fk_joins_for_child_parent && ppf.IsSingleStep() &&
            ppf.prominent().axis == Axis::kParent) {
          std::string fk = FkColumn(prev.relation, cur.relation);
          if (!fk.empty()) {
            build.AddWhere(
                rel::Eq(Col(prev.alias, fk), Col(cur.alias, shred::kIdColumn)));
            return true;
          }
          return false;
        }
        SqlExprPtr cond =
            And(Bin(SqlExpr::BinOp::kGt, dewey(prev), dewey(cur)),
                Bin(SqlExpr::BinOp::kLt, dewey(prev), upper(cur)));
        if (d.fixed) {
          cond = And(std::move(cond),
                     rel::Eq(Length(dewey(prev)),
                             Add(Length(dewey(cur)),
                                 LitInt(3 * d.child_hops))));
        }
        build.AddWhere(std::move(cond));
        return true;
      }
      case PpfKind::kOrder: {
        Axis axis = ppf.prominent().axis;
        if (axis == Axis::kFollowing) {
          build.AddWhere(
              Bin(SqlExpr::BinOp::kGt, dewey(cur), upper(prev)));
          return true;
        }
        if (axis == Axis::kPreceding) {
          build.AddWhere(
              Bin(SqlExpr::BinOp::kGt, dewey(prev), upper(cur)));
          return true;
        }
        // Sibling axes: order comparison + shared parent FK.
        SqlExprPtr order_cond =
            axis == Axis::kFollowingSibling
                ? Bin(SqlExpr::BinOp::kGt, dewey(cur), dewey(prev))
                : Bin(SqlExpr::BinOp::kLt, dewey(cur), dewey(prev));
        // Common parent relations of both subsets.
        std::set<std::string> prev_parents, common;
        for (int n : prev.nodes) {
          for (int p : graph_.node(n).parents) {
            prev_parents.insert(mapping_.RelationOf(p));
          }
        }
        for (int n : cur.nodes) {
          for (int p : graph_.node(n).parents) {
            const std::string& r = mapping_.RelationOf(p);
            if (prev_parents.count(r) > 0) common.insert(r);
          }
        }
        SqlExprPtr par_cond;
        for (const std::string& prel : common) {
          std::string cur_fk = FkColumn(cur.relation, prel);
          std::string prev_fk = FkColumn(prev.relation, prel);
          if (cur_fk.empty() || prev_fk.empty()) continue;
          par_cond = FoldOr(std::move(par_cond),
                            rel::Eq(Col(cur.alias, cur_fk),
                                    Col(prev.alias, prev_fk)));
        }
        if (par_cond == nullptr) return false;  // no shared parent possible
        build.AddWhere(And(std::move(order_cond), std::move(par_cond)));
        return true;
      }
    }
    return false;
  }

  // --- chain building ------------------------------------------------------

  // Processes PPFs [i..) of a chain into `build`, branching on relation
  // choices; calls `done` for every completed (non-pruned) chain.
  // `outer` points to the enclosing SELECT's build when translating a
  // predicate path (so backward regexes can reach the outer Paths join).
  Status BuildChain(StmtBuild build, StmtBuild* outer,
                    const std::vector<Ppf>& ppfs, size_t i, ChainCtx ctx,
                    const DoneFn& done) {
    if (i == ppfs.size()) return done(std::move(build), std::move(ctx));
    const Ppf& ppf = ppfs[i];

    // Pure-self fragments restrict the previous alias instead of adding a
    // relation (they arise from -or-self expansion).
    bool all_self = ppf.kind == PpfKind::kForward;
    for (const Step* s : ppf.steps) {
      if (s->axis != Axis::kSelf) {
        all_self = false;
        break;
      }
    }
    if (all_self) return BuildSelfFragment(std::move(build), outer, ppfs, i,
                                           std::move(ctx), done);

    // Node set reachable through this fragment.
    NodeSet nodes = ApplySteps(graph_, ctx.nodes, ppf.steps);
    if (nodes.empty()) return Status::Ok();  // schema-infeasible: prune

    // Extend / reset the forward path pattern.
    PathPattern fwd;
    bool fwd_exact = false;
    if (ppf.kind == PpfKind::kForward) {
      if (ctx.fwd_contiguous) {
        fwd = ctx.fwd;
      } else {
        fwd = PathPattern::Unrooted();
        if (ctx.has_prev) fwd.AppendChild(TagPattern(ctx.prev.nodes));
      }
      if (!ExtendForwardPattern(fwd, ppf.steps)) return Status::Ok();
      fwd_exact = true;
    }

    // Group the node set by relation (SQL splitting, Section 4.4).
    std::map<std::string, NodeSet> by_relation;
    for (int n : nodes) by_relation[mapping_.RelationOf(n)].push_back(n);

    for (auto& [relation, subset] : by_relation) {
      StmtBuild b = build.Clone();
      AliasState cur;
      cur.alias = NewAlias(relation);
      cur.relation = relation;
      cur.nodes = subset;
      cur.fwd = fwd;
      cur.fwd_exact = fwd_exact;
      b.stmt->from.push_back({relation, cur.alias});
      b.aliases.push_back(cur);

      const RelationInfo* info = mapping_.FindRelation(relation);

      // Path filtering (Algorithm 1 lines 2-7).
      bool pruned = false;
      if (ppf.kind == PpfKind::kForward) {
        auto tri = DecidePathFilter(*info, subset, fwd.ToRegex());
        if (!tri.ok()) return tri.status();
        if (*tri == Tri::kFalse) continue;
        if (*tri == Tri::kFilter) {
          b.AddWhere(PathRegexCondition(b, cur.alias, fwd.ToRegex()));
        }
      } else if (ppf.kind == PpfKind::kBackward) {
        // Regex on the *previous* prominent's path (lines 4-5).
        if (ctx.has_prev) {
          std::string regex =
              BackwardPathRegex(ppf.steps, TagPattern(ctx.prev.nodes));
          const RelationInfo* prev_info =
              mapping_.FindRelation(ctx.prev.relation);
          auto tri = DecidePathFilter(*prev_info, ctx.prev.nodes, regex);
          if (!tri.ok()) return tri.status();
          if (*tri == Tri::kFalse) {
            pruned = true;
          } else if (*tri == Tri::kFilter) {
            StmtBuild& target =
                ctx.prev_external && outer != nullptr ? *outer : b;
            // The Paths join lives with the alias's owner; the condition
            // belongs to this SELECT.
            std::string paths_alias =
                EnsurePathsJoin(target, ctx.prev.alias);
            b.AddWhere(RegexpLike(
                Col(paths_alias, shred::kPathsPathColumn), regex));
          }
        }
        if (pruned) continue;
        // The backward prominent's own path filter: its path must end with
        // its tag — usually implied by the relation; check cheaply.
        std::string own_regex = "^.*/" + TagPattern(subset) + "$";
        auto tri = DecidePathFilter(*info, subset, own_regex);
        if (!tri.ok()) return tri.status();
        if (*tri == Tri::kFalse) continue;
        if (*tri == Tri::kFilter) {
          b.AddWhere(PathRegexCondition(b, cur.alias, own_regex));
        }
      } else {  // kOrder (lines 6-7): path ends with the step's name test
        std::string own_regex =
            "^.*/" + NodeTestPattern(ppf.prominent()) + "$";
        auto tri = DecidePathFilter(*info, subset, own_regex);
        if (!tri.ok()) return tri.status();
        if (*tri == Tri::kFalse) continue;
        if (*tri == Tri::kFilter) {
          b.AddWhere(PathRegexCondition(b, cur.alias, own_regex));
        }
      }

      // Structural join to the previous prominent (lines 8-14).
      if (ctx.has_prev) {
        if (!EmitStructuralJoin(b, ctx, cur, ppf)) continue;
      }

      // Predicates of the prominent step (lines 15-16).
      bool predicate_false = false;
      for (const xpath::ExprPtr& pred : ppf.prominent().predicates) {
        auto cond = TranslatePredicate(b, cur, *pred);
        if (!cond.ok()) return cond.status();
        if (IsFalseExpr(*cond.value())) {
          predicate_false = true;
          break;
        }
        b.AddWhere(std::move(cond).value());
      }
      if (predicate_false) continue;

      ChainCtx next;
      next.has_prev = true;
      next.prev_external = false;
      next.prev = *b.Find(cur.alias);
      next.nodes = NavContext::Of(subset);
      next.fwd = fwd;
      next.fwd_contiguous = ppf.kind == PpfKind::kForward;
      XPREL_RETURN_IF_ERROR(
          BuildChain(std::move(b), outer, ppfs, i + 1, std::move(next), done));
    }
    return Status::Ok();
  }

  Status BuildSelfFragment(StmtBuild build, StmtBuild* outer,
                           const std::vector<Ppf>& ppfs, size_t i,
                           ChainCtx ctx, const DoneFn& done) {
    const Ppf& ppf = ppfs[i];
    NodeSet nodes = ApplySteps(graph_, ctx.nodes, ppf.steps);
    if (nodes.empty()) return Status::Ok();
    if (!ctx.has_prev) {
      // self on the document root context: no element there.
      return Status::Ok();
    }
    PathPattern fwd = ctx.fwd;
    if (ctx.fwd_contiguous && !ExtendForwardPattern(fwd, ppf.steps)) {
      return Status::Ok();
    }
    // Narrow the previous alias's node set; re-check its path filter with
    // the intersected pattern.
    ctx.prev.nodes = nodes;
    ctx.nodes = NavContext::Of(nodes);
    if (ctx.fwd_contiguous && ctx.prev.fwd_exact) {
      const RelationInfo* info = mapping_.FindRelation(ctx.prev.relation);
      auto tri = DecidePathFilter(*info, nodes, fwd.ToRegex());
      if (!tri.ok()) return tri.status();
      if (*tri == Tri::kFalse) return Status::Ok();
      if (*tri == Tri::kFilter) {
        StmtBuild& target =
            ctx.prev_external && outer != nullptr ? *outer : build;
        std::string paths_alias = EnsurePathsJoin(target, ctx.prev.alias);
        build.AddWhere(RegexpLike(
            Col(paths_alias, shred::kPathsPathColumn), fwd.ToRegex()));
      }
      ctx.fwd = fwd;
      ctx.prev.fwd = fwd;
    }
    // Predicates on the self step apply to the previous alias.
    StmtBuild b = std::move(build);
    for (const xpath::ExprPtr& pred : ppf.prominent().predicates) {
      auto cond = TranslatePredicate(b, ctx.prev, *pred);
      if (!cond.ok()) return cond.status();
      if (IsFalseExpr(*cond.value())) return Status::Ok();
      b.AddWhere(std::move(cond).value());
    }
    return BuildChain(std::move(b), outer, ppfs, i + 1, std::move(ctx), done);
  }

  // --- predicates ----------------------------------------------------------

  static bool IsBackwardSimplePath(const LocationPath& path) {
    if (path.absolute || path.steps.empty()) return false;
    for (const Step& s : path.steps) {
      if (!xpath::IsBackwardAxis(s.axis)) return false;
      if (!s.predicates.empty()) return false;
    }
    return true;
  }

  static bool IsAttributeOnlyPath(const LocationPath& path) {
    return !path.absolute && path.steps.size() == 1 &&
           path.steps[0].axis == Axis::kAttribute &&
           path.steps[0].predicates.empty();
  }

  // Attribute column of `ctx` for @name, or "" when no node declares it.
  std::string AttrColumn(const AliasState& ctx, const std::string& name) {
    const RelationInfo* info = mapping_.FindRelation(ctx.relation);
    if (info == nullptr) return "";
    auto it = info->attr_columns.find(name);
    if (it == info->attr_columns.end()) return "";
    // Require at least one node in the subset to declare it.
    for (int n : ctx.nodes) {
      const auto& attrs = graph_.node(n).attributes;
      if (std::find(attrs.begin(), attrs.end(), name) != attrs.end()) {
        return it->second;
      }
    }
    return "";
  }

  Result<SqlExprPtr> TranslatePredicate(StmtBuild& outer,
                                        const AliasState& ctx,
                                        const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAnd: {
        auto a = TranslatePredicate(outer, ctx, *expr.children[0]);
        if (!a.ok()) return a.status();
        auto b = TranslatePredicate(outer, ctx, *expr.children[1]);
        if (!b.ok()) return b.status();
        return FoldAnd(std::move(a).value(), std::move(b).value());
      }
      case Expr::Kind::kOr: {
        auto a = TranslatePredicate(outer, ctx, *expr.children[0]);
        if (!a.ok()) return a.status();
        auto b = TranslatePredicate(outer, ctx, *expr.children[1]);
        if (!b.ok()) return b.status();
        return FoldOr(std::move(a).value(), std::move(b).value());
      }
      case Expr::Kind::kNot: {
        auto a = TranslatePredicate(outer, ctx, *expr.children[0]);
        if (!a.ok()) return a.status();
        return FoldNot(std::move(a).value());
      }
      case Expr::Kind::kPath:
        return TranslatePathTest(outer, ctx, expr.path);
      case Expr::Kind::kComparison:
        return TranslateComparison(outer, ctx, expr);
      case Expr::Kind::kString:
        return expr.str_value.empty() ? MakeFalse() : MakeTrue();
      case Expr::Kind::kNumber:
        return Status::Unsupported(
            "bare numeric (position) predicates are not translatable");
      case Expr::Kind::kPosition:
        return Status::Unsupported("position() is not translatable");
    }
    return Status::Internal("unhandled predicate kind");
  }

  // Existence test of a path predicate clause.
  Result<SqlExprPtr> TranslatePathTest(StmtBuild& outer, const AliasState& ctx,
                                       const LocationPath& path) {
    if (IsAttributeOnlyPath(path)) {
      const Step& s = path.steps[0];
      if (s.test == NodeTestKind::kName) {
        std::string col = AttrColumn(ctx, s.name);
        if (col.empty()) return MakeFalse();
        auto isnull = std::make_unique<SqlExpr>();
        isnull->kind = SqlExpr::Kind::kIsNull;
        isnull->args.push_back(Col(ctx.alias, col));
        return FoldNot(std::move(isnull));
      }
      // @*: any declared attribute non-null.
      const RelationInfo* info = mapping_.FindRelation(ctx.relation);
      SqlExprPtr any;
      for (const auto& [attr, col] : info->attr_columns) {
        auto isnull = std::make_unique<SqlExpr>();
        isnull->kind = SqlExpr::Kind::kIsNull;
        isnull->args.push_back(Col(ctx.alias, col));
        any = FoldOr(std::move(any), FoldNot(std::move(isnull)));
      }
      return any == nullptr ? MakeFalse() : std::move(any);
    }

    if (IsBackwardSimplePath(path) && options_.backward_predicate_regex &&
        options_.use_path_index) {
      // Table 5-2: fold into a regex on the context's own root path.
      std::vector<const Step*> steps;
      for (const Step& s : path.steps) steps.push_back(&s);
      // Feasibility via navigation.
      if (ApplySteps(graph_, NavContext::Of(ctx.nodes), steps).empty()) {
        return MakeFalse();
      }
      std::string regex = BackwardPathRegex(steps, TagPattern(ctx.nodes));
      const RelationInfo* info = mapping_.FindRelation(ctx.relation);
      auto tri = DecidePathFilter(*info, ctx.nodes, regex);
      if (!tri.ok()) return tri.status();
      if (*tri == Tri::kTrue) return MakeTrue();
      if (*tri == Tri::kFalse) return MakeFalse();
      return PathRegexCondition(outer, ctx.alias, regex);
    }

    // General clause: EXISTS sub-select(s), one per relation-choice chain.
    return BuildExistsClauses(
        outer, ctx, path,
        [](StmtBuild&, const ChainCtx&) { return Status::Ok(); });
  }

  // Value column (for comparisons) of the final chain context: the text
  // column, or the attribute column when the prominent step is @name.
  // Returns "" to prune.
  std::string ValueColumn(const ChainCtx& ctx, const Ppf& last_ppf) {
    const Step& prom = last_ppf.prominent();
    if (prom.axis == Axis::kAttribute) {
      if (prom.test != NodeTestKind::kName) return "";
      return AttrColumn(ctx.prev, prom.name);
    }
    const RelationInfo* info = mapping_.FindRelation(ctx.prev.relation);
    if (info == nullptr || !info->has_text) return "";
    return shred::kTextColumn;
  }

  // Runs the chain machinery for a predicate path and wraps every complete
  // chain into EXISTS(...), OR-ing the alternatives. `finish` may add value
  // restrictions to the sub-select (returning non-OK to abort, or may prune
  // by setting the where to FALSE).
  Result<SqlExprPtr> BuildExistsClauses(
      StmtBuild& outer, const AliasState& ctx, const LocationPath& path,
      const std::function<Status(StmtBuild&, const ChainCtx&)>& finish) {
    auto split = SplitIntoPpfs(path);
    if (!split.ok()) return split.status();
    std::vector<Ppf> ppf_list = options_.per_step_fragments
                                    ? ExplodePerStep(split.value())
                                    : std::move(split).value();
    if (ppf_list.empty()) {
      return Status::Unsupported("empty predicate path");
    }

    ChainCtx start;
    if (path.absolute) {
      start.has_prev = false;
      start.nodes = NavContext::DocumentRoot();
      start.fwd = PathPattern::Rooted();
      start.fwd_contiguous = true;
    } else {
      start.has_prev = true;
      start.prev_external = true;
      start.prev = ctx;
      start.nodes = NavContext::Of(ctx.nodes);
      start.fwd = ctx.fwd;
      start.fwd_contiguous = ctx.fwd_exact;
    }

    SqlExprPtr combined;
    Status st = BuildChain(
        StmtBuild{}, &outer, ppf_list, 0, start,
        [&](StmtBuild sub, ChainCtx end_ctx) -> Status {
          XPREL_RETURN_IF_ERROR(finish(sub, end_ctx));
          if (sub.stmt->where != nullptr && IsFalseExpr(*sub.stmt->where)) {
            return Status::Ok();  // pruned by finisher
          }
          if (sub.stmt->from.empty()) {
            // Chain added no relation (pure-self path): the condition is
            // whatever the finisher put in `where` against outer aliases.
            SqlExprPtr cond = std::move(sub.stmt->where);
            combined = FoldOr(std::move(combined),
                              cond == nullptr ? MakeTrue() : std::move(cond));
            return Status::Ok();
          }
          combined = FoldOr(std::move(combined), Exists(std::move(sub.stmt)));
          return Status::Ok();
        });
    if (!st.ok()) return st;
    if (combined == nullptr) return MakeFalse();
    return combined;
  }

  Result<SqlExprPtr> TranslateComparison(StmtBuild& outer,
                                         const AliasState& ctx,
                                         const Expr& expr) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];
    if (lhs.kind == Expr::Kind::kPosition ||
        rhs.kind == Expr::Kind::kPosition) {
      return Status::Unsupported("position() is not translatable");
    }

    auto literal_of = [](const Expr& e) -> SqlExprPtr {
      if (e.kind == Expr::Kind::kString) return LitStr(e.str_value);
      if (e.kind == Expr::Kind::kNumber) {
        double intpart = 0;
        if (std::modf(e.num_value, &intpart) == 0.0) {
          return LitInt(static_cast<int64_t>(intpart));
        }
        return rel::Lit(Value::Real(e.num_value));
      }
      return nullptr;
    };

    bool lhs_path = lhs.kind == Expr::Kind::kPath;
    bool rhs_path = rhs.kind == Expr::Kind::kPath;

    if (!lhs_path && !rhs_path) {
      // Constant comparison: fold statically via the printer-level values.
      SqlExprPtr l = literal_of(lhs);
      SqlExprPtr r = literal_of(rhs);
      if (l == nullptr || r == nullptr) {
        return Status::Unsupported("unsupported comparison operands");
      }
      // Cheap fold for equal/unequal literals; other ops rare.
      bool eq = l->literal == r->literal;
      switch (expr.op) {
        case CompOp::kEq:
          return eq ? MakeTrue() : MakeFalse();
        case CompOp::kNe:
          return eq ? MakeFalse() : MakeTrue();
        default:
          return Status::Unsupported("constant ordering comparison");
      }
    }

    if (lhs_path && rhs_path) {
      return TranslatePathJoinComparison(outer, ctx, lhs.path, rhs.path,
                                         expr.op);
    }

    const LocationPath& path = lhs_path ? lhs.path : rhs.path;
    SqlExprPtr lit = literal_of(lhs_path ? rhs : lhs);
    if (lit == nullptr) {
      return Status::Unsupported("unsupported comparison operand");
    }
    CompOp op = expr.op;
    if (!lhs_path) {
      // literal op path  ->  path flipped-op literal
      switch (op) {
        case CompOp::kLt:
          op = CompOp::kGt;
          break;
        case CompOp::kLe:
          op = CompOp::kGe;
          break;
        case CompOp::kGt:
          op = CompOp::kLt;
          break;
        case CompOp::kGe:
          op = CompOp::kLe;
          break;
        default:
          break;
      }
    }

    // @attr op literal directly on the context relation (Table 3-1).
    if (IsAttributeOnlyPath(path) &&
        path.steps[0].test == NodeTestKind::kName) {
      std::string col = AttrColumn(ctx, path.steps[0].name);
      if (col.empty()) return MakeFalse();
      return Bin(SqlOpOf(op), Col(ctx.alias, col),
                 rel::CloneSqlExpr(*lit));
    }

    // General: EXISTS with a value restriction on the final prominent.
    auto ppfs = SplitIntoPpfs(path);
    if (!ppfs.ok()) return ppfs.status();
    if (ppfs.value().empty()) {
      return Status::Unsupported("empty comparison path");
    }
    const Ppf last = ppfs.value().back();  // copy of descriptor (borrowed steps)
    return BuildExistsClauses(
        outer, ctx, path,
        [&](StmtBuild& sub, const ChainCtx& end_ctx) -> Status {
          std::string col = ValueColumn(end_ctx, last);
          if (col.empty()) {
            sub.stmt->where = MakeFalse();
            return Status::Ok();
          }
          sub.AddWhere(Bin(SqlOpOf(op), Col(end_ctx.prev.alias, col),
                           rel::CloneSqlExpr(*lit)));
          return Status::Ok();
        });
  }

  // Predicate join-clause: path1 op path2 (both node sets; existential).
  Result<SqlExprPtr> TranslatePathJoinComparison(StmtBuild& outer,
                                                 const AliasState& ctx,
                                                 const LocationPath& path1,
                                                 const LocationPath& path2,
                                                 CompOp op) {
    auto ppfs1 = SplitIntoPpfs(path1);
    if (!ppfs1.ok()) return ppfs1.status();
    auto split2 = SplitIntoPpfs(path2);
    if (!split2.ok()) return split2.status();
    std::vector<Ppf> ppfs2 = options_.per_step_fragments
                                 ? ExplodePerStep(split2.value())
                                 : std::move(split2).value();
    if (ppfs1.value().empty() || ppfs2.empty()) {
      return Status::Unsupported("empty comparison path");
    }
    const Ppf last1 = ppfs1.value().back();
    const Ppf last2 = ppfs2.back();

    // Chain path1, then inside each complete chain run path2's chain into
    // the same sub-select and add the theta join between value columns.
    return BuildExistsClauses(
        outer, ctx, path1,
        [&](StmtBuild& sub, const ChainCtx& end1) -> Status {
          std::string col1 = ValueColumn(end1, last1);
          if (col1.empty()) {
            sub.stmt->where = MakeFalse();
            return Status::Ok();
          }
          ChainCtx start2;
          if (path2.absolute) {
            start2.has_prev = false;
            start2.nodes = NavContext::DocumentRoot();
            start2.fwd = PathPattern::Rooted();
          } else {
            start2.has_prev = true;
            start2.prev_external = true;  // ctx is in the enclosing SELECT
            start2.prev = ctx;
            start2.nodes = NavContext::Of(ctx.nodes);
            start2.fwd = ctx.fwd;
            start2.fwd_contiguous = ctx.fwd_exact;
          }
          // Run path2's chains into clones of `sub`; pick them up by
          // rebuilding `sub` as the OR is not expressible inside one
          // EXISTS body's FROM — instead we nest another EXISTS.
          SqlExprPtr inner;
          Status st = BuildChain(
              StmtBuild{}, &sub, ppfs2, 0, start2,
              [&](StmtBuild sub2, ChainCtx end2) -> Status {
                std::string col2 = ValueColumn(end2, last2);
                if (col2.empty()) return Status::Ok();
                sub2.AddWhere(Bin(SqlOpOf(op),
                                  Col(end1.prev.alias, col1),
                                  Col(end2.prev.alias, col2)));
                if (sub2.stmt->from.empty()) {
                  SqlExprPtr cond = std::move(sub2.stmt->where);
                  inner = FoldOr(std::move(inner), std::move(cond));
                  return Status::Ok();
                }
                inner =
                    FoldOr(std::move(inner), Exists(std::move(sub2.stmt)));
                return Status::Ok();
              });
          if (!st.ok()) return st;
          if (inner == nullptr) {
            sub.stmt->where = MakeFalse();
            return Status::Ok();
          }
          sub.AddWhere(std::move(inner));
          return Status::Ok();
        });
  }

  // Rewrites each multi-step forward fragment into single-step fragments,
  // merging '//' connectors into the following step as a descendant axis —
  // the conventional one-join-per-step shape. Synthesized steps are owned
  // by `owned_steps_`.
  std::vector<Ppf> ExplodePerStep(const std::vector<Ppf>& ppfs) {
    std::vector<Ppf> out;
    for (const Ppf& ppf : ppfs) {
      if (ppf.kind != PpfKind::kForward) {
        out.push_back(ppf);
        continue;
      }
      bool pending_connector = false;
      for (const Step* step : ppf.steps) {
        if (step->axis == Axis::kDescendantOrSelf &&
            step->test == NodeTestKind::kAnyNode &&
            step->predicates.empty()) {
          pending_connector = true;
          continue;
        }
        const Step* use = step;
        if (pending_connector && step->axis == Axis::kChild) {
          auto merged = std::make_unique<Step>(xpath::CloneStep(*step));
          merged->axis = Axis::kDescendant;
          use = merged.get();
          owned_steps_.push_back(std::move(merged));
        }
        pending_connector = false;
        // Attribute steps never travel alone: they stay with the owner
        // element's fragment (the attribute is a column, not a join).
        if (use->axis == Axis::kAttribute && !out.empty() &&
            out.back().kind == PpfKind::kForward) {
          out.back().steps.push_back(use);
          continue;
        }
        Ppf single;
        single.kind = PpfKind::kForward;
        single.steps.push_back(use);
        out.push_back(std::move(single));
      }
      if (pending_connector) {
        // Trailing '//' connector: a descendant::node() step.
        auto synth = std::make_unique<Step>();
        synth->axis = Axis::kDescendant;
        synth->test = NodeTestKind::kAnyNode;
        Ppf single;
        single.kind = PpfKind::kForward;
        single.steps.push_back(synth.get());
        owned_steps_.push_back(std::move(synth));
        out.push_back(std::move(single));
      }
    }
    return out;
  }

  const SchemaAwareMapping& mapping_;
  const SchemaGraph& graph_;
  const TranslateOptions& options_;
  std::map<std::string, int> alias_use_;
  std::map<std::string, rex::Regex> regex_cache_;
  std::vector<std::unique_ptr<Step>> owned_steps_;
};

Status BranchTranslator::TranslateBranch(
    const LocationPath& path, std::vector<std::unique_ptr<SelectStmt>>& out,
    ValueMode& value_mode) {
  if (path.steps.empty()) {
    return Status::Unsupported("a bare '/' selects the document root node");
  }

  // Trailing text() becomes a value projection on the owner element.
  LocationPath work = xpath::ClonePath(path);
  value_mode = ValueMode::kNone;
  const Step& last = work.steps.back();
  if (last.test == NodeTestKind::kText) {
    if (last.axis != Axis::kChild || !last.predicates.empty()) {
      return Status::Unsupported("text() only as a plain final step");
    }
    work.steps.pop_back();
    value_mode = ValueMode::kText;
    if (work.steps.empty()) {
      return Status::Unsupported("text() of the document root");
    }
  } else if (last.axis == Axis::kAttribute) {
    value_mode = ValueMode::kAttribute;
  }

  auto split = SplitIntoPpfs(work);
  if (!split.ok()) return split.status();
  std::vector<Ppf> ppf_list = options_.per_step_fragments
                                  ? ExplodePerStep(split.value())
                                  : std::move(split).value();

  ChainCtx start;  // document root (top-level relative paths share it)
  const Ppf last_ppf = ppf_list.back();

  return BuildChain(
      StmtBuild{}, nullptr, ppf_list, 0, start,
      [&](StmtBuild build, ChainCtx end_ctx) -> Status {
        if (build.stmt->from.empty()) return Status::Ok();
        SelectStmt& stmt = *build.stmt;
        const std::string& alias = end_ctx.prev.alias;
        stmt.distinct = true;
        stmt.select.push_back({Col(alias, shred::kIdColumn), "id"});
        stmt.select.push_back(
            {Col(alias, shred::kDeweyColumn), "dewey_pos"});
        if (value_mode == ValueMode::kText) {
          const RelationInfo* info =
              mapping_.FindRelation(end_ctx.prev.relation);
          if (info == nullptr || !info->has_text) return Status::Ok();
          stmt.select.push_back({Col(alias, shred::kTextColumn), "value"});
          build.AddWhere(Bin(SqlExpr::BinOp::kNe,
                             Col(alias, shred::kTextColumn), LitStr("")));
        } else if (value_mode == ValueMode::kAttribute) {
          std::string col = ValueColumn(end_ctx, last_ppf);
          if (col.empty()) return Status::Ok();
          stmt.select.push_back({Col(alias, col), "value"});
          auto isnull = std::make_unique<SqlExpr>();
          isnull->kind = SqlExpr::Kind::kIsNull;
          isnull->args.push_back(Col(alias, col));
          build.AddWhere(FoldNot(std::move(isnull)));
        }
        stmt.order_by.push_back({Col(alias, shred::kDeweyColumn), true});
        out.push_back(std::move(build.stmt));
        return Status::Ok();
      });
}

}  // namespace

PpfTranslator::PpfTranslator(const SchemaAwareMapping& mapping,
                             TranslateOptions options)
    : mapping_(mapping), options_(options) {}

Result<TranslatedQuery> PpfTranslator::Translate(const XPathExpr& expr) const {
  XPathExpr expanded = ExpandOrSelfSteps(expr);

  TranslatedQuery out;
  std::set<std::string> seen_sql;
  bool value_mode_set = false;
  BranchTranslator::ValueMode overall_mode = BranchTranslator::ValueMode::kNone;

  for (const LocationPath& branch : expanded.branches) {
    BranchTranslator bt(mapping_, options_);
    std::vector<std::unique_ptr<SelectStmt>> selects;
    BranchTranslator::ValueMode mode = BranchTranslator::ValueMode::kNone;
    XPREL_RETURN_IF_ERROR(bt.TranslateBranch(branch, selects, mode));
    if (!selects.empty()) {
      if (value_mode_set && mode != overall_mode) {
        return Status::Unsupported(
            "union branches project incompatible results");
      }
      overall_mode = mode;
      value_mode_set = true;
    }
    for (auto& s : selects) {
      std::string text = rel::SqlToString(*s);
      if (seen_sql.insert(text).second) {
        out.sql.selects.push_back(std::move(s));
      }
    }
  }
  out.projects_value =
      overall_mode != BranchTranslator::ValueMode::kNone && value_mode_set;
  out.statically_empty = out.sql.selects.empty();
  return out;
}

Result<TranslatedQuery> PpfTranslator::TranslateString(
    std::string_view xpath) const {
  auto parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Translate(parsed.value());
}

}  // namespace xprel::translate
