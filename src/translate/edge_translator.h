#ifndef XPREL_TRANSLATE_EDGE_TRANSLATOR_H_
#define XPREL_TRANSLATE_EDGE_TRANSLATOR_H_

#include <string_view>

#include "common/result.h"
#include "translate/translator.h"
#include "xpath/ast.h"

namespace xprel::translate {

// PPF-based XPath-to-SQL translation over the schema-oblivious Edge mapping
// (paper Section 5.1, "Edge-like PPF"). The same machinery — PPF splitting,
// regex path filtering, Dewey structural joins — applied to a store where
// every element is a tuple of one central Edge relation:
//   * every PPF binds to the Edge table (self-joins), so there is never SQL
//     splitting, but joins are big-table self-joins;
//   * every forward PPF must join Paths (no schema marking exists, so no
//     4.5 omission);
//   * attribute tests become EXISTS probes into the separate Attr relation
//     (the mapping cannot inline attributes as columns — the extra join the
//     paper's Section 5.1 calls out).
class EdgePpfTranslator {
 public:
  EdgePpfTranslator() = default;

  Result<TranslatedQuery> Translate(const xpath::XPathExpr& expr) const;
  Result<TranslatedQuery> TranslateString(std::string_view xpath) const;
};

}  // namespace xprel::translate

#endif  // XPREL_TRANSLATE_EDGE_TRANSLATOR_H_
