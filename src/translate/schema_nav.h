#ifndef XPREL_TRANSLATE_SCHEMA_NAV_H_
#define XPREL_TRANSLATE_SCHEMA_NAV_H_

#include <vector>

#include "xpath/ast.h"
#include "xsd/schema_graph.h"

namespace xprel::translate {

// A set of schema-graph node ids, sorted and deduplicated. The translator
// navigates these sets along XPath steps to find the relations a step can
// bind to (paper Section 4.1: "assigns a schema relation to the last step of
// a PPF using the graph representation of the schema").
using NodeSet = std::vector<int>;

// The context a step is applied from: either a concrete node set, or the
// virtual document root (the XPath context of an absolute path).
struct NavContext {
  NodeSet nodes;
  bool is_document_root = false;

  static NavContext DocumentRoot() {
    NavContext c;
    c.is_document_root = true;
    return c;
  }
  static NavContext Of(NodeSet nodes) {
    NavContext c;
    c.nodes = std::move(nodes);
    return c;
  }
};

// Applies one step to a context, returning the set of schema nodes the step
// can land on. Document-order axes (following / preceding) conservatively
// return every reachable node with a matching test; sibling axes return
// nodes sharing at least one possible parent. The attribute axis keeps the
// context nodes, filtered to those declaring the attribute.
NodeSet ApplyStep(const xsd::SchemaGraph& graph, const NavContext& context,
                  const xpath::Step& step);

// Applies a whole step sequence.
NodeSet ApplySteps(const xsd::SchemaGraph& graph, const NavContext& context,
                   const std::vector<const xpath::Step*>& steps);

// Filters a node set by a node test.
NodeSet FilterByTest(const xsd::SchemaGraph& graph, const NodeSet& nodes,
                     const xpath::Step& step);

// Transitive closure over children (descendants of the set, exclusive).
NodeSet Descendants(const xsd::SchemaGraph& graph, const NodeSet& nodes);
// Transitive closure over parents (ancestors of the set, exclusive).
NodeSet Ancestors(const xsd::SchemaGraph& graph, const NodeSet& nodes);

}  // namespace xprel::translate

#endif  // XPREL_TRANSLATE_SCHEMA_NAV_H_
