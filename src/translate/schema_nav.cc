#include "translate/schema_nav.h"

#include <algorithm>
#include <set>

namespace xprel::translate {

using xpath::Axis;
using xpath::NodeTestKind;
using xpath::Step;
using xsd::SchemaGraph;

namespace {

NodeSet Sorted(std::set<int> s) { return NodeSet(s.begin(), s.end()); }

bool MatchesTest(const SchemaGraph& graph, int node, const Step& step) {
  switch (step.test) {
    case NodeTestKind::kName:
      return graph.node(node).tag == step.name;
    case NodeTestKind::kWildcard:
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      // text() selects text nodes; as a schema-level filter, keep nodes that
      // can carry text (the translator handles the projection).
      return graph.node(node).has_text;
  }
  return false;
}

}  // namespace

NodeSet FilterByTest(const SchemaGraph& graph, const NodeSet& nodes,
                     const Step& step) {
  NodeSet out;
  for (int n : nodes) {
    if (MatchesTest(graph, n, step)) out.push_back(n);
  }
  return out;
}

NodeSet Descendants(const SchemaGraph& graph, const NodeSet& nodes) {
  std::set<int> seen;
  std::vector<int> stack;
  for (int n : nodes) {
    for (int c : graph.node(n).children) stack.push_back(c);
  }
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (!graph.node(n).reachable) continue;
    if (!seen.insert(n).second) continue;
    for (int c : graph.node(n).children) stack.push_back(c);
  }
  return Sorted(std::move(seen));
}

NodeSet Ancestors(const SchemaGraph& graph, const NodeSet& nodes) {
  std::set<int> seen;
  std::vector<int> stack;
  for (int n : nodes) {
    for (int p : graph.node(n).parents) stack.push_back(p);
  }
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (!graph.node(n).reachable) continue;
    if (!seen.insert(n).second) continue;
    for (int p : graph.node(n).parents) stack.push_back(p);
  }
  return Sorted(std::move(seen));
}

NodeSet ApplyStep(const SchemaGraph& graph, const NavContext& context,
                  const Step& step) {
  // The virtual document root contributes: child = document roots;
  // descendant(-or-self) = every reachable node; other axes nothing (there
  // is no element there). A context may carry both the root flag and
  // concrete nodes (after a '//' connector); merge both contributions.
  if (context.is_document_root) {
    NodeSet from_root;
    switch (step.axis) {
      case Axis::kChild:
        from_root = FilterByTest(graph, graph.roots(), step);
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        from_root = FilterByTest(graph, graph.ReachableNodes(), step);
        break;
      default:
        break;
    }
    if (context.nodes.empty()) return from_root;
    NavContext rest = NavContext::Of(context.nodes);
    NodeSet from_nodes = ApplyStep(graph, rest, step);
    from_root.insert(from_root.end(), from_nodes.begin(), from_nodes.end());
    std::sort(from_root.begin(), from_root.end());
    from_root.erase(std::unique(from_root.begin(), from_root.end()),
                    from_root.end());
    return from_root;
  }

  switch (step.axis) {
    case Axis::kChild: {
      std::set<int> out;
      for (int n : context.nodes) {
        for (int c : graph.node(n).children) {
          if (graph.node(c).reachable && MatchesTest(graph, c, step)) {
            out.insert(c);
          }
        }
      }
      return Sorted(std::move(out));
    }
    case Axis::kDescendant:
      return FilterByTest(graph, Descendants(graph, context.nodes), step);
    case Axis::kDescendantOrSelf: {
      NodeSet all = Descendants(graph, context.nodes);
      all.insert(all.end(), context.nodes.begin(), context.nodes.end());
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      return FilterByTest(graph, all, step);
    }
    case Axis::kSelf:
      return FilterByTest(graph, context.nodes, step);
    case Axis::kParent: {
      std::set<int> out;
      for (int n : context.nodes) {
        for (int p : graph.node(n).parents) {
          if (graph.node(p).reachable && MatchesTest(graph, p, step)) {
            out.insert(p);
          }
        }
      }
      return Sorted(std::move(out));
    }
    case Axis::kAncestor:
      return FilterByTest(graph, Ancestors(graph, context.nodes), step);
    case Axis::kAncestorOrSelf: {
      NodeSet all = Ancestors(graph, context.nodes);
      all.insert(all.end(), context.nodes.begin(), context.nodes.end());
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      return FilterByTest(graph, all, step);
    }
    case Axis::kFollowing:
    case Axis::kPreceding:
      // Document-order axes can reach anywhere in the tree.
      return FilterByTest(graph, graph.ReachableNodes(), step);
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      // Nodes sharing at least one possible parent with the context.
      std::set<int> parents;
      for (int n : context.nodes) {
        for (int p : graph.node(n).parents) {
          if (graph.node(p).reachable) parents.insert(p);
        }
      }
      std::set<int> out;
      for (int p : parents) {
        for (int c : graph.node(p).children) {
          if (graph.node(c).reachable && MatchesTest(graph, c, step)) {
            out.insert(c);
          }
        }
      }
      return Sorted(std::move(out));
    }
    case Axis::kAttribute: {
      NodeSet out;
      for (int n : context.nodes) {
        if (step.test == NodeTestKind::kName) {
          const auto& attrs = graph.node(n).attributes;
          if (std::find(attrs.begin(), attrs.end(), step.name) ==
              attrs.end()) {
            continue;
          }
        } else if (graph.node(n).attributes.empty()) {
          continue;  // @* needs at least one declared attribute
        }
        out.push_back(n);
      }
      return out;
    }
  }
  return {};
}

NodeSet ApplySteps(const SchemaGraph& graph, const NavContext& context,
                   const std::vector<const Step*>& steps) {
  NavContext cur = context;
  for (const Step* s : steps) {
    NodeSet next = ApplyStep(graph, cur, *s);
    // descendant-or-self::node() keeps the virtual document root in the
    // context, so a following child step can still bind root elements.
    bool keeps_root = cur.is_document_root &&
                      s->axis == Axis::kDescendantOrSelf &&
                      s->test == NodeTestKind::kAnyNode;
    cur = NavContext::Of(std::move(next));
    cur.is_document_root = keeps_root;
    if (cur.nodes.empty() && !cur.is_document_root) return {};
  }
  return cur.nodes;
}

}  // namespace xprel::translate
