#ifndef XPREL_TRANSLATE_PPF_H_
#define XPREL_TRANSLATE_PPF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xpath/ast.h"

namespace xprel::translate {

// ---------------------------------------------------------------------------
// Primitive Path Fragments (paper Section 4.1)
// ---------------------------------------------------------------------------

enum class PpfKind {
  kForward,   // forward simple path (child / descendant(-or-self) / self /
              // attribute axes; predicates only on the last step)
  kBackward,  // backward simple path (parent / ancestor(-or-self))
  kOrder,     // single step with following(-sibling) / preceding(-sibling)
};

const char* PpfKindName(PpfKind k);

struct Ppf {
  PpfKind kind = PpfKind::kForward;
  std::vector<const xpath::Step*> steps;

  const xpath::Step& prominent() const { return *steps.back(); }
  bool IsSingleStep() const { return steps.size() == 1; }
};

// Splits a location path into its PPF sequence. A step with predicates ends
// its fragment; order-axis steps always form their own fragment. The steps
// are borrowed from `path`, which must outlive the result.
Result<std::vector<Ppf>> SplitIntoPpfs(const xpath::LocationPath& path);

// Rewrites '//' connector pairs into single strict steps using the identity
// descendant-or-self::node()/child::X == descendant::X (likewise for a
// descendant follower). This holds for every context, including the virtual
// document root — where it matters: the root element is a child of the
// document node and must survive '//*'. Only connectors followed by a
// downward step remain after ExpandOrSelfSteps, so the result is
// connector-free.
xpath::LocationPath MergeConnectors(const xpath::LocationPath& path);

// Rewrites name-tested `descendant-or-self::X` / `ancestor-or-self::X`
// steps into explicit self / strict-axis alternatives, multiplying branches
// (the `-or-self` composite cannot be expressed by a single path regex; see
// translator notes). `descendant-or-self::node()` — the '//' connector — is
// left alone: the regex builder handles it natively. Also expands inside
// predicate paths by OR-ing the predicate alternatives.
xpath::XPathExpr ExpandOrSelfSteps(const xpath::XPathExpr& expr);

// ---------------------------------------------------------------------------
// Path patterns (paper Table 1)
// ---------------------------------------------------------------------------

// Escapes ERE metacharacters in an element name.
std::string EscapeRegexLiteral(const std::string& name);

// A root-to-node path shape: an optional root anchor plus a sequence of
// segments, each reached over a child ("/") or descendant ("/(.+/)?") hop.
// Renders to the POSIX ERE the Paths column is filtered with.
class PathPattern {
 public:
  PathPattern() = default;
  static PathPattern Rooted() {
    PathPattern p;
    p.rooted_ = true;
    return p;
  }
  static PathPattern Unrooted() { return PathPattern(); }

  void AppendChild(std::string name_pattern);
  void AppendDescendant(std::string name_pattern);

  // Intersects the last segment's name pattern with `name` (for self
  // steps). Returns false if the intersection is provably empty. With no
  // segments yet, the constraint applies to the (virtual) context and is
  // recorded as an initial segment only when rooted.
  bool IntersectLast(const std::string& name);

  bool rooted() const { return rooted_; }
  bool empty() const { return segments_.empty(); }
  size_t segment_count() const { return segments_.size(); }
  // True if every hop is a child hop (fixed depth).
  bool AllChildHops() const;
  // Number of child hops (the minimum depth gap this pattern spans).
  int MinDepth() const;

  // "^/site/regions/(.+/)?item$" (rooted) or "^.*/item$" (unrooted).
  std::string ToRegex() const;

 private:
  struct Segment {
    bool descendant_hop = false;
    std::string name_pattern;  // already regex-escaped or a char class
  };
  bool rooted_ = false;
  std::vector<Segment> segments_;
};

// Name pattern of a step's node test: escaped tag or "[^/]+" for wildcards.
std::string NodeTestPattern(const xpath::Step& step);

// Extends `seed` with a forward step sequence. Returns false (impossible)
// when a self step's name test contradicts the pattern.
bool ExtendForwardPattern(PathPattern& pattern,
                          const std::vector<const xpath::Step*>& steps);

// Builds the regex for a backward PPF, filtering the *context* node's
// root-to-node path (paper Table 1 rows 3-4; Algorithm 1 lines 4-5).
// `context_pattern` is the name pattern of the context node's tag.
std::string BackwardPathRegex(const std::vector<const xpath::Step*>& steps,
                              const std::string& context_pattern);

}  // namespace xprel::translate

#endif  // XPREL_TRANSLATE_PPF_H_
