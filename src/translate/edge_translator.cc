#include "translate/edge_translator.h"

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "shred/edge_loader.h"
#include "shred/schema_map.h"
#include "translate/ppf.h"
#include "xpath/parser.h"

namespace xprel::translate {

using rel::Bin;
using rel::Col;
using rel::Concat;
using rel::Exists;
using rel::LitBytes;
using rel::LitInt;
using rel::LitStr;
using rel::RegexpLike;
using rel::SelectStmt;
using rel::SqlExpr;
using rel::SqlExprPtr;
using rel::Value;
using xpath::Axis;
using xpath::CompOp;
using xpath::Expr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;

namespace {

const char kDeweyMaxByte[] = "\xFF";

SqlExpr::BinOp SqlOpOf(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return SqlExpr::BinOp::kEq;
    case CompOp::kNe:
      return SqlExpr::BinOp::kNe;
    case CompOp::kLt:
      return SqlExpr::BinOp::kLt;
    case CompOp::kLe:
      return SqlExpr::BinOp::kLe;
    case CompOp::kGt:
      return SqlExpr::BinOp::kGt;
    case CompOp::kGe:
      return SqlExpr::BinOp::kGe;
  }
  return SqlExpr::BinOp::kEq;
}

// Builds one SELECT per branch (Edge mapping never splits).
class EdgeBranchTranslator {
 public:
  enum class ValueMode { kNone, kText };

  Result<std::unique_ptr<SelectStmt>> Translate(const LocationPath& path,
                                                ValueMode& mode) {
    if (path.steps.empty()) {
      return Status::Unsupported("a bare '/' selects the document root node");
    }
    LocationPath work = xpath::ClonePath(path);
    mode = ValueMode::kNone;
    const Step& last = work.steps.back();
    if (last.test == NodeTestKind::kText) {
      if (last.axis != Axis::kChild || !last.predicates.empty()) {
        return Status::Unsupported("text() only as a plain final step");
      }
      work.steps.pop_back();
      mode = ValueMode::kText;
      if (work.steps.empty()) {
        return Status::Unsupported("text() of the document root");
      }
    }
    if (work.steps.back().axis == Axis::kAttribute) {
      return Status::Unsupported(
          "edge mapping: attribute value projection not implemented");
    }

    auto ppfs = SplitIntoPpfs(work);
    if (!ppfs.ok()) return ppfs.status();

    stmt_ = std::make_unique<SelectStmt>();
    std::string prev;
    PathPattern fwd = PathPattern::Rooted();
    bool contiguous = true;
    const Step* prev_prominent = nullptr;

    for (const Ppf& ppf : ppfs.value()) {
      auto alias = ProcessPpf(ppf, prev, prev_prominent, fwd, contiguous);
      if (!alias.ok()) return alias.status();
      prev = alias.value();
      prev_prominent = &ppf.prominent();
      contiguous = ppf.kind == PpfKind::kForward;
      if (!contiguous) fwd = PathPattern::Unrooted();
    }

    stmt_->distinct = true;
    stmt_->select.push_back({Col(prev, shred::kIdColumn), "id"});
    stmt_->select.push_back({Col(prev, shred::kDeweyColumn), "dewey_pos"});
    if (mode == ValueMode::kText) {
      stmt_->select.push_back({Col(prev, shred::kTextColumn), "value"});
      AddWhere(Bin(SqlExpr::BinOp::kNe, Col(prev, shred::kTextColumn),
                   LitStr("")));
    }
    stmt_->order_by.push_back({Col(prev, shred::kDeweyColumn), true});
    return std::move(stmt_);
  }

 private:
  std::string NewAlias() { return "E" + std::to_string(++alias_count_); }
  std::string NewAttrAlias() { return "AT" + std::to_string(++attr_count_); }

  void AddWhere(SqlExprPtr cond) {
    stmt_->where = rel::And(std::move(stmt_->where), std::move(cond));
  }

  std::string EnsurePathsJoin(const std::string& alias) {
    auto it = paths_alias_.find(alias);
    if (it != paths_alias_.end()) return it->second;
    // Globally unique across nesting levels: the same element alias can
    // need a Paths join both in the outer SELECT and inside an EXISTS.
    std::string pa = alias + "_Paths";
    while (!used_paths_aliases_.insert(pa).second) pa += "_";
    stmt_->from.push_back({shred::kPathsTable, pa});
    AddWhere(rel::Eq(Col(alias, shred::kPathIdColumn),
                     Col(pa, shred::kIdColumn)));
    paths_alias_[alias] = pa;
    return pa;
  }

  SqlExprPtr PathRegexCondition(const std::string& alias,
                                const std::string& regex) {
    return RegexpLike(Col(EnsurePathsJoin(alias), shred::kPathsPathColumn),
                      regex);
  }

  // Exact translation of a forward fragment whose path pattern is not
  // rooted. A collapsed suffix regex (`^.*/ctx/a/b$`) can match with the
  // context segment aligned *above* the joined node's true position, so a
  // single alias + dewey range admits nodes outside the intended chain.
  // One alias per step with a direct structural join has no such
  // alignment freedom. Returns the fragment's final alias;
  // `first_alias` is already in FROM and is reused for the first step.
  Result<std::string> PerStepForwardChain(const Ppf& ppf,
                                          const std::string& prev,
                                          const std::string& first_alias) {
    auto dewey = [](const std::string& a) {
      return Col(a, shred::kDeweyColumn);
    };
    auto upper = [&](const std::string& a) {
      return Concat(dewey(a), LitBytes(kDeweyMaxByte));
    };
    std::string cur = prev;
    bool first_used = false;
    auto next_alias = [&]() {
      if (!first_used) {
        first_used = true;
        return first_alias;
      }
      std::string a = NewAlias();
      stmt_->from.push_back({shred::kEdgeTable, a});
      return a;
    };
    auto add_hop = [&](bool descendant_hop, const std::string& name_pattern) {
      std::string nxt = next_alias();
      if (descendant_hop) {
        AddWhere(rel::And(
            Bin(SqlExpr::BinOp::kGt, dewey(nxt), dewey(cur)),
            Bin(SqlExpr::BinOp::kLt, dewey(nxt), upper(cur))));
      } else {
        AddWhere(rel::Eq(Col(nxt, shred::kEdgeParColumn),
                         Col(cur, shred::kIdColumn)));
      }
      if (name_pattern != "[^/]+") {
        AddWhere(PathRegexCondition(nxt, "^.*/" + name_pattern + "$"));
      }
      cur = nxt;
    };
    bool pending_descendant = false;
    for (const xpath::Step* step : ppf.steps) {
      switch (step->axis) {
        case Axis::kSelf: {
          std::string pat = NodeTestPattern(*step);
          if (pat != "[^/]+") {
            AddWhere(PathRegexCondition(cur, "^.*/" + pat + "$"));
          }
          break;
        }
        case Axis::kChild:
          add_hop(pending_descendant, NodeTestPattern(*step));
          pending_descendant = false;
          break;
        case Axis::kDescendant:
          add_hop(true, NodeTestPattern(*step));
          pending_descendant = false;
          break;
        case Axis::kDescendantOrSelf:
          if (step->test == NodeTestKind::kAnyNode) {
            pending_descendant = true;  // the '//' connector
          } else {
            // Name-tested -or-self steps are expanded away beforehand.
            add_hop(true, NodeTestPattern(*step));
            pending_descendant = false;
          }
          break;
        default:
          return Status::Unsupported(
              "edge mapping: unsupported axis in a non-rooted forward "
              "fragment");
      }
    }
    if (pending_descendant) add_hop(true, "[^/]+");
    if (!first_used) {
      // All-self fragment: bind the pre-registered alias to the context.
      AddWhere(rel::Eq(Col(first_alias, shred::kIdColumn),
                       Col(cur, shred::kIdColumn)));
      return first_alias;
    }
    return cur;
  }

  Result<std::string> ProcessPpf(const Ppf& ppf, const std::string& prev,
                                 const Step* prev_prominent, PathPattern& fwd,
                                 bool contiguous) {
    std::string alias = NewAlias();
    stmt_->from.push_back({shred::kEdgeTable, alias});

    // A backward or order fragment at the very start navigates from the
    // virtual document root, which has no ancestors or siblings.
    if (prev.empty() && ppf.kind != PpfKind::kForward) {
      AddWhere(rel::Eq(LitInt(1), LitInt(0)));
      return alias;
    }

    // Path filtering: the Edge mapping has no schema marking, so every PPF
    // joins Paths (Algorithm 1 lines 2-7 without the 4.5 shortcut).
    bool joined = false;  // structural join already emitted below?
    if (ppf.kind == PpfKind::kForward) {
      if (!contiguous) {
        fwd = PathPattern::Unrooted();
        if (prev_prominent != nullptr) {
          fwd.AppendChild(NodeTestPattern(*prev_prominent));
        }
      }
      if (!ExtendForwardPattern(fwd, ppf.steps)) {
        // Contradictory self step: empty result; emit FALSE.
        AddWhere(rel::Eq(LitInt(1), LitInt(0)));
        return alias;
      }
      if (!fwd.rooted() && !prev.empty()) {
        // A non-rooted collapsed pattern is alignment-unsafe; walk the
        // fragment step by step instead (joins emitted inline).
        auto chained = PerStepForwardChain(ppf, prev, alias);
        if (!chained.ok()) return chained.status();
        alias = std::move(chained).value();
        joined = true;
      } else {
        AddWhere(PathRegexCondition(alias, fwd.ToRegex()));
      }
    } else if (ppf.kind == PpfKind::kBackward) {
      if (!prev.empty()) {
        std::string ctx_pattern = prev_prominent != nullptr
                                      ? NodeTestPattern(*prev_prominent)
                                      : "[^/]+";
        AddWhere(PathRegexCondition(
            prev, BackwardPathRegex(ppf.steps, ctx_pattern)));
      }
      AddWhere(PathRegexCondition(
          alias, "^.*/" + NodeTestPattern(ppf.prominent()) + "$"));
      // The forward pattern now describes *this* alias, not the previous
      // one; predicate paths below must extend from here.
      fwd = PathPattern::Unrooted();
      fwd.AppendChild(NodeTestPattern(ppf.prominent()));
    } else {  // order axes
      AddWhere(PathRegexCondition(
          alias, "^.*/" + NodeTestPattern(ppf.prominent()) + "$"));
      fwd = PathPattern::Unrooted();
      fwd.AppendChild(NodeTestPattern(ppf.prominent()));
    }

    // Structural join (Table 2, FK for single child/parent steps).
    if (!prev.empty() && !joined) {
      auto dewey = [](const std::string& a) {
        return Col(a, shred::kDeweyColumn);
      };
      auto upper = [&](const std::string& a) {
        return Concat(dewey(a), LitBytes(kDeweyMaxByte));
      };
      switch (ppf.kind) {
        case PpfKind::kForward:
          if (ppf.IsSingleStep() && ppf.prominent().axis == Axis::kChild) {
            AddWhere(rel::Eq(Col(alias, shred::kEdgeParColumn),
                             Col(prev, shred::kIdColumn)));
          } else {
            AddWhere(rel::And(
                Bin(SqlExpr::BinOp::kGt, dewey(alias), dewey(prev)),
                Bin(SqlExpr::BinOp::kLt, dewey(alias), upper(prev))));
          }
          break;
        case PpfKind::kBackward:
          if (ppf.IsSingleStep() && ppf.prominent().axis == Axis::kParent) {
            AddWhere(rel::Eq(Col(prev, shred::kEdgeParColumn),
                             Col(alias, shred::kIdColumn)));
          } else {
            AddWhere(rel::And(
                Bin(SqlExpr::BinOp::kGt, dewey(prev), dewey(alias)),
                Bin(SqlExpr::BinOp::kLt, dewey(prev), upper(alias))));
          }
          break;
        case PpfKind::kOrder: {
          Axis axis = ppf.prominent().axis;
          if (axis == Axis::kFollowing) {
            AddWhere(Bin(SqlExpr::BinOp::kGt, dewey(alias), upper(prev)));
          } else if (axis == Axis::kPreceding) {
            AddWhere(Bin(SqlExpr::BinOp::kGt, dewey(prev), upper(alias)));
          } else {
            SqlExprPtr order =
                axis == Axis::kFollowingSibling
                    ? Bin(SqlExpr::BinOp::kGt, dewey(alias), dewey(prev))
                    : Bin(SqlExpr::BinOp::kLt, dewey(alias), dewey(prev));
            AddWhere(rel::And(
                std::move(order),
                rel::Eq(Col(alias, shred::kEdgeParColumn),
                        Col(prev, shred::kEdgeParColumn))));
          }
          break;
        }
      }
    }

    // Predicates of the prominent step. After the per-kind handling above,
    // `fwd` accurately describes this alias's root-to-node path (possibly
    // as an unrooted suffix), so predicate paths may extend it directly.
    bool fwd_exact = ppf.kind == PpfKind::kForward ? contiguous : true;
    for (const xpath::ExprPtr& pred : ppf.prominent().predicates) {
      auto cond = TranslatePredicate(alias, &ppf.prominent(), fwd, fwd_exact,
                                     *pred);
      if (!cond.ok()) return cond.status();
      AddWhere(std::move(cond).value());
    }
    return alias;
  }

  // --- predicates ---------------------------------------------------------

  static bool IsBackwardSimplePath(const LocationPath& path) {
    if (path.absolute || path.steps.empty()) return false;
    for (const Step& s : path.steps) {
      if (!xpath::IsBackwardAxis(s.axis) || !s.predicates.empty()) {
        return false;
      }
    }
    return true;
  }

  static bool IsAttributeOnlyPath(const LocationPath& path) {
    return !path.absolute && path.steps.size() == 1 &&
           path.steps[0].axis == Axis::kAttribute &&
           path.steps[0].predicates.empty();
  }

  // EXISTS probe into Attr for @name [op literal].
  SqlExprPtr AttrCondition(const std::string& ctx_alias, const Step& step,
                           const SqlExpr* op_lit, CompOp op) {
    auto sub = std::make_unique<SelectStmt>();
    std::string aa = NewAttrAlias();
    sub->from.push_back({shred::kAttrTable, aa});
    sub->where = rel::Eq(Col(aa, shred::kAttrElemColumn),
                         Col(ctx_alias, shred::kIdColumn));
    if (step.test == NodeTestKind::kName) {
      sub->where = rel::And(std::move(sub->where),
                            rel::Eq(Col(aa, shred::kAttrNameColumn),
                                    LitStr(step.name)));
    }
    if (op_lit != nullptr) {
      sub->where = rel::And(
          std::move(sub->where),
          Bin(SqlOpOf(op), Col(aa, shred::kAttrValueColumn),
              rel::CloneSqlExpr(*op_lit)));
    }
    return Exists(std::move(sub));
  }

  Result<SqlExprPtr> TranslatePredicate(const std::string& ctx_alias,
                                        const Step* ctx_step,
                                        const PathPattern& ctx_fwd,
                                        bool ctx_fwd_exact, const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr: {
        auto a = TranslatePredicate(ctx_alias, ctx_step, ctx_fwd,
                                    ctx_fwd_exact, *expr.children[0]);
        if (!a.ok()) return a.status();
        auto b = TranslatePredicate(ctx_alias, ctx_step, ctx_fwd,
                                    ctx_fwd_exact, *expr.children[1]);
        if (!b.ok()) return b.status();
        return expr.kind == Expr::Kind::kAnd
                   ? rel::And(std::move(a).value(), std::move(b).value())
                   : rel::Or(std::move(a).value(), std::move(b).value());
      }
      case Expr::Kind::kNot: {
        auto a = TranslatePredicate(ctx_alias, ctx_step, ctx_fwd,
                                    ctx_fwd_exact, *expr.children[0]);
        if (!a.ok()) return a.status();
        return rel::Not(std::move(a).value());
      }
      case Expr::Kind::kPath: {
        const LocationPath& path = expr.path;
        if (IsAttributeOnlyPath(path)) {
          return AttrCondition(ctx_alias, path.steps[0], nullptr,
                               CompOp::kEq);
        }
        if (IsBackwardSimplePath(path)) {
          std::vector<const Step*> steps;
          for (const Step& s : path.steps) steps.push_back(&s);
          std::string ctx_pattern =
              ctx_step != nullptr ? NodeTestPattern(*ctx_step) : "[^/]+";
          return PathRegexCondition(
              ctx_alias, BackwardPathRegex(steps, ctx_pattern));
        }
        return ExistsForPath(ctx_alias, ctx_step, ctx_fwd, ctx_fwd_exact,
                             path, nullptr, CompOp::kEq, nullptr);
      }
      case Expr::Kind::kComparison:
        return TranslateComparison(ctx_alias, ctx_step, ctx_fwd,
                                   ctx_fwd_exact, expr);
      case Expr::Kind::kString:
      case Expr::Kind::kNumber:
      case Expr::Kind::kPosition:
        return Status::Unsupported(
            "edge mapping: position()/constant predicates not translatable");
    }
    return Status::Internal("unhandled predicate kind");
  }

  Result<SqlExprPtr> TranslateComparison(const std::string& ctx_alias,
                                         const Step* ctx_step,
                                         const PathPattern& ctx_fwd,
                                         bool ctx_fwd_exact,
                                         const Expr& expr) {
    const Expr& lhs = *expr.children[0];
    const Expr& rhs = *expr.children[1];
    if (lhs.kind == Expr::Kind::kPosition ||
        rhs.kind == Expr::Kind::kPosition) {
      return Status::Unsupported("position() is not translatable");
    }
    auto literal_of = [](const Expr& e) -> SqlExprPtr {
      if (e.kind == Expr::Kind::kString) return LitStr(e.str_value);
      if (e.kind == Expr::Kind::kNumber) {
        double intpart = 0;
        if (std::modf(e.num_value, &intpart) == 0.0) {
          return LitInt(static_cast<int64_t>(intpart));
        }
        return rel::Lit(Value::Real(e.num_value));
      }
      return nullptr;
    };

    bool lhs_path = lhs.kind == Expr::Kind::kPath;
    bool rhs_path = rhs.kind == Expr::Kind::kPath;
    if (lhs_path && rhs_path) {
      return ExistsForPath(ctx_alias, ctx_step, ctx_fwd, ctx_fwd_exact,
                           lhs.path, nullptr, expr.op, &rhs.path);
    }
    if (!lhs_path && !rhs_path) {
      return Status::Unsupported("constant comparison");
    }
    const LocationPath& path = lhs_path ? lhs.path : rhs.path;
    SqlExprPtr lit = literal_of(lhs_path ? rhs : lhs);
    if (lit == nullptr) {
      return Status::Unsupported("unsupported comparison operand");
    }
    CompOp op = expr.op;
    if (!lhs_path) {
      switch (op) {
        case CompOp::kLt:
          op = CompOp::kGt;
          break;
        case CompOp::kLe:
          op = CompOp::kGe;
          break;
        case CompOp::kGt:
          op = CompOp::kLt;
          break;
        case CompOp::kGe:
          op = CompOp::kLe;
          break;
        default:
          break;
      }
    }
    if (IsAttributeOnlyPath(path)) {
      return AttrCondition(ctx_alias, path.steps[0], lit.get(), op);
    }
    return ExistsForPath(ctx_alias, ctx_step, ctx_fwd, ctx_fwd_exact, path,
                         lit.get(), op, nullptr);
  }

  // EXISTS sub-select for a predicate path; when `lit` is set, the final
  // element's text is compared with it; when `join_path` is set, a second
  // chain is built and the two text values theta-joined.
  Result<SqlExprPtr> ExistsForPath(const std::string& ctx_alias,
                                   const Step* ctx_step,
                                   const PathPattern& ctx_fwd,
                                   bool ctx_fwd_exact,
                                   const LocationPath& path,
                                   const SqlExpr* lit, CompOp op,
                                   const LocationPath* join_path) {
    // Build into a nested statement: swap stmt_ temporarily.
    auto sub = std::make_unique<SelectStmt>();
    std::swap(stmt_, sub);
    auto paths_alias_saved = paths_alias_;
    paths_alias_.clear();

    auto restore = [&]() {
      std::swap(stmt_, sub);
      paths_alias_ = std::move(paths_alias_saved);
    };

    // A trailing attribute step is handled separately: chain to its owner,
    // then probe Attr.
    auto chain = [&](const LocationPath& full, const Step** out_step,
                     const Step** attr_step) -> Result<std::string> {
      LocationPath p = xpath::ClonePath(full);
      *attr_step = nullptr;
      const Step* attr = nullptr;
      if (!p.steps.empty() && p.steps.back().axis == Axis::kAttribute) {
        owned_attr_steps_.push_back(
            std::make_unique<Step>(xpath::CloneStep(p.steps.back())));
        attr = owned_attr_steps_.back().get();
        p.steps.pop_back();
      }
      std::string prev = p.absolute ? "" : ctx_alias;
      const Step* prev_prom = p.absolute ? nullptr : ctx_step;
      PathPattern fwd =
          p.absolute ? PathPattern::Rooted() : ctx_fwd;
      bool contiguous = p.absolute ? true : ctx_fwd_exact;
      if (!p.steps.empty()) {
        auto ppfs = SplitIntoPpfs(p);
        if (!ppfs.ok()) return ppfs.status();
        for (const Ppf& ppf : ppfs.value()) {
          auto alias = ProcessPpf(ppf, prev, prev_prom, fwd, contiguous);
          if (!alias.ok()) return alias.status();
          prev = alias.value();
          prev_prom = &ppf.prominent();
          contiguous = ppf.kind == PpfKind::kForward;
        }
      } else if (attr == nullptr) {
        return Status::Unsupported("empty predicate path");
      }
      if (prev.empty()) {
        return Status::Unsupported("attribute of the document root");
      }
      *out_step = prev_prom;
      *attr_step = attr;
      return prev;
    };

    const Step* final_step = nullptr;
    const Step* attr_step = nullptr;
    auto final_alias = chain(path, &final_step, &attr_step);
    if (!final_alias.ok()) {
      restore();
      return final_alias.status();
    }

    if (attr_step != nullptr) {
      // Compare / test the attribute of the chain's final element.
      AddWhere(AttrCondition(final_alias.value(), *attr_step, lit, op));
      if (join_path != nullptr) {
        restore();
        return Status::Unsupported(
            "edge mapping: attribute operand in a join clause");
      }
      restore();
      return Exists(std::move(sub));
    }

    if (lit != nullptr) {
      stmt_->where = rel::And(
          std::move(stmt_->where),
          Bin(SqlOpOf(op), Col(final_alias.value(), shred::kTextColumn),
              rel::CloneSqlExpr(*lit)));
    }
    if (join_path != nullptr) {
      const Step* final2 = nullptr;
      const Step* attr2 = nullptr;
      auto alias2 = chain(*join_path, &final2, &attr2);
      if (!alias2.ok()) {
        restore();
        return alias2.status();
      }
      if (attr2 != nullptr) {
        restore();
        return Status::Unsupported(
            "edge mapping: attribute operand in a join clause");
      }
      stmt_->where = rel::And(
          std::move(stmt_->where),
          Bin(SqlOpOf(op), Col(final_alias.value(), shred::kTextColumn),
              Col(alias2.value(), shred::kTextColumn)));
    }

    restore();
    return Exists(std::move(sub));
  }

  std::unique_ptr<SelectStmt> stmt_;
  std::map<std::string, std::string> paths_alias_;
  std::set<std::string> used_paths_aliases_;
  std::vector<std::unique_ptr<Step>> owned_attr_steps_;
  int alias_count_ = 0;
  int attr_count_ = 0;
};

}  // namespace

Result<TranslatedQuery> EdgePpfTranslator::Translate(
    const XPathExpr& expr) const {
  XPathExpr expanded = ExpandOrSelfSteps(expr);
  TranslatedQuery out;
  bool mode_set = false;
  EdgeBranchTranslator::ValueMode overall =
      EdgeBranchTranslator::ValueMode::kNone;
  for (const LocationPath& branch : expanded.branches) {
    EdgeBranchTranslator bt;
    EdgeBranchTranslator::ValueMode mode;
    auto stmt = bt.Translate(branch, mode);
    if (!stmt.ok()) return stmt.status();
    if (mode_set && mode != overall) {
      return Status::Unsupported(
          "union branches project incompatible results");
    }
    overall = mode;
    mode_set = true;
    out.sql.selects.push_back(std::move(stmt).value());
  }
  out.projects_value = overall != EdgeBranchTranslator::ValueMode::kNone;
  out.statically_empty = out.sql.selects.empty();
  return out;
}

Result<TranslatedQuery> EdgePpfTranslator::TranslateString(
    std::string_view xpath) const {
  auto parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Translate(parsed.value());
}

}  // namespace xprel::translate
