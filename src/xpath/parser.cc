#include "xpath/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_injection.h"

namespace xprel::xpath {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kSlash,        // /
  kDoubleSlash,  // //
  kName,         // NCName (axis keywords included; parser disambiguates)
  kStar,         // *
  kAt,           // @
  kDot,          // .
  kDotDot,       // ..
  kColonColon,   // ::
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kPipe,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kString,
  kNumber,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;   // for kName / kString
  double number = 0;  // for kNumber
  size_t offset = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespace();
      size_t off = pos_;
      if (pos_ >= s_.size()) {
        out.push_back({Tok::kEnd, "", 0, off});
        return out;
      }
      char c = s_[pos_];
      switch (c) {
        case '/':
          ++pos_;
          if (pos_ < s_.size() && s_[pos_] == '/') {
            ++pos_;
            out.push_back({Tok::kDoubleSlash, "", 0, off});
          } else {
            out.push_back({Tok::kSlash, "", 0, off});
          }
          continue;
        case '*':
          ++pos_;
          out.push_back({Tok::kStar, "", 0, off});
          continue;
        case '@':
          ++pos_;
          out.push_back({Tok::kAt, "", 0, off});
          continue;
        case '[':
          ++pos_;
          out.push_back({Tok::kLBracket, "", 0, off});
          continue;
        case ']':
          ++pos_;
          out.push_back({Tok::kRBracket, "", 0, off});
          continue;
        case '(':
          ++pos_;
          out.push_back({Tok::kLParen, "", 0, off});
          continue;
        case ')':
          ++pos_;
          out.push_back({Tok::kRParen, "", 0, off});
          continue;
        case '|':
          ++pos_;
          out.push_back({Tok::kPipe, "", 0, off});
          continue;
        case '=':
          ++pos_;
          out.push_back({Tok::kEq, "", 0, off});
          continue;
        case '!':
          if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
            pos_ += 2;
            out.push_back({Tok::kNe, "", 0, off});
            continue;
          }
          return Err("unexpected '!'");
        case '<':
          ++pos_;
          if (pos_ < s_.size() && s_[pos_] == '=') {
            ++pos_;
            out.push_back({Tok::kLe, "", 0, off});
          } else {
            out.push_back({Tok::kLt, "", 0, off});
          }
          continue;
        case '>':
          ++pos_;
          if (pos_ < s_.size() && s_[pos_] == '=') {
            ++pos_;
            out.push_back({Tok::kGe, "", 0, off});
          } else {
            out.push_back({Tok::kGt, "", 0, off});
          }
          continue;
        case ':':
          if (pos_ + 1 < s_.size() && s_[pos_ + 1] == ':') {
            pos_ += 2;
            out.push_back({Tok::kColonColon, "", 0, off});
            continue;
          }
          return Err("unexpected ':'");
        case '.':
          // "..", "." or a number like ".5".
          if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '.') {
            pos_ += 2;
            out.push_back({Tok::kDotDot, "", 0, off});
            continue;
          }
          if (pos_ + 1 < s_.size() &&
              std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
            out.push_back(LexNumber());
            continue;
          }
          ++pos_;
          out.push_back({Tok::kDot, "", 0, off});
          continue;
        case '\'':
        case '"': {
          ++pos_;
          size_t start = pos_;
          while (pos_ < s_.size() && s_[pos_] != c) ++pos_;
          if (pos_ >= s_.size()) return Err("unterminated string literal");
          out.push_back(
              {Tok::kString, std::string(s_.substr(start, pos_ - start)), 0,
               off});
          ++pos_;
          continue;
        }
        default:
          break;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(LexNumber());
        continue;
      }
      if (IsNameStart(c)) {
        size_t start = pos_;
        while (pos_ < s_.size() && IsNameChar(s_[pos_])) ++pos_;
        // An NCName must not swallow a trailing '.' that is really a step
        // separator — but '.' inside names is legal in XML; XPath relies on
        // context. Our subset never has names ending in '.', so trim.
        size_t len = pos_ - start;
        while (len > 0 && s_[start + len - 1] == '.') {
          --len;
          --pos_;
        }
        out.push_back({Tok::kName, std::string(s_.substr(start, len)), 0, off});
        continue;
      }
      return Err(std::string("unexpected character '") + c + "'");
    }
  }

 private:
  Status Err(std::string msg) const {
    return Status::ParseError("xpath: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  Token LexNumber() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.')) {
      ++pos_;
    }
    Token t{Tok::kNumber, "", 0, start};
    t.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return t;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

std::optional<Axis> AxisFromName(const std::string& name) {
  if (name == "child") return Axis::kChild;
  if (name == "descendant") return Axis::kDescendant;
  if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
  if (name == "parent") return Axis::kParent;
  if (name == "ancestor") return Axis::kAncestor;
  if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
  if (name == "self") return Axis::kSelf;
  if (name == "following") return Axis::kFollowing;
  if (name == "following-sibling") return Axis::kFollowingSibling;
  if (name == "preceding") return Axis::kPreceding;
  if (name == "preceding-sibling") return Axis::kPrecedingSibling;
  if (name == "attribute") return Axis::kAttribute;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<XPathExpr> Parse() {
    XPathExpr expr;
    auto first = ParsePath();
    if (!first.ok()) return first.status();
    expr.branches.push_back(std::move(first).value());
    while (Peek().kind == Tok::kPipe) {
      Next();
      auto branch = ParsePath();
      if (!branch.ok()) return branch.status();
      expr.branches.push_back(std::move(branch).value());
    }
    if (Peek().kind != Tok::kEnd) {
      return Err("trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Next() { return toks_[pos_++]; }
  bool Consume(Tok kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(std::string msg) const {
    return Status::ParseError("xpath: " + msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  static Step MakeDescendantOrSelfNode() {
    Step s;
    s.axis = Axis::kDescendantOrSelf;
    s.test = NodeTestKind::kAnyNode;
    return s;
  }

  // path := '/' relpath? | '//' relpath | relpath
  Result<LocationPath> ParsePath() {
    LocationPath path;
    if (Consume(Tok::kSlash)) {
      path.absolute = true;
      if (!StartsStep()) return path;  // bare "/"
    } else if (Consume(Tok::kDoubleSlash)) {
      path.absolute = true;
      path.steps.push_back(MakeDescendantOrSelfNode());
    }
    XPREL_RETURN_IF_ERROR(ParseRelative(path));
    return path;
  }

  bool StartsStep() const {
    switch (Peek().kind) {
      case Tok::kName:
      case Tok::kStar:
      case Tok::kAt:
      case Tok::kDot:
      case Tok::kDotDot:
        return true;
      default:
        return false;
    }
  }

  Status ParseRelative(LocationPath& path) {
    XPREL_RETURN_IF_ERROR(ParseStep(path));
    while (true) {
      if (Consume(Tok::kSlash)) {
        XPREL_RETURN_IF_ERROR(ParseStep(path));
      } else if (Consume(Tok::kDoubleSlash)) {
        path.steps.push_back(MakeDescendantOrSelfNode());
        XPREL_RETURN_IF_ERROR(ParseStep(path));
      } else {
        return Status::Ok();
      }
    }
  }

  Status ParseStep(LocationPath& path) {
    Step step;
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kDot:
        Next();
        step.axis = Axis::kSelf;
        step.test = NodeTestKind::kAnyNode;
        path.steps.push_back(std::move(step));
        return Status::Ok();
      case Tok::kDotDot:
        Next();
        step.axis = Axis::kParent;
        step.test = NodeTestKind::kAnyNode;
        path.steps.push_back(std::move(step));
        return Status::Ok();
      case Tok::kAt: {
        Next();
        step.axis = Axis::kAttribute;
        XPREL_RETURN_IF_ERROR(ParseNodeTest(step));
        break;
      }
      case Tok::kName: {
        // Either "axis::nodetest" or a child-axis name test.
        auto axis = AxisFromName(t.text);
        if (axis && Peek(1).kind == Tok::kColonColon) {
          Next();  // axis name
          Next();  // ::
          step.axis = *axis;
          if (step.axis == Axis::kAttribute) {
            XPREL_RETURN_IF_ERROR(ParseNodeTest(step));
          } else {
            XPREL_RETURN_IF_ERROR(ParseNodeTest(step));
          }
        } else {
          step.axis = Axis::kChild;
          XPREL_RETURN_IF_ERROR(ParseNodeTest(step));
        }
        break;
      }
      case Tok::kStar:
        step.axis = Axis::kChild;
        XPREL_RETURN_IF_ERROR(ParseNodeTest(step));
        break;
      default:
        return Err("expected step");
    }
    // Predicates.
    while (Consume(Tok::kLBracket)) {
      auto pred = ParseOrExpr();
      if (!pred.ok()) return pred.status();
      ExprPtr expr = std::move(pred).value();
      // A bare numeric predicate [n] abbreviates [position() = n].
      if (expr->kind == Expr::Kind::kNumber) {
        auto cmp = std::make_unique<Expr>();
        cmp->kind = Expr::Kind::kComparison;
        cmp->op = CompOp::kEq;
        auto posfn = std::make_unique<Expr>();
        posfn->kind = Expr::Kind::kPosition;
        cmp->children.push_back(std::move(posfn));
        cmp->children.push_back(std::move(expr));
        expr = std::move(cmp);
      }
      step.predicates.push_back(std::move(expr));
      if (!Consume(Tok::kRBracket)) return Err("expected ']'");
    }
    path.steps.push_back(std::move(step));
    return Status::Ok();
  }

  Status ParseNodeTest(Step& step) {
    const Token& t = Peek();
    if (t.kind == Tok::kStar) {
      Next();
      step.test = NodeTestKind::kWildcard;
      return Status::Ok();
    }
    if (t.kind != Tok::kName) return Err("expected node test");
    std::string name = Next().text;
    if (Peek().kind == Tok::kLParen) {
      // text() / node().
      Next();
      if (!Consume(Tok::kRParen)) return Err("expected ')'");
      if (name == "text") {
        step.test = NodeTestKind::kText;
        return Status::Ok();
      }
      if (name == "node") {
        step.test = NodeTestKind::kAnyNode;
        return Status::Ok();
      }
      return Err("unknown node test '" + name + "()'");
    }
    step.test = NodeTestKind::kName;
    step.name = std::move(name);
    return Status::Ok();
  }

  Result<ExprPtr> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == Tok::kName && Peek().text == "or") {
      Next();
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs.status();
      auto parent = std::make_unique<Expr>();
      parent->kind = Expr::Kind::kOr;
      parent->children.push_back(std::move(node));
      parent->children.push_back(std::move(rhs).value());
      node = std::move(parent);
    }
    return node;
  }

  Result<ExprPtr> ParseAndExpr() {
    auto lhs = ParseComparison();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs).value();
    while (Peek().kind == Tok::kName && Peek().text == "and") {
      Next();
      auto rhs = ParseComparison();
      if (!rhs.ok()) return rhs.status();
      auto parent = std::make_unique<Expr>();
      parent->kind = Expr::Kind::kAnd;
      parent->children.push_back(std::move(node));
      parent->children.push_back(std::move(rhs).value());
      node = std::move(parent);
    }
    return node;
  }

  static std::optional<CompOp> CompOpFromToken(Tok kind) {
    switch (kind) {
      case Tok::kEq:
        return CompOp::kEq;
      case Tok::kNe:
        return CompOp::kNe;
      case Tok::kLt:
        return CompOp::kLt;
      case Tok::kLe:
        return CompOp::kLe;
      case Tok::kGt:
        return CompOp::kGt;
      case Tok::kGe:
        return CompOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    ExprPtr node = std::move(lhs).value();
    auto op = CompOpFromToken(Peek().kind);
    if (!op) return node;
    Next();
    auto rhs = ParsePrimary();
    if (!rhs.ok()) return rhs.status();
    auto cmp = std::make_unique<Expr>();
    cmp->kind = Expr::Kind::kComparison;
    cmp->op = *op;
    cmp->children.push_back(std::move(node));
    cmp->children.push_back(std::move(rhs).value());
    return cmp;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kString: {
        Next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kString;
        e->str_value = t.text;
        return e;
      }
      case Tok::kNumber: {
        Next();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kNumber;
        e->num_value = t.number;
        return e;
      }
      case Tok::kLParen: {
        Next();
        auto inner = ParseOrExpr();
        if (!inner.ok()) return inner.status();
        if (!Consume(Tok::kRParen)) return Err("expected ')'");
        return inner;
      }
      case Tok::kName: {
        if (t.text == "not" && Peek(1).kind == Tok::kLParen) {
          Next();
          Next();
          auto inner = ParseOrExpr();
          if (!inner.ok()) return inner.status();
          if (!Consume(Tok::kRParen)) return Err("expected ')'");
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kNot;
          e->children.push_back(std::move(inner).value());
          return e;
        }
        if (t.text == "position" && Peek(1).kind == Tok::kLParen) {
          Next();
          Next();
          if (!Consume(Tok::kRParen)) return Err("expected ')'");
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kPosition;
          return e;
        }
        return ParsePathOperand();
      }
      case Tok::kSlash:
      case Tok::kDoubleSlash:
      case Tok::kAt:
      case Tok::kStar:
      case Tok::kDot:
      case Tok::kDotDot:
        return ParsePathOperand();
      default:
        return Err("expected predicate expression");
    }
  }

  Result<ExprPtr> ParsePathOperand() {
    auto path = ParsePath();
    if (!path.ok()) return path.status();
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kPath;
    e->path = std::move(path).value();
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<XPathExpr> ParseXPath(std::string_view text) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("xpath.parse"));
  // Bound the expression size before lexing: the recursive-descent parser
  // allocates per token and recurses per nesting level, so an unbounded
  // expression is a memory/stack amplification vector. 64 KiB is far above
  // any legitimate query.
  if (text.size() > kMaxXPathBytes) {
    return Status::InvalidArgument(
        "xpath: expression length " + std::to_string(text.size()) +
        " exceeds limit of " + std::to_string(kMaxXPathBytes) + " bytes");
  }
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace xprel::xpath
