#include "xpath/ast.h"

#include <cmath>

namespace xprel::xpath {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kFollowing:
      return "following";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

bool IsForwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kSelf:
    case Axis::kAttribute:
      return true;
    default:
      return false;
  }
}

bool IsBackwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      return true;
    default:
      return false;
  }
}

const char* CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return "=";
    case CompOp::kNe:
      return "!=";
    case CompOp::kLt:
      return "<";
    case CompOp::kLe:
      return "<=";
    case CompOp::kGt:
      return ">";
    case CompOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ToString(const Step& step) {
  std::string out = AxisName(step.axis);
  out += "::";
  switch (step.test) {
    case NodeTestKind::kName:
      out += step.name;
      break;
    case NodeTestKind::kWildcard:
      out += "*";
      break;
    case NodeTestKind::kText:
      out += "text()";
      break;
    case NodeTestKind::kAnyNode:
      out += "node()";
      break;
  }
  for (const ExprPtr& p : step.predicates) {
    out += "[";
    out += ToString(*p);
    out += "]";
  }
  return out;
}

std::string ToString(const LocationPath& path) {
  std::string out;
  if (path.absolute) out += "/";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    if (i > 0) out += "/";
    out += ToString(path.steps[i]);
  }
  return out;
}

std::string ToString(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kAnd:
      return "(" + ToString(*expr.children[0]) + " and " +
             ToString(*expr.children[1]) + ")";
    case Expr::Kind::kOr:
      return "(" + ToString(*expr.children[0]) + " or " +
             ToString(*expr.children[1]) + ")";
    case Expr::Kind::kNot:
      return "not(" + ToString(*expr.children[0]) + ")";
    case Expr::Kind::kComparison:
      return ToString(*expr.children[0]) + " " + CompOpName(expr.op) + " " +
             ToString(*expr.children[1]);
    case Expr::Kind::kPath:
      return ToString(expr.path);
    case Expr::Kind::kString:
      return "'" + expr.str_value + "'";
    case Expr::Kind::kNumber: {
      double intpart = 0;
      if (std::modf(expr.num_value, &intpart) == 0.0) {
        return std::to_string(static_cast<long long>(intpart));
      }
      return std::to_string(expr.num_value);
    }
    case Expr::Kind::kPosition:
      return "position()";
  }
  return "?";
}

std::string ToString(const XPathExpr& expr) {
  std::string out;
  for (size_t i = 0; i < expr.branches.size(); ++i) {
    if (i > 0) out += " | ";
    out += ToString(expr.branches[i]);
  }
  return out;
}

ExprPtr CloneExpr(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->op = expr.op;
  out->path = ClonePath(expr.path);
  out->str_value = expr.str_value;
  out->num_value = expr.num_value;
  for (const ExprPtr& c : expr.children) {
    out->children.push_back(CloneExpr(*c));
  }
  return out;
}

Step CloneStep(const Step& step) {
  Step out;
  out.axis = step.axis;
  out.test = step.test;
  out.name = step.name;
  for (const ExprPtr& p : step.predicates) {
    out.predicates.push_back(CloneExpr(*p));
  }
  return out;
}

LocationPath ClonePath(const LocationPath& path) {
  LocationPath out;
  out.absolute = path.absolute;
  for (const Step& s : path.steps) {
    out.steps.push_back(CloneStep(s));
  }
  return out;
}

XPathExpr CloneXPath(const XPathExpr& expr) {
  XPathExpr out;
  for (const LocationPath& b : expr.branches) {
    out.branches.push_back(ClonePath(b));
  }
  return out;
}

}  // namespace xprel::xpath
