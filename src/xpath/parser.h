#ifndef XPREL_XPATH_PARSER_H_
#define XPREL_XPATH_PARSER_H_

#include <cstddef>
#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace xprel::xpath {

// Upper bound on the byte length of an XPath expression accepted by
// ParseXPath; longer inputs are rejected with InvalidArgument before any
// per-token allocation happens.
inline constexpr size_t kMaxXPathBytes = 64 * 1024;

// Parses the XPath subset covered by the paper (Section 1): location paths
// over all thirteen axes with abbreviated ('//', '@', '.', '..') and
// unabbreviated (axis::) syntax, wildcard and text()/node() node tests,
// path union '|', and predicates combining path existence tests, value and
// path-to-path comparisons with and / or / not(), plus numeric position
// predicates.
Result<XPathExpr> ParseXPath(std::string_view text);

}  // namespace xprel::xpath

#endif  // XPREL_XPATH_PARSER_H_
