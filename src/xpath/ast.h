#ifndef XPREL_XPATH_AST_H_
#define XPREL_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xprel::xpath {

// The thirteen XPath 1.0/2.0 axes the paper supports (Section 1: "all XPath
// axes"), plus the attribute axis used by @name tests in predicates.
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kFollowing,
  kFollowingSibling,
  kPreceding,
  kPrecedingSibling,
  kAttribute,
};

// Spelled-out axis name, e.g. "following-sibling".
const char* AxisName(Axis axis);

// True for axes that move toward the document end / downward; the paper's
// forward-simple-path definition admits child, descendant(-or-self), self
// and attribute.
bool IsForwardAxis(Axis axis);
// True for parent / ancestor(-or-self).
bool IsBackwardAxis(Axis axis);

enum class NodeTestKind {
  kName,      // element (or attribute) name test
  kWildcard,  // *
  kText,      // text()
  kAnyNode,   // node()
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// One XPath step: axis :: node-test [pred]*.
struct Step {
  Axis axis = Axis::kChild;
  NodeTestKind test = NodeTestKind::kName;
  std::string name;  // for kName
  std::vector<ExprPtr> predicates;
};

// A sequence of steps; `absolute` paths start at the document root.
struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;
};

enum class CompOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompOpName(CompOp op);

// Predicate / general expression node. The paper's predicate language
// (Section 4.3): predicate clauses are paths, path-vs-atomic comparisons or
// path-vs-path comparisons ("predicate join-clauses"), combined with
// and / or / not(); plus numeric position predicates.
struct Expr {
  enum class Kind {
    kAnd,         // children[0] and children[1]
    kOr,          // children[0] or children[1]
    kNot,         // not(children[0])
    kComparison,  // children[0] op children[1]
    kPath,        // existence test (or comparison operand)
    kString,      // string literal operand
    kNumber,      // numeric literal; bare [n] means position() = n
    kPosition,    // position() operand
  };

  Kind kind;
  std::vector<ExprPtr> children;
  CompOp op = CompOp::kEq;   // for kComparison
  LocationPath path;         // for kPath
  std::string str_value;     // for kString
  double num_value = 0;      // for kNumber
};

// A full XPath expression: one or more location paths combined with '|'.
struct XPathExpr {
  std::vector<LocationPath> branches;
};

// Renders the AST back to (canonical, unabbreviated) XPath text — used by
// tests and error messages.
std::string ToString(const XPathExpr& expr);
std::string ToString(const LocationPath& path);
std::string ToString(const Step& step);
std::string ToString(const Expr& expr);

// Deep copies (Expr owns children through unique_ptr).
ExprPtr CloneExpr(const Expr& expr);
LocationPath ClonePath(const LocationPath& path);
Step CloneStep(const Step& step);
XPathExpr CloneXPath(const XPathExpr& expr);

}  // namespace xprel::xpath

#endif  // XPREL_XPATH_AST_H_
