#include "durability/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "durability/crc32c.h"
#include "durability/serde.h"
#include "rel/table.h"

namespace xprel::durability {
namespace {

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("snapshot: " + path + ": " + what);
}

// --- encoding ---

std::string EncodeDocument(const xml::Document& doc) {
  ByteSink sink;
  const auto& nodes = doc.raw_nodes();
  sink.U32(static_cast<uint32_t>(nodes.size()));
  for (const auto& node : nodes) {
    sink.U8(static_cast<uint8_t>(node.kind));
    sink.Str(node.name);
    sink.Str(node.text);
    sink.U32(static_cast<uint32_t>(node.attributes.size()));
    for (const auto& attr : node.attributes) {
      sink.Str(attr.name);
      sink.Str(attr.value);
    }
    sink.I32(node.parent);
    sink.U32(static_cast<uint32_t>(node.children.size()));
    for (xml::NodeId child : node.children) sink.I32(child);
    sink.I32(node.depth);
    sink.I32(node.sibling_ordinal);
    sink.Str(node.dewey);
    sink.U8(node.alive ? 1 : 0);
  }
  return sink.Take();
}

template <typename State>
void EncodeLoaderState(ByteSink& sink, const State& state) {
  sink.I64(state.next_doc_id);
  sink.I64(state.next_element_id);
  sink.U32(static_cast<uint32_t>(state.origins.size()));
  for (const auto& origin : state.origins) {
    sink.I64(origin.doc_id);
    sink.I32(origin.node);
  }
  sink.U32(static_cast<uint32_t>(state.node_ids.size()));
  for (const auto& entry : state.node_ids) {
    sink.I64(entry.first.first);
    sink.I32(entry.first.second);
    sink.I64(entry.second);
  }
  sink.U32(static_cast<uint32_t>(state.paths.size()));
  for (const auto& path : state.paths) {
    sink.Str(path.path);
    sink.I64(path.id);
    sink.U64(static_cast<uint64_t>(path.row));
    sink.I64(path.refs);
  }
}

void EncodeTables(ByteSink& sink, const rel::Database& db) {
  auto tables = db.tables();  // sorted by name: deterministic bytes
  sink.U32(static_cast<uint32_t>(tables.size()));
  for (const rel::Table* table : tables) {
    sink.Str(table->name());
    rel::Table::Content content = table->ExportContent();
    sink.U64(content.row_count);
    sink.U32(static_cast<uint32_t>(content.columns.size()));
    for (const auto& column : content.columns) {
      sink.U32(static_cast<uint32_t>(column.dict.size()));
      for (const auto& value : column.dict) sink.Val(value);
      for (uint32_t code : column.codes) sink.U32(code);
    }
    sink.U32(static_cast<uint32_t>(content.dead_words.size()));
    for (uint64_t word : content.dead_words) sink.U64(word);
  }
}

template <typename Store>
std::string EncodeStore(const Store* store) {
  ByteSink sink;
  sink.U8(store ? 1 : 0);
  if (store) {
    EncodeLoaderState(sink, store->ExportLoaderState());
    EncodeTables(sink, store->db());
  }
  return sink.Take();
}

void AppendSection(ByteSink& out, const std::string& payload) {
  out.U32(static_cast<uint32_t>(payload.size()));
  out.U32(Crc32c(payload));
  out.Raw(payload);
}

// --- decoding ---

// Count fields gate loops; a garbage count must not turn into a
// billion-iteration loop, so it is bounded by the bytes that remain
// (every counted element occupies at least one byte).
bool CountOk(const ByteReader& reader, uint64_t count) {
  return count <= reader.remaining();
}

Result<std::vector<xml::Node>> DecodeDocumentNodes(std::string_view payload,
                                                   const std::string& path) {
  ByteReader reader(payload);
  uint32_t count = reader.U32();
  if (!CountOk(reader, count)) return Corrupt(path, "node count overflow");
  std::vector<xml::Node> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count && reader.ok(); ++i) {
    xml::Node node;
    uint8_t kind = reader.U8();
    if (kind > static_cast<uint8_t>(xml::NodeKind::kText)) {
      return Corrupt(path, "bad node kind");
    }
    node.kind = static_cast<xml::NodeKind>(kind);
    node.name = reader.Str();
    node.text = reader.Str();
    uint32_t nattrs = reader.U32();
    if (!CountOk(reader, nattrs)) return Corrupt(path, "attr count overflow");
    for (uint32_t a = 0; a < nattrs && reader.ok(); ++a) {
      xml::Attribute attr;
      attr.name = reader.Str();
      attr.value = reader.Str();
      node.attributes.push_back(std::move(attr));
    }
    node.parent = reader.I32();
    uint32_t nchildren = reader.U32();
    if (!CountOk(reader, nchildren)) {
      return Corrupt(path, "child count overflow");
    }
    for (uint32_t c = 0; c < nchildren && reader.ok(); ++c) {
      node.children.push_back(reader.I32());
    }
    node.depth = reader.I32();
    node.sibling_ordinal = reader.I32();
    node.dewey = reader.Str();
    node.alive = reader.U8() != 0;
    nodes.push_back(std::move(node));
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return Corrupt(path, "malformed document section");
  }
  return nodes;
}

template <typename State>
Status DecodeLoaderState(ByteReader& reader, State* state,
                         const std::string& path) {
  state->next_doc_id = reader.I64();
  state->next_element_id = reader.I64();
  uint32_t norigins = reader.U32();
  if (!CountOk(reader, norigins)) return Corrupt(path, "origin count overflow");
  for (uint32_t i = 0; i < norigins && reader.ok(); ++i) {
    typename std::decay_t<decltype(state->origins)>::value_type origin;
    origin.doc_id = reader.I64();
    origin.node = reader.I32();
    state->origins.push_back(origin);
  }
  uint32_t nids = reader.U32();
  if (!CountOk(reader, nids)) return Corrupt(path, "node-id count overflow");
  for (uint32_t i = 0; i < nids && reader.ok(); ++i) {
    int64_t doc_id = reader.I64();
    xml::NodeId node = reader.I32();
    int64_t element_id = reader.I64();
    state->node_ids.push_back({{doc_id, node}, element_id});
  }
  uint32_t npaths = reader.U32();
  if (!CountOk(reader, npaths)) return Corrupt(path, "path count overflow");
  for (uint32_t i = 0; i < npaths && reader.ok(); ++i) {
    shred::PathsRegistry::PathState entry;
    entry.path = reader.Str();
    entry.id = reader.I64();
    entry.row = static_cast<rel::RowId>(reader.U64());
    entry.refs = reader.I64();
    state->paths.push_back(std::move(entry));
  }
  if (!reader.ok()) return Corrupt(path, "malformed loader state");
  return Status::Ok();
}

Status DecodeTables(ByteReader& reader, rel::Database& db,
                    const std::string& path) {
  uint32_t ntables = reader.U32();
  if (!reader.ok()) return Corrupt(path, "malformed table section");
  if (ntables != db.tables().size()) {
    return Corrupt(path, "table count does not match schema");
  }
  std::set<std::string> seen;
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string name = reader.Str();
    if (!reader.ok()) return Corrupt(path, "malformed table name");
    rel::Table* table = db.FindTable(name);
    if (table == nullptr) return Corrupt(path, "unknown table " + name);
    if (!seen.insert(name).second) {
      return Corrupt(path, "duplicate table " + name);
    }
    rel::Table::Content content;
    content.row_count = reader.U64();
    if (!CountOk(reader, content.row_count)) {
      return Corrupt(path, "row count overflow in " + name);
    }
    uint32_t ncols = reader.U32();
    if (!CountOk(reader, ncols)) {
      return Corrupt(path, "column count overflow in " + name);
    }
    for (uint32_t c = 0; c < ncols && reader.ok(); ++c) {
      rel::Table::Content::Column column;
      uint32_t dict_size = reader.U32();
      if (!CountOk(reader, dict_size)) {
        return Corrupt(path, "dict overflow in " + name);
      }
      column.dict.reserve(dict_size);
      for (uint32_t d = 0; d < dict_size && reader.ok(); ++d) {
        column.dict.push_back(reader.Val());
      }
      column.codes.reserve(content.row_count);
      for (uint64_t r = 0; r < content.row_count && reader.ok(); ++r) {
        column.codes.push_back(reader.U32());
      }
      content.columns.push_back(std::move(column));
    }
    uint32_t nwords = reader.U32();
    if (!CountOk(reader, nwords)) {
      return Corrupt(path, "dead bitmap overflow in " + name);
    }
    for (uint32_t w = 0; w < nwords && reader.ok(); ++w) {
      content.dead_words.push_back(reader.U64());
    }
    if (!reader.ok()) return Corrupt(path, "malformed content of " + name);
    Status restored = table->RestoreContent(std::move(content));
    if (!restored.ok()) {
      return Corrupt(path, restored.message());
    }
  }
  return Status::Ok();
}

template <typename Store>
Status ValidateNodeIds(const typename Store::LoaderState& state,
                       const xml::Document& doc, const std::string& path) {
  for (const auto& origin : state.origins) {
    if (origin.node < 1 || origin.node > doc.size()) {
      return Corrupt(path, "origin node id out of document range");
    }
  }
  for (const auto& entry : state.node_ids) {
    if (entry.first.second < 1 || entry.first.second > doc.size()) {
      return Corrupt(path, "node-id map entry out of document range");
    }
  }
  return Status::Ok();
}

// --- file IO ---

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("snap.write"));
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("snapshot: open " + path + ": " +
                            std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal("snapshot: write " + path + ": " +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    done += static_cast<size_t>(n);
  }
  Status synced = XPREL_FAULT_POINT("snap.sync");
  if (synced.ok() && ::fsync(fd) != 0) {
    synced = Status::Internal("snapshot: fsync " + path + ": " +
                              std::strerror(errno));
  }
  ::close(fd);
  return synced;
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const xml::Document& doc,
                         const shred::SchemaAwareStore* ppf,
                         const shred::EdgeStore* edge,
                         const SnapshotMeta& meta) {
  ByteSink out;
  out.Raw(kSnapshotMagic);
  out.U32(kSnapshotFormatVersion);
  out.U64(meta.applied_lsn);
  out.U64(meta.next_lsn);
  out.U32(Crc32c(out.bytes()));
  AppendSection(out, EncodeDocument(doc));
  AppendSection(out, EncodeStore(ppf));
  AppendSection(out, EncodeStore(edge));
  return WriteFileDurably(path, out.bytes());
}

Result<RestoredState> ReadSnapshotFile(const std::string& path,
                                       const xsd::SchemaGraph& graph) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("snap.load"));

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("snapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  if (data.size() < kSnapshotHeaderSize) {
    return Corrupt(path, "truncated header");
  }
  if (std::string_view(data.data(), kSnapshotMagic.size()) != kSnapshotMagic) {
    return Corrupt(path, "bad magic");
  }
  ByteReader header(
      std::string_view(data.data() + kSnapshotMagic.size(), 24));
  uint32_t version = header.U32();
  SnapshotMeta meta;
  meta.applied_lsn = header.U64();
  meta.next_lsn = header.U64();
  uint32_t stored_crc = header.U32();
  if (stored_crc != Crc32c(data.data(), kSnapshotHeaderSize - 4)) {
    return Corrupt(path, "header CRC mismatch");
  }
  if (version != kSnapshotFormatVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(version));
  }

  // Three length+CRC framed sections follow the header, nothing else.
  std::string_view sections[3];
  size_t pos = kSnapshotHeaderSize;
  for (int i = 0; i < 3; ++i) {
    if (data.size() - pos < 8) return Corrupt(path, "truncated section");
    ByteReader frame(std::string_view(data.data() + pos, 8));
    uint32_t len = frame.U32();
    uint32_t crc = frame.U32();
    if (data.size() - pos - 8 < len) {
      return Corrupt(path, "section length runs past EOF");
    }
    sections[i] = std::string_view(data.data() + pos + 8, len);
    if (crc != Crc32c(sections[i])) {
      return Corrupt(path, "section CRC mismatch");
    }
    pos += 8 + len;
  }
  if (pos != data.size()) return Corrupt(path, "trailing bytes after sections");

  std::vector<xml::Node> nodes;
  XPREL_ASSIGN_OR_RETURN(nodes, DecodeDocumentNodes(sections[0], path));
  auto restored_doc = xml::Document::FromRawNodes(std::move(nodes));
  if (!restored_doc.ok()) {
    return Corrupt(path, restored_doc.status().message());
  }
  RestoredState state;
  state.doc = std::make_unique<xml::Document>(std::move(restored_doc).value());
  state.meta = meta;

  {
    ByteReader reader(sections[1]);
    if (reader.U8() != 0) {
      shred::SchemaAwareStore::LoaderState loader;
      XPREL_RETURN_IF_ERROR(DecodeLoaderState(reader, &loader, path));
      XPREL_RETURN_IF_ERROR(
          ValidateNodeIds<shred::SchemaAwareStore>(loader, *state.doc, path));
      auto store = shred::SchemaAwareStore::Create(graph);
      if (!store.ok()) return store.status();
      XPREL_RETURN_IF_ERROR(DecodeTables(reader, (*store)->db(), path));
      if (!reader.AtEnd()) return Corrupt(path, "trailing bytes in PPF store");
      Status s = (*store)->RestoreLoaderState(std::move(loader));
      if (!s.ok()) return Corrupt(path, s.message());
      state.ppf = std::move(store).value();
    } else if (!reader.AtEnd() || !reader.ok()) {
      return Corrupt(path, "malformed PPF section");
    }
  }
  {
    ByteReader reader(sections[2]);
    if (reader.U8() != 0) {
      shred::EdgeStore::LoaderState loader;
      XPREL_RETURN_IF_ERROR(DecodeLoaderState(reader, &loader, path));
      XPREL_RETURN_IF_ERROR(
          ValidateNodeIds<shred::EdgeStore>(loader, *state.doc, path));
      auto store = shred::EdgeStore::Create();
      if (!store.ok()) return store.status();
      XPREL_RETURN_IF_ERROR(DecodeTables(reader, (*store)->db(), path));
      if (!reader.AtEnd()) return Corrupt(path, "trailing bytes in Edge store");
      Status s = (*store)->RestoreLoaderState(std::move(loader));
      if (!s.ok()) return Corrupt(path, s.message());
      state.edge = std::move(store).value();
    } else if (!reader.AtEnd() || !reader.ok()) {
      return Corrupt(path, "malformed Edge section");
    }
  }
  return state;
}

}  // namespace xprel::durability
