#ifndef XPREL_DURABILITY_SERDE_H_
#define XPREL_DURABILITY_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "rel/value.h"

namespace xprel::durability {

// Little-endian byte serialization for WAL record payloads and snapshot
// sections. ByteSink appends to a growing buffer; ByteReader is
// bounds-checked and latches failure — any overrun or malformed tag flips
// ok() to false and every later read returns a zero value, so frame
// decoders can be written straight-line and check ok() once at the end.

class ByteSink {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof v); }
  void U64(uint64_t v) { AppendLe(&v, sizeof v); }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void Raw(std::string_view s) { out_.append(s.data(), s.size()); }
  void Val(const rel::Value& v) {
    U8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case rel::ValueType::kNull:
        break;
      case rel::ValueType::kInt64:
        I64(v.AsInt());
        break;
      case rel::ValueType::kDouble:
        F64(v.AsDouble());
        break;
      case rel::ValueType::kString:
        Str(v.AsString());
        break;
      case rel::ValueType::kBytes:
        Str(v.AsBytes());
        break;
    }
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void AppendLe(const void* p, size_t n) {
    // All supported targets are little-endian; serialize memory order.
    out_.append(static_cast<const char*>(p), n);
  }

  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    uint32_t v = 0;
    ReadLe(&v, sizeof v);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    ReadLe(&v, sizeof v);
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  rel::Value Val() {
    uint8_t tag = U8();
    switch (tag) {
      case static_cast<uint8_t>(rel::ValueType::kNull):
        return rel::Value::Null();
      case static_cast<uint8_t>(rel::ValueType::kInt64):
        return rel::Value::Int(I64());
      case static_cast<uint8_t>(rel::ValueType::kDouble):
        return rel::Value::Real(F64());
      case static_cast<uint8_t>(rel::ValueType::kString):
        return rel::Value::Str(Str());
      case static_cast<uint8_t>(rel::ValueType::kBytes):
        return rel::Value::Bytes(Str());
      default:
        ok_ = false;
        return rel::Value::Null();
    }
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  void ReadLe(void* p, size_t n) {
    if (!Need(n)) {
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace xprel::durability

#endif  // XPREL_DURABILITY_SERDE_H_
