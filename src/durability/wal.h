#ifndef XPREL_DURABILITY_WAL_H_
#define XPREL_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace xprel::durability {

// Logical write-ahead log. One segment file per WAL rotation:
//
//   header  := magic "XPWAL001" (8) | first_lsn u64 | crc32c(first 16) u32
//   record  := payload_len u32 | crc32c(payload) u32 | payload
//   payload := lsn u64 | type u8 | type-specific fields
//
// Everything little-endian. Records describe *logical* mutations (the
// DocumentMutator API surface), not physical table changes — replay goes
// through the same mutator path as the original execution, so every
// derived structure (Dewey keys, B-trees, Paths refcounts, caches) is
// rebuilt by the code that owns it.
//
// A reader stops at the first record whose length runs past EOF or whose
// CRC mismatches: that is the torn tail of a crashed writer, and the valid
// prefix before it is exactly the set of acknowledged mutations.

inline constexpr std::string_view kWalMagic = "XPWAL001";
inline constexpr size_t kWalHeaderSize = 20;  // magic + first_lsn + crc

enum class WalRecordType : uint8_t {
  kInsertFragment = 1,  // target = parent, child_index, payload = fragment
  kDeleteSubtree = 2,   // target
  kUpdateText = 3,      // target, payload = new text
  // The preceding record with LSN `aborted_lsn` was appended but its apply
  // failed; replay must skip it. (Logged because the WAL is written before
  // the apply — see DurabilityManager.)
  kAbort = 4,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsertFragment;
  xml::NodeId target = xml::kNoNode;  // insert parent / delete / update target
  uint64_t child_index = 0;           // kInsertFragment only
  std::string payload;                // fragment XML / new text
  uint64_t aborted_lsn = 0;           // kAbort only
};

// Appends records to one segment file. Not thread-safe; the
// DurabilityManager serializes access under its mutation mutex.
class WalWriter {
 public:
  // Creates (truncating any existing file) a segment whose header claims
  // `first_lsn`. With `fsync_each`, every append is fsynced before it is
  // acknowledged. Fault points: "wal.open", and per append "wal.append" /
  // "wal.sync".
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t first_lsn,
                                                   bool fsync_each);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record and returns the new tail offset. On any failure
  // (injected fault, short write, failed fsync) the file is truncated back
  // to its pre-append length first: an unacknowledged mutation never
  // survives on disk.
  Result<uint64_t> Append(const WalRecord& rec);

  // Explicit fsync (no-op value for callers that batch with fsync_each
  // off). Fault point "wal.sync".
  Status Sync();

  // Truncates the segment back to `offset` (used by the manager to scrub
  // a record whose abort marker could not be written).
  Status TruncateTo(uint64_t offset);

  uint64_t tail_offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, bool fsync_each, uint64_t offset)
      : fd_(fd),
        path_(std::move(path)),
        fsync_each_(fsync_each),
        offset_(offset) {}

  int fd_ = -1;
  std::string path_;
  bool fsync_each_ = false;
  uint64_t offset_ = 0;
};

// Encodes one record as its framed on-disk bytes (len | crc | payload).
// Exposed for tests that compute expected record boundaries.
std::string EncodeWalRecord(const WalRecord& rec);

struct WalSegment {
  uint64_t first_lsn = 0;
  std::vector<WalRecord> records;  // the valid prefix, in file order
  bool torn = false;               // a torn/corrupt tail followed the prefix
  uint64_t valid_bytes = 0;        // file offset just past the last good record
  // File offset just past each valid record (valid_offsets[i] is the tail
  // after records[i]); used by recovery tests to enumerate boundaries.
  std::vector<uint64_t> valid_offsets;
};

// Reads a segment: validates the header, then collects records until EOF
// or the first torn/corrupt record. A malformed header is an error (the
// segment carries no usable data); a torn tail is not (the prefix is the
// durable truth).
Result<WalSegment> ReadWalSegment(const std::string& path);

}  // namespace xprel::durability

#endif  // XPREL_DURABILITY_WAL_H_
