#ifndef XPREL_DURABILITY_SNAPSHOT_H_
#define XPREL_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "shred/edge_loader.h"
#include "shred/schema_loader.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::durability {

// Checksummed, versioned snapshot of the full shredded state:
//
//   header  := magic "XPSNAP01" (8) | format u32 | applied_lsn u64 |
//              next_lsn u64 | crc32c(first 28) u32
//   section := len u32 | crc32c(payload) u32 | payload      (x3)
//
// Sections, in order: the document's raw node array (verbatim, including
// dead nodes — node ids must stay stable so WAL replay and origin maps
// resolve), then the schema-aware PPF store, then the Edge store (each:
// present flag, loader bookkeeping, per-table column dictionaries + codes
// + tombstone bitmap). Derived structures — B-tree indexes, intern maps,
// the accelerator pre/post image — are *not* stored; they are rebuilt
// from the restored rows on load.
//
// `next_lsn` is the WAL expectation: replay after this snapshot starts at
// exactly that LSN. It can exceed applied_lsn + 1 because aborted
// mutations consume LSNs without advancing the applied position.
//
// Every corruption — bad magic or CRC, unknown format version, structural
// inconsistency between sections — yields a clean InvalidArgument, never
// UB; recovery treats that as "this snapshot is gone" and degrades.

inline constexpr std::string_view kSnapshotMagic = "XPSNAP01";
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr size_t kSnapshotHeaderSize = 32;

struct SnapshotMeta {
  uint64_t applied_lsn = 0;  // last mutation folded into this snapshot
  uint64_t next_lsn = 1;     // first LSN the WAL tail may continue with
};

// Writes the snapshot to `path` (truncating) and fsyncs it. The caller
// (DurabilityManager) writes to a temp name and renames for atomicity.
// Fault points: "snap.write", "snap.sync".
Status WriteSnapshotFile(const std::string& path, const xml::Document& doc,
                         const shred::SchemaAwareStore* ppf,
                         const shred::EdgeStore* edge,
                         const SnapshotMeta& meta);

struct RestoredState {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<shred::SchemaAwareStore> ppf;  // null if absent at write
  std::unique_ptr<shred::EdgeStore> edge;        // null if absent at write
  SnapshotMeta meta;
};

// Reads and validates a snapshot, reconstructing the document and both
// stores (schemas recreated from `graph`, contents restored, indexes
// rebuilt). Fault point: "snap.load".
Result<RestoredState> ReadSnapshotFile(const std::string& path,
                                       const xsd::SchemaGraph& graph);

}  // namespace xprel::durability

#endif  // XPREL_DURABILITY_SNAPSHOT_H_
