#ifndef XPREL_DURABILITY_MANAGER_H_
#define XPREL_DURABILITY_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "common/result.h"
#include "common/trace.h"
#include "dml/mutator.h"
#include "durability/wal.h"
#include "engine/engine.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::durability {

struct DurabilityOptions {
  // Fsync the WAL after every appended record before acknowledging the
  // mutation. The torn-tail consistency story (recovery truncates at the
  // last valid record) holds either way; fsync extends the no-loss
  // guarantee from process crash to OS/power failure, at a per-mutation
  // cost the bench quantifies.
  bool fsync_wal = false;
  // Auto-checkpoint once this many WAL bytes accumulated since the last
  // snapshot (checked synchronously after each mutation and by the
  // background checkpointer). 0 = only explicit Checkpoint() calls or the
  // background thread's size check (which then never triggers) run.
  uint64_t checkpoint_wal_bytes = 4u << 20;
  // Keep superseded snapshots and fully-checkpointed WAL segments. With
  // history retained, recovery degrades losslessly: newest snapshot + WAL
  // tail, then any older snapshot + more segments, and ultimately a
  // reshred of dir/source.xml plus a full replay from LSN 1. Turning this
  // off prunes at each checkpoint (bounded disk, shallower ladder).
  bool retain_history = true;
  // Poll interval of the background checkpointer thread.
  std::chrono::milliseconds checkpointer_interval{100};
};

// Monotonic counters, readable while the manager runs.
struct DurabilityStats {
  std::atomic<uint64_t> wal_records{0};
  std::atomic<uint64_t> wal_bytes{0};
  std::atomic<uint64_t> wal_aborts{0};           // apply-failed markers logged
  std::atomic<uint64_t> wal_append_failures{0};  // mutation rejected pre-apply
  std::atomic<uint64_t> checkpoints{0};
  std::atomic<uint64_t> checkpoint_failures{0};
  std::atomic<uint64_t> snapshot_bytes{0};  // size of the newest snapshot
  // Set once at recovery time (see OpenOrRecover) so serving layers can
  // export them as metrics.
  std::atomic<uint64_t> recovery_replayed{0};
  std::atomic<uint64_t> recovery_corrupt_snapshots{0};
  std::atomic<uint64_t> recovery_reshred_fallbacks{0};
};

struct RecoveredEngine;

// How one OpenOrRecover run rebuilt the engine.
struct RecoveryReport {
  bool used_snapshot = false;
  uint64_t snapshot_lsn = 0;  // applied LSN of the snapshot used
  uint64_t corrupt_snapshots = 0;
  bool reshred_fallback = false;  // no usable snapshot: reshred source.xml
  uint64_t replayed = 0;          // WAL records applied
  uint64_t skipped_aborted = 0;   // records skipped via abort markers
  uint64_t torn_segments = 0;     // segments whose tail was truncated
  uint64_t recovered_lsn = 0;     // applied LSN after replay
  std::string trace;              // rendered "recover" span tree
};

// Write-ahead durability for one engine + document. The logical record of
// every mutation is appended to the WAL (and optionally fsynced) *before*
// the DocumentMutator applies it; a mutation whose apply fails is marked
// aborted in the log (or scrubbed from the tail when even that fails), so
// replay applies exactly the acknowledged mutations. Checkpoints serialize
// the full shredded state to a checksummed snapshot, atomically rename it
// into place, and rotate the WAL.
//
// Directory layout under `dir`:
//   source.xml            pristine document (reshred fallback), written once
//   wal-<first_lsn>.wal   log segments
//   snap-<lsn>.snap       snapshots, named by their applied LSN
//
// Thread-safety: mutations and checkpoints serialize on an internal mutex;
// queries keep running against the engine except during the snapshot
// serialization window, which holds the engine's reader lock (excluding
// writers — compatible with concurrent Run()).
class DurabilityManager {
 public:
  // Attaches durability to a live engine over `doc`, rooted at `dir`
  // (created if needed): writes dir/source.xml and opens the first WAL
  // segment. Refuses a directory that already holds WAL segments or
  // snapshots — that state belongs to OpenOrRecover. `doc` and `engine`
  // must outlive the manager.
  static Result<std::unique_ptr<DurabilityManager>> Create(
      std::string dir, xml::Document& doc, engine::XPathEngine& engine,
      DurabilityOptions options = {});

  ~DurabilityManager();
  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  // Durable mutations: log first, then apply through dml::DocumentMutator.
  // The returned result mirrors the mutator's (feed `affected` to the
  // service's InvalidateMutation as usual).
  Result<dml::MutationResult> InsertFragment(xml::NodeId parent,
                                             size_t child_index,
                                             std::string_view fragment_xml);
  Result<dml::MutationResult> DeleteSubtree(xml::NodeId target);
  Result<dml::MutationResult> UpdateText(xml::NodeId target,
                                         std::string_view new_text);

  // Snapshots the current state and rotates the WAL. The previous snapshot
  // is only removed (retain_history off) after the new one is durable; a
  // failed checkpoint leaves the old snapshot + full WAL intact and is
  // reported in stats, never propagated into mutation results.
  Status Checkpoint();

  // Background checkpointer: polls every options().checkpointer_interval
  // and checkpoints when the WAL grew past checkpoint_wal_bytes.
  void StartCheckpointer();
  void StopCheckpointer();

  const DurabilityOptions& options() const { return options_; }
  const DurabilityStats& stats() const { return stats_; }
  const dml::MutationStats& mutation_stats() const { return mutator_.stats(); }
  // Report of the recovery that produced this manager; null for a fresh
  // Create().
  const RecoveryReport* recovery_report() const {
    return recovery_report_ ? recovery_report_.get() : nullptr;
  }

  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  // Byte length of the current WAL segment (header included).
  uint64_t wal_tail_offset() const;
  std::string wal_path() const;
  const std::string& dir() const { return dir_; }

  static std::string SourceXmlPath(const std::string& dir);
  static std::string WalSegmentPath(const std::string& dir,
                                    uint64_t first_lsn);
  static std::string SnapshotPath(const std::string& dir, uint64_t lsn);

 private:
  friend Result<RecoveredEngine> OpenOrRecover(
      const std::string& dir, const xsd::SchemaGraph& graph,
      DurabilityOptions options, engine::EngineOptions engine_options,
      TraceContext* trace);

  DurabilityManager(std::string dir, xml::Document& doc,
                    engine::XPathEngine& engine, DurabilityOptions options)
      : dir_(std::move(dir)),
        doc_(doc),
        engine_(engine),
        options_(options),
        mutator_(doc, engine) {}

  // Shared tail of Create() and the recovery attach: opens the WAL segment
  // whose header claims `next_lsn`.
  Status OpenSegment(uint64_t next_lsn);

  // The log-then-apply protocol, under dml_mu_.
  Result<dml::MutationResult> Durable(
      WalRecord rec, const std::function<Result<dml::MutationResult>()>& apply);

  Status CheckpointLocked();
  void PruneLocked(uint64_t keep_snapshot_lsn, uint64_t keep_segment_lsn);
  void CheckpointerLoop();

  const std::string dir_;
  xml::Document& doc_;
  engine::XPathEngine& engine_;
  const DurabilityOptions options_;
  dml::DocumentMutator mutator_;

  // Serializes mutations and checkpoints (the engine's writer lock only
  // covers the in-memory apply; the WAL append must order with it).
  mutable std::mutex dml_mu_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_lsn_ = 1;
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> wal_bytes_since_checkpoint_{0};

  DurabilityStats stats_;
  std::unique_ptr<RecoveryReport> recovery_report_;

  std::thread checkpointer_;
  std::mutex checkpointer_mu_;
  std::condition_variable checkpointer_cv_;
  bool checkpointer_stop_ = false;
};

// A fully recovered engine stack. Members are declaration-ordered so the
// manager (which references doc and engine) is destroyed first.
struct RecoveredEngine {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<engine::XPathEngine> engine;
  std::unique_ptr<DurabilityManager> manager;
  RecoveryReport report;
};

// Opens a durability directory: loads the newest valid snapshot (corrupt
// ones are counted and skipped — older snapshots are tried next), replays
// the WAL tail through the DocumentMutator path, and returns the rebuilt
// stack with a fresh WAL segment open. When no snapshot is usable it
// degrades to reshredding dir/source.xml and replaying the entire log.
// Torn WAL tails are truncated at the last valid record. Emits "recover",
// "recover.snapshot", "recover.replay" and "recover.reshred" spans on
// `trace` (an internal context is used when null; either way the rendered
// tree lands in the report).
Result<RecoveredEngine> OpenOrRecover(const std::string& dir,
                                      const xsd::SchemaGraph& graph,
                                      DurabilityOptions options = {},
                                      engine::EngineOptions engine_options = {},
                                      TraceContext* trace = nullptr);

}  // namespace xprel::durability

#endif  // XPREL_DURABILITY_MANAGER_H_
