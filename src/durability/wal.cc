#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "durability/crc32c.h"
#include "durability/serde.h"

namespace xprel::durability {
namespace {

// Records larger than this are rejected by writer and reader alike; a
// length field above it in a file is corruption, not a huge record.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

Status Errno(const char* op, const std::string& path) {
  std::ostringstream os;
  os << "wal: " << op << " " << path << ": " << std::strerror(errno);
  return Status::Internal(os.str());
}

Status WriteFully(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

std::string EncodePayload(const WalRecord& rec) {
  ByteSink sink;
  sink.U64(rec.lsn);
  sink.U8(static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kInsertFragment:
      sink.I32(rec.target);
      sink.U64(rec.child_index);
      sink.Str(rec.payload);
      break;
    case WalRecordType::kDeleteSubtree:
      sink.I32(rec.target);
      break;
    case WalRecordType::kUpdateText:
      sink.I32(rec.target);
      sink.Str(rec.payload);
      break;
    case WalRecordType::kAbort:
      sink.U64(rec.aborted_lsn);
      break;
  }
  return sink.Take();
}

// Decodes one payload; false on unknown type / malformed fields.
bool DecodePayload(std::string_view payload, WalRecord* rec) {
  ByteReader reader(payload);
  rec->lsn = reader.U64();
  uint8_t type = reader.U8();
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kInsertFragment):
      rec->type = WalRecordType::kInsertFragment;
      rec->target = reader.I32();
      rec->child_index = reader.U64();
      rec->payload = reader.Str();
      break;
    case static_cast<uint8_t>(WalRecordType::kDeleteSubtree):
      rec->type = WalRecordType::kDeleteSubtree;
      rec->target = reader.I32();
      break;
    case static_cast<uint8_t>(WalRecordType::kUpdateText):
      rec->type = WalRecordType::kUpdateText;
      rec->target = reader.I32();
      rec->payload = reader.Str();
      break;
    case static_cast<uint8_t>(WalRecordType::kAbort):
      rec->type = WalRecordType::kAbort;
      rec->aborted_lsn = reader.U64();
      break;
    default:
      return false;
  }
  return reader.ok() && reader.AtEnd();
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string payload = EncodePayload(rec);
  ByteSink frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32c(payload));
  frame.Raw(payload);
  return frame.Take();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t first_lsn,
                                                     bool fsync_each) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("wal.open"));
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open", path);

  ByteSink header;
  header.Raw(kWalMagic);
  header.U64(first_lsn);
  header.U32(Crc32c(header.bytes()));
  Status s = WriteFully(fd, header.bytes().data(), header.bytes().size(), path);
  if (s.ok() && fsync_each && ::fsync(fd) != 0) s = Errno("fsync", path);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(fd, path, fsync_each, kWalHeaderSize));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WalWriter::Append(const WalRecord& rec) {
  const uint64_t pre = offset_;
  Status s = XPREL_FAULT_POINT("wal.append");
  if (s.ok()) {
    std::string frame = EncodeWalRecord(rec);
    s = WriteFully(fd_, frame.data(), frame.size(), path_);
    if (s.ok()) {
      offset_ += frame.size();
      if (fsync_each_) s = Sync();
    }
  }
  if (!s.ok()) {
    // Scrub whatever partially landed: an append that was not acknowledged
    // must not be replayable.
    (void)TruncateTo(pre);
    return s;
  }
  return offset_;
}

Status WalWriter::Sync() {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("wal.sync"));
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::Ok();
}

Status WalWriter::TruncateTo(uint64_t offset) {
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
    return Errno("ftruncate", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    return Errno("lseek", path_);
  }
  offset_ = offset;
  return Status::Ok();
}

Result<WalSegment> ReadWalSegment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("wal: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("wal: read failed for " + path);
  }
  const std::string data = buf.str();

  if (data.size() < kWalHeaderSize) {
    return Status::InvalidArgument("wal: " + path + ": truncated header");
  }
  if (std::string_view(data.data(), kWalMagic.size()) != kWalMagic) {
    return Status::InvalidArgument("wal: " + path + ": bad magic");
  }
  ByteReader header(std::string_view(data.data() + kWalMagic.size(), 12));
  uint64_t first_lsn = header.U64();
  uint32_t stored_crc = header.U32();
  if (stored_crc != Crc32c(data.data(), kWalHeaderSize - 4)) {
    return Status::InvalidArgument("wal: " + path + ": header CRC mismatch");
  }

  WalSegment segment;
  segment.first_lsn = first_lsn;
  segment.valid_bytes = kWalHeaderSize;
  size_t pos = kWalHeaderSize;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      segment.torn = true;  // frame header cut off mid-write
      break;
    }
    ByteReader frame(std::string_view(data.data() + pos, 8));
    uint32_t len = frame.U32();
    uint32_t crc = frame.U32();
    if (len > kMaxRecordPayload || data.size() - pos - 8 < len) {
      segment.torn = true;  // length runs past EOF (or is garbage)
      break;
    }
    std::string_view payload(data.data() + pos + 8, len);
    if (crc != Crc32c(payload)) {
      segment.torn = true;
      break;
    }
    WalRecord rec;
    if (!DecodePayload(payload, &rec)) {
      segment.torn = true;  // CRC fine but structure bad: treat as corrupt tail
      break;
    }
    pos += 8 + len;
    segment.records.push_back(std::move(rec));
    segment.valid_bytes = pos;
    segment.valid_offsets.push_back(pos);
  }
  return segment;
}

}  // namespace xprel::durability
