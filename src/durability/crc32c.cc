#include "durability/crc32c.h"

#include <array>

namespace xprel::durability {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace xprel::durability
