#include "durability/manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "durability/snapshot.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xprel::durability {
namespace {

namespace fs = std::filesystem;

std::string NumberedName(std::string_view prefix, uint64_t number,
                         std::string_view suffix) {
  std::ostringstream os;
  os << prefix << std::setw(20) << std::setfill('0') << number << suffix;
  return os.str();
}

struct NumberedFile {
  uint64_t number = 0;
  std::string path;
};

// Files named <prefix><digits><suffix> in `dir`, ascending by number.
std::vector<NumberedFile> ListNumbered(const std::string& dir,
                                       std::string_view prefix,
                                       std::string_view suffix) {
  std::vector<NumberedFile> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10),
                   (fs::path(dir) / name).string()});
  }
  std::sort(out.begin(), out.end(),
            [](const NumberedFile& a, const NumberedFile& b) {
              return a.number < b.number;
            });
  return out;
}

Status WriteRawFileDurably(const std::string& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("durability: open " + path + ": " +
                            std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal("durability: write " + path + ": " +
                                  std::strerror(errno));
      ::close(fd);
      return s;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = Status::Internal("durability: fsync " + path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::Ok();
}

// Best-effort directory fsync after a rename, so the new name itself is
// durable. Failure is not actionable (and some filesystems refuse it).
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string DurabilityManager::SourceXmlPath(const std::string& dir) {
  return (fs::path(dir) / "source.xml").string();
}

std::string DurabilityManager::WalSegmentPath(const std::string& dir,
                                              uint64_t first_lsn) {
  return (fs::path(dir) / NumberedName("wal-", first_lsn, ".wal")).string();
}

std::string DurabilityManager::SnapshotPath(const std::string& dir,
                                            uint64_t lsn) {
  return (fs::path(dir) / NumberedName("snap-", lsn, ".snap")).string();
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Create(
    std::string dir, xml::Document& doc, engine::XPathEngine& engine,
    DurabilityOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("durability: cannot create " + dir + ": " +
                            ec.message());
  }
  if (!ListNumbered(dir, "wal-", ".wal").empty() ||
      !ListNumbered(dir, "snap-", ".snap").empty()) {
    return Status::InvalidArgument(
        "durability: " + dir +
        " already holds WAL/snapshot state; use OpenOrRecover");
  }
  const std::string source = SourceXmlPath(dir);
  if (!fs::exists(source, ec)) {
    XPREL_RETURN_IF_ERROR(WriteRawFileDurably(source, xml::SerializeXml(doc)));
  }
  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(std::move(dir), doc, engine, options));
  XPREL_RETURN_IF_ERROR(manager->OpenSegment(1));
  return manager;
}

DurabilityManager::~DurabilityManager() { StopCheckpointer(); }

Status DurabilityManager::OpenSegment(uint64_t next_lsn) {
  auto writer = WalWriter::Create(WalSegmentPath(dir_, next_lsn), next_lsn,
                                  options_.fsync_wal);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer).value();
  next_lsn_ = next_lsn;
  return Status::Ok();
}

uint64_t DurabilityManager::wal_tail_offset() const {
  std::lock_guard<std::mutex> lock(dml_mu_);
  return wal_->tail_offset();
}

std::string DurabilityManager::wal_path() const {
  std::lock_guard<std::mutex> lock(dml_mu_);
  return wal_->path();
}

Result<dml::MutationResult> DurabilityManager::Durable(
    WalRecord rec, const std::function<Result<dml::MutationResult>()>& apply) {
  std::lock_guard<std::mutex> lock(dml_mu_);
  const uint64_t pre = wal_->tail_offset();
  rec.lsn = next_lsn_;
  Result<uint64_t> tail = wal_->Append(rec);
  if (!tail.ok()) {
    // Nothing reached the log (Append truncates its own debris): reject the
    // mutation before the apply so memory and disk agree.
    stats_.wal_append_failures.fetch_add(1, std::memory_order_relaxed);
    return tail.status();
  }
  ++next_lsn_;
  stats_.wal_records.fetch_add(1, std::memory_order_relaxed);
  stats_.wal_bytes.fetch_add(*tail - pre, std::memory_order_relaxed);
  wal_bytes_since_checkpoint_.fetch_add(*tail - pre,
                                        std::memory_order_relaxed);

  Result<dml::MutationResult> result = apply();
  if (!result.ok()) {
    // The record is on disk but the mutation rolled back. Persist an abort
    // marker so replay skips it; if even that fails, scrub both from the
    // tail — either way the log replays to exactly the acknowledged state.
    WalRecord abort;
    abort.lsn = next_lsn_;
    abort.type = WalRecordType::kAbort;
    abort.aborted_lsn = rec.lsn;
    Result<uint64_t> abort_tail = wal_->Append(abort);
    if (abort_tail.ok()) {
      ++next_lsn_;
      stats_.wal_records.fetch_add(1, std::memory_order_relaxed);
      stats_.wal_aborts.fetch_add(1, std::memory_order_relaxed);
      stats_.wal_bytes.fetch_add(*abort_tail - *tail,
                                 std::memory_order_relaxed);
    } else {
      (void)wal_->TruncateTo(pre);
      next_lsn_ = rec.lsn;
    }
    return result;
  }

  applied_lsn_.store(rec.lsn, std::memory_order_release);
  if (options_.checkpoint_wal_bytes > 0 &&
      wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) >=
          options_.checkpoint_wal_bytes) {
    (void)CheckpointLocked();  // failure recorded in stats, mutation succeeded
  }
  return result;
}

Result<dml::MutationResult> DurabilityManager::InsertFragment(
    xml::NodeId parent, size_t child_index, std::string_view fragment_xml) {
  WalRecord rec;
  rec.type = WalRecordType::kInsertFragment;
  rec.target = parent;
  rec.child_index = child_index;
  rec.payload.assign(fragment_xml.data(), fragment_xml.size());
  return Durable(std::move(rec), [&] {
    return mutator_.InsertFragment(parent, child_index, fragment_xml);
  });
}

Result<dml::MutationResult> DurabilityManager::DeleteSubtree(
    xml::NodeId target) {
  WalRecord rec;
  rec.type = WalRecordType::kDeleteSubtree;
  rec.target = target;
  return Durable(std::move(rec), [&] { return mutator_.DeleteSubtree(target); });
}

Result<dml::MutationResult> DurabilityManager::UpdateText(
    xml::NodeId target, std::string_view new_text) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdateText;
  rec.target = target;
  rec.payload.assign(new_text.data(), new_text.size());
  return Durable(std::move(rec),
                 [&] { return mutator_.UpdateText(target, new_text); });
}

Status DurabilityManager::Checkpoint() {
  std::lock_guard<std::mutex> lock(dml_mu_);
  return CheckpointLocked();
}

Status DurabilityManager::CheckpointLocked() {
  const uint64_t applied = applied_lsn_.load(std::memory_order_acquire);
  const uint64_t next = next_lsn_;
  const std::string tmp = (fs::path(dir_) / "snap.tmp").string();
  const std::string final_path = SnapshotPath(dir_, applied);

  Status s;
  {
    // Exclude writers only for the serialization window; concurrent reads
    // keep running (shared lock), and mutations are already excluded by
    // dml_mu_ — the reader lock additionally fences the engine's lazy
    // accelerator rebuild.
    auto reader_lock = engine_.ReaderLock();
    SnapshotMeta meta;
    meta.applied_lsn = applied;
    meta.next_lsn = next;
    s = WriteSnapshotFile(tmp, doc_, engine_.ppf_store(), engine_.edge_store(),
                          meta);
  }
  if (s.ok()) {
    s = XPREL_FAULT_POINT("snap.rename");
    if (s.ok() && std::rename(tmp.c_str(), final_path.c_str()) != 0) {
      s = Status::Internal("snapshot: rename " + tmp + " -> " + final_path +
                           ": " + std::strerror(errno));
    }
  }
  if (!s.ok()) {
    stats_.checkpoint_failures.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    fs::remove(tmp, ec);
    return s;
  }
  SyncDir(dir_);
  std::error_code ec;
  const auto snapshot_size = fs::file_size(final_path, ec);
  if (!ec) {
    stats_.snapshot_bytes.store(snapshot_size, std::memory_order_relaxed);
  }
  stats_.checkpoints.fetch_add(1, std::memory_order_relaxed);

  // Rotate to a fresh segment. Rotation failure is benign — the current
  // segment keeps growing and replay still works; retry at the next
  // checkpoint.
  auto rotated = WalWriter::Create(WalSegmentPath(dir_, next), next,
                                   options_.fsync_wal);
  if (rotated.ok()) wal_ = std::move(rotated).value();
  wal_bytes_since_checkpoint_.store(0, std::memory_order_relaxed);

  if (!options_.retain_history) PruneLocked(applied, next);
  return Status::Ok();
}

void DurabilityManager::PruneLocked(uint64_t keep_snapshot_lsn,
                                    uint64_t keep_segment_lsn) {
  std::error_code ec;
  for (const auto& snap : ListNumbered(dir_, "snap-", ".snap")) {
    if (snap.number != keep_snapshot_lsn) fs::remove(snap.path, ec);
  }
  for (const auto& seg : ListNumbered(dir_, "wal-", ".wal")) {
    // Segments below the new snapshot's replay start are fully covered by
    // it; never touch the segment the writer still appends to.
    if (seg.number < keep_segment_lsn && seg.path != wal_->path()) {
      fs::remove(seg.path, ec);
    }
  }
}

void DurabilityManager::StartCheckpointer() {
  if (checkpointer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpointer_mu_);
    checkpointer_stop_ = false;
  }
  checkpointer_ = std::thread([this] { CheckpointerLoop(); });
}

void DurabilityManager::StopCheckpointer() {
  if (!checkpointer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(checkpointer_mu_);
    checkpointer_stop_ = true;
  }
  checkpointer_cv_.notify_all();
  checkpointer_.join();
  checkpointer_ = std::thread();
}

void DurabilityManager::CheckpointerLoop() {
  std::unique_lock<std::mutex> lock(checkpointer_mu_);
  while (!checkpointer_stop_) {
    checkpointer_cv_.wait_for(lock, options_.checkpointer_interval);
    if (checkpointer_stop_) break;
    if (options_.checkpoint_wal_bytes > 0 &&
        wal_bytes_since_checkpoint_.load(std::memory_order_relaxed) >=
            options_.checkpoint_wal_bytes) {
      lock.unlock();
      (void)Checkpoint();
      lock.lock();
    }
  }
}

Result<RecoveredEngine> OpenOrRecover(const std::string& dir,
                                      const xsd::SchemaGraph& graph,
                                      DurabilityOptions options,
                                      engine::EngineOptions engine_options,
                                      TraceContext* trace) {
  TraceContext local_trace(1);
  TraceContext* t = trace != nullptr ? trace : &local_trace;
  const int recover_span = t->BeginSpan("recover");

  RecoveryReport report;
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<engine::XPathEngine> eng;
  SnapshotMeta meta;  // applied 0, next 1: full replay when no snapshot

  {
    ScopedSpan span(t, "recover.snapshot", recover_span);
    auto snaps = ListNumbered(dir, "snap-", ".snap");
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
      auto restored = ReadSnapshotFile(it->path, graph);
      if (!restored.ok()) {
        ++report.corrupt_snapshots;
        continue;
      }
      auto built = engine::XPathEngine::BuildFromStores(
          *restored->doc, graph, std::move(restored->ppf),
          std::move(restored->edge), engine_options);
      if (!built.ok()) {
        ++report.corrupt_snapshots;
        continue;
      }
      doc = std::move(restored->doc);
      eng = std::move(built).value();
      meta = restored->meta;
      report.used_snapshot = true;
      report.snapshot_lsn = meta.applied_lsn;
      span.Annotate("lsn=" + std::to_string(meta.applied_lsn));
      break;
    }
  }

  if (eng == nullptr) {
    // Degraded path: no usable snapshot. Reshred the pristine source and
    // replay the entire log from LSN 1.
    ScopedSpan span(t, "recover.reshred", recover_span);
    report.reshred_fallback = true;
    meta = SnapshotMeta{};
    const std::string source = DurabilityManager::SourceXmlPath(dir);
    std::ifstream in(source, std::ios::binary);
    if (!in) {
      t->EndSpan(recover_span);
      return Status::NotFound(
          "durability: no usable snapshot and no source.xml in " + dir);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = xml::ParseXml(buf.str());
    if (!parsed.ok()) {
      t->EndSpan(recover_span);
      return parsed.status();
    }
    doc = std::make_unique<xml::Document>(std::move(parsed).value());
    auto built = engine::XPathEngine::Build(*doc, graph, engine_options);
    if (!built.ok()) {
      t->EndSpan(recover_span);
      return built.status();
    }
    eng = std::move(built).value();
  }

  report.recovered_lsn = meta.applied_lsn;
  uint64_t expected = meta.next_lsn;
  {
    ScopedSpan span(t, "recover.replay", recover_span);
    std::vector<WalRecord> records;
    for (const auto& seg : ListNumbered(dir, "wal-", ".wal")) {
      auto segment = ReadWalSegment(seg.path);
      if (!segment.ok()) continue;  // corrupt header: no usable records
      if (segment->torn) {
        // Physically truncate the torn tail so the segment is clean for
        // the next recovery.
        ++report.torn_segments;
        (void)::truncate(seg.path.c_str(),
                         static_cast<off_t>(segment->valid_bytes));
      }
      for (auto& rec : segment->records) records.push_back(std::move(rec));
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const WalRecord& a, const WalRecord& b) {
                       return a.lsn < b.lsn;
                     });
    std::set<uint64_t> aborted;
    for (const auto& rec : records) {
      if (rec.type == WalRecordType::kAbort) aborted.insert(rec.aborted_lsn);
    }

    dml::DocumentMutator replayer(*doc, *eng);
    for (const auto& rec : records) {
      if (rec.lsn < expected) continue;  // already folded into the snapshot
      if (rec.lsn != expected) break;    // gap: nothing beyond is trustworthy
      ++expected;
      if (rec.type == WalRecordType::kAbort) continue;
      if (aborted.count(rec.lsn) != 0) {
        ++report.skipped_aborted;
        continue;
      }
      Result<dml::MutationResult> applied = [&]() {
        switch (rec.type) {
          case WalRecordType::kInsertFragment:
            return replayer.InsertFragment(
                rec.target, static_cast<size_t>(rec.child_index), rec.payload);
          case WalRecordType::kDeleteSubtree:
            return replayer.DeleteSubtree(rec.target);
          case WalRecordType::kUpdateText:
            return replayer.UpdateText(rec.target, rec.payload);
          case WalRecordType::kAbort:
            break;
        }
        return Result<dml::MutationResult>(
            Status::Internal("unreachable wal record type"));
      }();
      if (!applied.ok()) {
        t->EndSpan(recover_span);
        return Status::Internal(
            "durability: replay failed at lsn " + std::to_string(rec.lsn) +
            ": " + applied.status().message());
      }
      ++report.replayed;
      report.recovered_lsn = rec.lsn;
    }
    span.Annotate("replayed=" + std::to_string(report.replayed));
  }

  std::unique_ptr<DurabilityManager> manager(
      new DurabilityManager(dir, *doc, *eng, options));
  Status opened = manager->OpenSegment(expected);
  if (!opened.ok()) {
    t->EndSpan(recover_span);
    return opened;
  }
  manager->applied_lsn_.store(report.recovered_lsn, std::memory_order_release);
  manager->stats_.recovery_replayed.store(report.replayed,
                                          std::memory_order_relaxed);
  manager->stats_.recovery_corrupt_snapshots.store(
      report.corrupt_snapshots, std::memory_order_relaxed);
  manager->stats_.recovery_reshred_fallbacks.store(
      report.reshred_fallback ? 1 : 0, std::memory_order_relaxed);

  t->EndSpan(recover_span);
  report.trace = t->Render();
  manager->recovery_report_ = std::make_unique<RecoveryReport>(report);

  RecoveredEngine recovered;
  recovered.doc = std::move(doc);
  recovered.engine = std::move(eng);
  recovered.manager = std::move(manager);
  recovered.report = std::move(report);
  return recovered;
}

}  // namespace xprel::durability
