#ifndef XPREL_DURABILITY_CRC32C_H_
#define XPREL_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xprel::durability {

// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum the
// WAL and snapshot formats use for every header and frame. Software
// slice-by-one implementation; `seed` chains partial computations.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace xprel::durability

#endif  // XPREL_DURABILITY_CRC32C_H_
