#ifndef XPREL_SHRED_SCHEMA_MAP_H_
#define XPREL_SHRED_SCHEMA_MAP_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "xsd/schema_graph.h"

namespace xprel::shred {

// Column names shared by every mapping relation (paper Section 3).
inline constexpr char kIdColumn[] = "id";
inline constexpr char kDocIdColumn[] = "doc_id";
inline constexpr char kDeweyColumn[] = "dewey_pos";
inline constexpr char kPathIdColumn[] = "path_id";
inline constexpr char kTextColumn[] = "text";
inline constexpr char kPathsTable[] = "Paths";
inline constexpr char kPathsPathColumn[] = "path";

// How one relation of the schema-aware mapping is laid out.
struct RelationInfo {
  std::string name;
  bool is_document_relation = false;  // has doc_id
  bool has_text = false;
  // attribute name -> column name (renamed when colliding with a reserved
  // column, e.g. attribute "id" -> column "attr_id").
  std::map<std::string, std::string> attr_columns;
  // parent relation name -> FK column name ("<Parent>_id").
  std::map<std::string, std::string> parent_fk_columns;
  // Schema-graph node ids stored in this relation.
  std::vector<int> nodes;
};

// The schema-aware XML-to-relational mapping (paper Section 3):
//   * each globally named complex type -> one relation (shared by every
//     element declaration of that type),
//   * every other element declaration -> its own relation,
//   * text and attributes -> columns,
//   * one FK column per possible parent relation,
//   * id / dewey_pos / path_id descriptors on every relation,
//   * a shared `Paths` relation holding distinct root-to-node paths.
//
// Indexes per relation (Section 3.1): unique B-tree on id, one per parent
// FK column, a composite (dewey_pos, path_id), and a path_id index so that
// path-filtered retrieval does not scan (our addition; the paper's Oracle
// setup gets the equivalent via the composite index fast full scan).
class SchemaAwareMapping {
 public:
  static Result<SchemaAwareMapping> Create(const xsd::SchemaGraph& graph);

  const xsd::SchemaGraph& graph() const { return *graph_; }

  // Relation name storing the given schema-graph node.
  const std::string& RelationOf(int node_id) const {
    return node_relation_[static_cast<size_t>(node_id)];
  }
  const RelationInfo* FindRelation(const std::string& name) const;
  const std::map<std::string, RelationInfo>& relations() const {
    return relations_;
  }

  // Instantiates all tables (mapping relations + Paths) in `db`.
  Status CreateTables(rel::Database& db) const;

 private:
  const xsd::SchemaGraph* graph_ = nullptr;
  std::vector<std::string> node_relation_;  // node id -> relation name
  std::map<std::string, RelationInfo> relations_;
};

// What one store-level mutation touched — the raw material for path-scoped
// cache invalidation (engine::AffectedPaths aggregates one of these per
// backend store).
struct MutationEffects {
  // Path ids of element rows inserted, deleted, or text-updated. May repeat.
  std::vector<int64_t> paths;
  // Paths created / retired by the mutation. Nonzero means the path
  // summary itself changed, so plans compiled against it (regex path
  // filters, bitmaps, statically-empty verdicts) are structurally stale
  // beyond any one path id.
  int64_t paths_added = 0;
  int64_t paths_retired = 0;
  bool changed() const { return paths_added != 0 || paths_retired != 0; }
};

// Keeps the `Paths` relation and its in-memory cache in sync while loading
// (paper Section 3.1: filled gradually during insertions) and under DML:
// every Intern adds one reference (one stored element row), Release drops
// one, and a path whose last reference goes away is retired — its Paths
// row is tombstoned so fresh plans stop matching it. Retired ids are never
// reused.
class PathsRegistry {
 public:
  explicit PathsRegistry(rel::Table* paths_table) : table_(paths_table) {}

  // Id of `path`, inserting it on first sight. `created` (nullable)
  // reports whether this call added a new path to the summary — the signal
  // that makes a mutation structural for cache invalidation.
  Result<int64_t> Intern(const std::string& path, bool* created = nullptr);

  // Drops one reference to path id `id`; at zero the path is retired.
  // `retired` (nullable) reports whether that happened here.
  Status Release(int64_t id, bool* retired = nullptr);

  size_t live_paths() const { return by_id_.size(); }

  // --- Snapshot support (used by the durability layer) ---

  // One live path with its refcount — what a snapshot serializes per entry.
  struct PathState {
    std::string path;
    int64_t id = 0;
    rel::RowId row = 0;
    int64_t refs = 0;
  };
  std::vector<PathState> ExportState() const;

  // Replaces the in-memory cache with `entries`, cross-checking every one
  // against the (already restored) Paths table: the row must be live and
  // hold exactly this id and path, refs must be positive, and ids/paths
  // must not repeat. InvalidArgument on any mismatch — a corrupt snapshot
  // must not desynchronize the registry from its table.
  Status RestoreState(const std::vector<PathState>& entries);

 private:
  struct Entry {
    int64_t id = 0;
    rel::RowId row = 0;  // Paths row; valid while live (Paths never compacts)
    int64_t refs = 0;
  };
  rel::Table* table_;
  std::map<std::string, Entry> cache_;          // live paths by string
  std::map<int64_t, std::string> by_id_;        // live path id -> string
};

}  // namespace xprel::shred

#endif  // XPREL_SHRED_SCHEMA_MAP_H_
