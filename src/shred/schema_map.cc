#include "shred/schema_map.h"

#include <set>

namespace xprel::shred {

namespace {

bool IsReservedColumn(const std::string& name) {
  return name == kIdColumn || name == kDocIdColumn || name == kDeweyColumn ||
         name == kPathIdColumn || name == kTextColumn;
}

}  // namespace

Result<SchemaAwareMapping> SchemaAwareMapping::Create(
    const xsd::SchemaGraph& graph) {
  SchemaAwareMapping m;
  m.graph_ = &graph;
  m.node_relation_.resize(graph.nodes().size());

  const xsd::Schema& schema = graph.schema();

  // Pass 1: decide a relation name for every reachable node.
  //  * nodes whose type is a globally *named* complex type share the type's
  //    relation;
  //  * every other node gets its own relation named by its tag, qualified
  //    by the parent tag (then numbered) on collision.
  std::set<std::string> taken = {std::string(kPathsTable)};
  auto unique_name = [&taken](std::string base,
                              const std::string& qualifier) -> std::string {
    if (taken.count(base) == 0) {
      taken.insert(base);
      return base;
    }
    if (!qualifier.empty()) {
      std::string q = qualifier + "_" + base;
      if (taken.count(q) == 0) {
        taken.insert(q);
        return q;
      }
      base = q;
    }
    for (int i = 2;; ++i) {
      std::string cand = base + "_" + std::to_string(i);
      if (taken.count(cand) == 0) {
        taken.insert(cand);
        return cand;
      }
    }
  };

  std::map<int, std::string> type_relation;  // named type id -> relation
  for (int id : graph.ReachableNodes()) {
    const xsd::GraphNode& node = graph.node(id);
    std::string rel_name;
    if (node.type_id >= 0 && !schema.type(node.type_id).name.empty()) {
      auto it = type_relation.find(node.type_id);
      if (it != type_relation.end()) {
        rel_name = it->second;
      } else {
        rel_name = unique_name(schema.type(node.type_id).name, "");
        type_relation.emplace(node.type_id, rel_name);
      }
    } else {
      std::string qualifier;
      if (!node.parents.empty()) {
        qualifier = graph.node(node.parents.front()).tag;
      }
      rel_name = unique_name(node.tag, qualifier);
    }
    m.node_relation_[static_cast<size_t>(id)] = rel_name;
    RelationInfo& info = m.relations_[rel_name];
    info.name = rel_name;
    info.nodes.push_back(id);
    if (node.is_root) info.is_document_relation = true;
    if (node.has_text) info.has_text = true;
    for (const std::string& attr : node.attributes) {
      std::string col = IsReservedColumn(attr) ? "attr_" + attr : attr;
      info.attr_columns.emplace(attr, col);
    }
  }

  // Pass 2: parent FK columns — one per distinct parent *relation*.
  for (auto& [name, info] : m.relations_) {
    for (int id : info.nodes) {
      for (int p : graph.node(id).parents) {
        if (!graph.node(p).reachable) continue;
        const std::string& prel = m.node_relation_[static_cast<size_t>(p)];
        info.parent_fk_columns.emplace(prel, prel + "_" + kIdColumn);
      }
    }
  }
  return m;
}

const RelationInfo* SchemaAwareMapping::FindRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Status SchemaAwareMapping::CreateTables(rel::Database& db) const {
  using rel::ColumnDef;
  using rel::IndexDef;
  using rel::TableSchema;
  using rel::ValueType;

  // Paths relation: id, path.
  {
    TableSchema paths;
    paths.name = kPathsTable;
    paths.columns = {{kIdColumn, ValueType::kInt64, false},
                     {kPathsPathColumn, ValueType::kString, false}};
    paths.indexes = {{"pk_Paths", {0}, true}, {"idx_Paths_path", {1}, true}};
    auto t = db.CreateTable(std::move(paths));
    if (!t.ok()) return t.status();
  }

  for (const auto& [name, info] : relations_) {
    TableSchema ts;
    ts.name = name;
    ts.columns.push_back({kIdColumn, ValueType::kInt64, false});
    if (info.is_document_relation) {
      ts.columns.push_back({kDocIdColumn, ValueType::kInt64, false});
    }
    for (const auto& [prel, col] : info.parent_fk_columns) {
      ts.columns.push_back({col, ValueType::kInt64, true});
    }
    ts.columns.push_back({kDeweyColumn, ValueType::kBytes, false});
    ts.columns.push_back({kPathIdColumn, ValueType::kInt64, false});
    if (info.has_text) {
      ts.columns.push_back({kTextColumn, ValueType::kString, true});
    }
    for (const auto& [attr, col] : info.attr_columns) {
      ts.columns.push_back({col, ValueType::kString, true});
    }

    // Indexes (paper Section 3.1 + path_id, see class comment).
    ts.indexes.push_back({"pk_" + name, {0}, true});
    for (const auto& [prel, col] : info.parent_fk_columns) {
      ts.indexes.push_back(
          {"idx_" + name + "_" + col, {ts.ColumnIndex(col)}, false});
    }
    ts.indexes.push_back({"idx_" + name + "_dewey",
                          {ts.ColumnIndex(kDeweyColumn),
                           ts.ColumnIndex(kPathIdColumn)},
                          false});
    ts.indexes.push_back(
        {"idx_" + name + "_path", {ts.ColumnIndex(kPathIdColumn)}, false});

    auto t = db.CreateTable(std::move(ts));
    if (!t.ok()) return t.status();
  }
  return Status::Ok();
}

Result<int64_t> PathsRegistry::Intern(const std::string& path, bool* created) {
  if (created != nullptr) *created = false;
  auto it = cache_.find(path);
  if (it != cache_.end()) {
    ++it->second.refs;
    return it->second.id;
  }
  // Physical row count only grows (Paths is never compacted), so this id is
  // fresh even after earlier paths were retired.
  int64_t id = static_cast<int64_t>(table_->row_count()) + 1;
  rel::RowId row = static_cast<rel::RowId>(table_->row_count());
  XPREL_RETURN_IF_ERROR(table_->Insert(
      {rel::Value::Int(id), rel::Value::Str(path)}));
  cache_.emplace(path, Entry{id, row, 1});
  by_id_.emplace(id, path);
  if (created != nullptr) *created = true;
  return id;
}

Status PathsRegistry::Release(int64_t id, bool* retired) {
  if (retired != nullptr) *retired = false;
  auto idit = by_id_.find(id);
  if (idit == by_id_.end()) {
    return Status::InvalidArgument("paths: release of unknown path id " +
                                   std::to_string(id));
  }
  auto it = cache_.find(idit->second);
  if (--it->second.refs > 0) return Status::Ok();
  XPREL_RETURN_IF_ERROR(table_->Delete(it->second.row));
  cache_.erase(it);
  by_id_.erase(idit);
  if (retired != nullptr) *retired = true;
  return Status::Ok();
}

std::vector<PathsRegistry::PathState> PathsRegistry::ExportState() const {
  std::vector<PathState> out;
  out.reserve(cache_.size());
  for (const auto& [path, e] : cache_) {
    out.push_back({path, e.id, e.row, e.refs});
  }
  return out;
}

Status PathsRegistry::RestoreState(const std::vector<PathState>& entries) {
  std::map<std::string, Entry> cache;
  std::map<int64_t, std::string> by_id;
  for (const PathState& p : entries) {
    if (p.refs <= 0) {
      return Status::InvalidArgument("paths restore: non-positive refcount");
    }
    if (static_cast<size_t>(p.row) >= table_->row_count() ||
        table_->row_dead(p.row)) {
      return Status::InvalidArgument("paths restore: entry row " +
                                     std::to_string(p.row) +
                                     " is not a live Paths row");
    }
    if (table_->at(p.row, 0).type() != rel::ValueType::kInt64 ||
        table_->at(p.row, 0).AsInt() != p.id ||
        table_->at(p.row, 1).type() != rel::ValueType::kString ||
        table_->at(p.row, 1).AsString() != p.path) {
      return Status::InvalidArgument(
          "paths restore: entry disagrees with its Paths row");
    }
    if (!cache.emplace(p.path, Entry{p.id, p.row, p.refs}).second ||
        !by_id.emplace(p.id, p.path).second) {
      return Status::InvalidArgument("paths restore: duplicate path or id");
    }
  }
  // Every live Paths row must be claimed by exactly one entry, or future
  // Intern() calls could hand out an id the table already holds.
  size_t live = 0;
  for (rel::RowId r = 0; r < static_cast<rel::RowId>(table_->row_count());
       ++r) {
    if (!table_->row_dead(r)) ++live;
  }
  if (live != cache.size()) {
    return Status::InvalidArgument(
        "paths restore: entry count disagrees with live Paths rows");
  }
  cache_ = std::move(cache);
  by_id_ = std::move(by_id);
  return Status::Ok();
}

}  // namespace xprel::shred
