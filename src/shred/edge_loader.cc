#include "shred/edge_loader.h"

#include "common/fault_injection.h"
#include "rel/key_codec.h"

namespace xprel::shred {

using rel::ColumnDef;
using rel::TableSchema;
using rel::Value;
using rel::ValueType;

Result<std::unique_ptr<EdgeStore>> EdgeStore::Create() {
  std::unique_ptr<EdgeStore> store(new EdgeStore());

  {
    TableSchema paths;
    paths.name = kPathsTable;
    paths.columns = {{kIdColumn, ValueType::kInt64, false},
                     {kPathsPathColumn, ValueType::kString, false}};
    paths.indexes = {{"pk_Paths", {0}, true}, {"idx_Paths_path", {1}, true}};
    auto t = store->db_.CreateTable(std::move(paths));
    if (!t.ok()) return t.status();
  }
  {
    TableSchema edge;
    edge.name = kEdgeTable;
    edge.columns = {{kIdColumn, ValueType::kInt64, false},
                    {kDocIdColumn, ValueType::kInt64, false},
                    {kEdgeParColumn, ValueType::kInt64, true},
                    {kEdgeNameColumn, ValueType::kString, false},
                    {kDeweyColumn, ValueType::kBytes, false},
                    {kPathIdColumn, ValueType::kInt64, false},
                    {kTextColumn, ValueType::kString, true}};
    edge.indexes = {
        {"pk_Edge", {0}, true},
        {"idx_Edge_par", {2}, false},
        {"idx_Edge_dewey", {4, 5}, false},
        {"idx_Edge_path", {5}, false},
    };
    auto t = store->db_.CreateTable(std::move(edge));
    if (!t.ok()) return t.status();
  }
  {
    TableSchema attr;
    attr.name = kAttrTable;
    attr.columns = {{kAttrElemColumn, ValueType::kInt64, false},
                    {kAttrNameColumn, ValueType::kString, false},
                    {kAttrValueColumn, ValueType::kString, false}};
    attr.indexes = {
        {"idx_Attr_elem", {0}, false},
        {"idx_Attr_name_value", {1, 2}, false},
    };
    auto t = store->db_.CreateTable(std::move(attr));
    if (!t.ok()) return t.status();
  }
  store->paths_ =
      std::make_unique<PathsRegistry>(store->db_.FindTable(kPathsTable));
  return store;
}

Result<int64_t> EdgeStore::LoadDocument(const xml::Document& doc) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("shred.edge_load"));
  if (doc.root() == xml::kNoNode) {
    return Status::InvalidArgument("empty document");
  }
  int64_t doc_id = next_doc_id_++;
  XPREL_RETURN_IF_ERROR(LoadElement(doc, doc.root(), /*parent_id=*/-1,
                                    /*parent_path=*/"", doc_id,
                                    /*effects=*/nullptr));
  return doc_id;
}

Status EdgeStore::LoadElement(const xml::Document& doc, xml::NodeId node,
                              int64_t parent_id,
                              const std::string& parent_path, int64_t doc_id,
                              MutationEffects* effects) {
  const xml::Node& xnode = doc.node(node);
  std::string path = parent_path + "/" + xnode.name;
  bool created = false;
  auto path_id = paths_->Intern(path, &created);
  if (!path_id.ok()) return path_id.status();
  if (effects != nullptr) {
    effects->paths.push_back(*path_id);
    if (created) ++effects->paths_added;
  }

  int64_t element_id = next_element_id_++;
  origins_.push_back({doc_id, node});
  node_to_id_.emplace(std::make_pair(doc_id, node), element_id);

  std::string text;
  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind == xml::NodeKind::kText) text += doc.node(c).text;
  }

  rel::Table* edge = db_.FindTable(kEdgeTable);
  XPREL_RETURN_IF_ERROR(edge->Insert(
      {Value::Int(element_id), Value::Int(doc_id),
       parent_id >= 0 ? Value::Int(parent_id) : Value::Null(),
       Value::Str(xnode.name), Value::Bytes(doc.dewey(node)),
       Value::Int(*path_id), Value::Str(std::move(text))}));

  rel::Table* attr = db_.FindTable(kAttrTable);
  for (const xml::Attribute& a : xnode.attributes) {
    XPREL_RETURN_IF_ERROR(attr->Insert(
        {Value::Int(element_id), Value::Str(a.name), Value::Str(a.value)}));
  }

  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind != xml::NodeKind::kElement) continue;
    XPREL_RETURN_IF_ERROR(
        LoadElement(doc, c, element_id, path, doc_id, effects));
  }
  return Status::Ok();
}

Result<rel::RowId> EdgeStore::RowOf(int64_t element_id) const {
  std::string key;
  rel::AppendEncodedValue(Value::Int(element_id), key);
  const rel::Table* edge = db_.FindTable(kEdgeTable);
  std::vector<rel::RowId> rows = edge->FindIndex("pk_Edge")->Lookup(key);
  if (rows.empty()) {
    return Status::InvalidArgument("edge: no row for element id " +
                                   std::to_string(element_id));
  }
  return rows[0];
}

Status EdgeStore::InsertSubtree(const xml::Document& doc, int64_t doc_id,
                                xml::NodeId subtree_root,
                                MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.edge_insert"));
  xml::NodeId parent = doc.node(subtree_root).parent;
  if (parent == xml::kNoNode) {
    return Status::InvalidArgument("edge dml: cannot insert a new root");
  }
  int64_t parent_id = ElementIdOf(doc_id, parent);
  if (parent_id < 0) {
    return Status::InvalidArgument("edge dml: parent node not in store");
  }
  auto parent_path = doc.RootToNodePath(parent);
  if (!parent_path.ok()) return parent_path.status();
  return LoadElement(doc, subtree_root, parent_id, *parent_path, doc_id,
                     effects);
}

Status EdgeStore::DeleteSubtree(const xml::Document& doc, int64_t doc_id,
                                xml::NodeId subtree_root,
                                MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.edge_delete"));
  rel::Table* edge = db_.FindTable(kEdgeTable);
  rel::Table* attr = db_.FindTable(kAttrTable);
  const int path_col = edge->schema().ColumnIndex(kPathIdColumn);
  std::vector<xml::NodeId> stack{subtree_root};
  while (!stack.empty()) {
    xml::NodeId cur = stack.back();
    stack.pop_back();
    if (doc.node(cur).kind != xml::NodeKind::kElement) continue;
    int64_t eid = ElementIdOf(doc_id, cur);
    if (eid < 0) {
      return Status::InvalidArgument("edge dml: subtree node not in store");
    }
    auto rid = RowOf(eid);
    if (!rid.ok()) return rid.status();
    int64_t path_id = edge->at(*rid, static_cast<size_t>(path_col)).AsInt();
    XPREL_RETURN_IF_ERROR(edge->Delete(*rid));
    std::string key;
    rel::AppendEncodedValue(Value::Int(eid), key);
    for (rel::RowId arid : attr->FindIndex("idx_Attr_elem")->Lookup(key)) {
      XPREL_RETURN_IF_ERROR(attr->Delete(arid));
    }
    bool retired = false;
    XPREL_RETURN_IF_ERROR(paths_->Release(path_id, &retired));
    if (effects != nullptr) {
      effects->paths.push_back(path_id);
      if (retired) ++effects->paths_retired;
    }
    node_to_id_.erase(std::make_pair(doc_id, cur));
    for (xml::NodeId c : doc.node(cur).children) stack.push_back(c);
  }
  return Status::Ok();
}

Status EdgeStore::UpdateDirectText(const xml::Document& doc, int64_t doc_id,
                                   xml::NodeId node,
                                   MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.edge_text"));
  int64_t eid = ElementIdOf(doc_id, node);
  if (eid < 0) {
    return Status::InvalidArgument("edge dml: node not in store");
  }
  auto rid = RowOf(eid);
  if (!rid.ok()) return rid.status();
  rel::Table* edge = db_.FindTable(kEdgeTable);
  const int path_col = edge->schema().ColumnIndex(kPathIdColumn);
  const int text_col = edge->schema().ColumnIndex(kTextColumn);
  int64_t path_id = edge->at(*rid, static_cast<size_t>(path_col)).AsInt();
  std::string text;
  for (xml::NodeId c : doc.node(node).children) {
    if (doc.node(c).kind == xml::NodeKind::kText) text += doc.node(c).text;
  }
  rel::Row row = edge->ReadRow(*rid);
  row[static_cast<size_t>(text_col)] = Value::Str(std::move(text));
  auto moved = edge->RewriteRow(*rid, std::move(row));
  if (!moved.ok()) return moved.status();
  if (effects != nullptr) effects->paths.push_back(path_id);
  return Status::Ok();
}

Status EdgeStore::UpdateDeweys(const xml::Document& doc, int64_t doc_id,
                               const std::vector<xml::NodeId>& nodes) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.edge_dewey"));
  rel::Table* edge = db_.FindTable(kEdgeTable);
  const int dewey_col = edge->schema().ColumnIndex(kDeweyColumn);
  for (xml::NodeId node : nodes) {
    if (doc.node(node).kind != xml::NodeKind::kElement) continue;
    int64_t eid = ElementIdOf(doc_id, node);
    if (eid < 0) {
      return Status::InvalidArgument("edge dml: node not in store");
    }
    auto rid = RowOf(eid);
    if (!rid.ok()) return rid.status();
    rel::Row row = edge->ReadRow(*rid);
    row[static_cast<size_t>(dewey_col)] = Value::Bytes(doc.dewey(node));
    auto moved = edge->RewriteRow(*rid, std::move(row));
    if (!moved.ok()) return moved.status();
  }
  return Status::Ok();
}

size_t EdgeStore::CompactIfNeeded() {
  size_t compacted = 0;
  for (const char* name : {kEdgeTable, kAttrTable}) {
    rel::Table* t = db_.FindTable(name);
    if (t->dead_row_count() >= 64 &&
        t->dead_row_count() * 4 >= t->row_count()) {
      t->Compact();
      ++compacted;
    }
  }
  return compacted;
}

EdgeStore::LoaderState EdgeStore::ExportLoaderState() const {
  LoaderState state;
  state.next_doc_id = next_doc_id_;
  state.next_element_id = next_element_id_;
  state.origins = origins_;
  state.node_ids.assign(node_to_id_.begin(), node_to_id_.end());
  state.paths = paths_->ExportState();
  return state;
}

Status EdgeStore::RestoreLoaderState(LoaderState state) {
  if (state.next_element_id < 1 || state.next_doc_id < 1 ||
      state.origins.size() !=
          static_cast<size_t>(state.next_element_id - 1)) {
    return Status::InvalidArgument(
        "edge store restore: origin count disagrees with the element id "
        "counter");
  }
  for (const auto& [key, eid] : state.node_ids) {
    if (eid < 1 || eid >= state.next_element_id || key.second < 1) {
      return Status::InvalidArgument(
          "edge store restore: node-id entry out of range");
    }
  }
  XPREL_RETURN_IF_ERROR(paths_->RestoreState(state.paths));
  next_doc_id_ = state.next_doc_id;
  next_element_id_ = state.next_element_id;
  origins_ = std::move(state.origins);
  node_to_id_.clear();
  node_to_id_.insert(state.node_ids.begin(), state.node_ids.end());
  return Status::Ok();
}

const EdgeStore::ElementOrigin* EdgeStore::FindOrigin(
    int64_t element_id) const {
  if (element_id < 1 ||
      element_id > static_cast<int64_t>(origins_.size())) {
    return nullptr;
  }
  return &origins_[static_cast<size_t>(element_id - 1)];
}

int64_t EdgeStore::ElementIdOf(int64_t doc_id, xml::NodeId node) const {
  auto it = node_to_id_.find(std::make_pair(doc_id, node));
  return it == node_to_id_.end() ? -1 : it->second;
}

}  // namespace xprel::shred
