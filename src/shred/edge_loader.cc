#include "shred/edge_loader.h"

#include "common/fault_injection.h"
#include "encoding/dewey.h"

namespace xprel::shred {

using encoding::Dewey;
using rel::ColumnDef;
using rel::TableSchema;
using rel::Value;
using rel::ValueType;

Result<std::unique_ptr<EdgeStore>> EdgeStore::Create() {
  std::unique_ptr<EdgeStore> store(new EdgeStore());

  {
    TableSchema paths;
    paths.name = kPathsTable;
    paths.columns = {{kIdColumn, ValueType::kInt64, false},
                     {kPathsPathColumn, ValueType::kString, false}};
    paths.indexes = {{"pk_Paths", {0}, true}, {"idx_Paths_path", {1}, true}};
    auto t = store->db_.CreateTable(std::move(paths));
    if (!t.ok()) return t.status();
  }
  {
    TableSchema edge;
    edge.name = kEdgeTable;
    edge.columns = {{kIdColumn, ValueType::kInt64, false},
                    {kDocIdColumn, ValueType::kInt64, false},
                    {kEdgeParColumn, ValueType::kInt64, true},
                    {kEdgeNameColumn, ValueType::kString, false},
                    {kDeweyColumn, ValueType::kBytes, false},
                    {kPathIdColumn, ValueType::kInt64, false},
                    {kTextColumn, ValueType::kString, true}};
    edge.indexes = {
        {"pk_Edge", {0}, true},
        {"idx_Edge_par", {2}, false},
        {"idx_Edge_dewey", {4, 5}, false},
        {"idx_Edge_path", {5}, false},
    };
    auto t = store->db_.CreateTable(std::move(edge));
    if (!t.ok()) return t.status();
  }
  {
    TableSchema attr;
    attr.name = kAttrTable;
    attr.columns = {{kAttrElemColumn, ValueType::kInt64, false},
                    {kAttrNameColumn, ValueType::kString, false},
                    {kAttrValueColumn, ValueType::kString, false}};
    attr.indexes = {
        {"idx_Attr_elem", {0}, false},
        {"idx_Attr_name_value", {1, 2}, false},
    };
    auto t = store->db_.CreateTable(std::move(attr));
    if (!t.ok()) return t.status();
  }
  store->paths_ =
      std::make_unique<PathsRegistry>(store->db_.FindTable(kPathsTable));
  return store;
}

Result<int64_t> EdgeStore::LoadDocument(const xml::Document& doc) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("shred.edge_load"));
  if (doc.root() == xml::kNoNode) {
    return Status::InvalidArgument("empty document");
  }
  int64_t doc_id = next_doc_id_++;
  std::string dewey = Dewey::FromComponents({1});
  XPREL_RETURN_IF_ERROR(LoadElement(doc, doc.root(), /*parent_id=*/-1,
                                    /*parent_path=*/"", dewey, doc_id));
  return doc_id;
}

Status EdgeStore::LoadElement(const xml::Document& doc, xml::NodeId node,
                              int64_t parent_id,
                              const std::string& parent_path,
                              std::string_view dewey, int64_t doc_id) {
  const xml::Node& xnode = doc.node(node);
  std::string path = parent_path + "/" + xnode.name;
  auto path_id = paths_->Intern(path);
  if (!path_id.ok()) return path_id.status();

  int64_t element_id = next_element_id_++;
  origins_.push_back({doc_id, node});

  std::string text;
  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind == xml::NodeKind::kText) text += doc.node(c).text;
  }

  rel::Table* edge = db_.FindTable(kEdgeTable);
  XPREL_RETURN_IF_ERROR(edge->Insert(
      {Value::Int(element_id), Value::Int(doc_id),
       parent_id >= 0 ? Value::Int(parent_id) : Value::Null(),
       Value::Str(xnode.name), Value::Bytes(std::string(dewey)),
       Value::Int(*path_id), Value::Str(std::move(text))}));

  rel::Table* attr = db_.FindTable(kAttrTable);
  for (const xml::Attribute& a : xnode.attributes) {
    XPREL_RETURN_IF_ERROR(attr->Insert(
        {Value::Int(element_id), Value::Str(a.name), Value::Str(a.value)}));
  }

  uint32_t child_ordinal = 0;
  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind != xml::NodeKind::kElement) continue;
    ++child_ordinal;
    std::string child_dewey = Dewey::Child(dewey, child_ordinal);
    XPREL_RETURN_IF_ERROR(
        LoadElement(doc, c, element_id, path, child_dewey, doc_id));
  }
  return Status::Ok();
}

const EdgeStore::ElementOrigin* EdgeStore::FindOrigin(
    int64_t element_id) const {
  if (element_id < 1 ||
      element_id > static_cast<int64_t>(origins_.size())) {
    return nullptr;
  }
  return &origins_[static_cast<size_t>(element_id - 1)];
}

}  // namespace xprel::shred
