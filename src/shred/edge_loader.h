#ifndef XPREL_SHRED_EDGE_LOADER_H_
#define XPREL_SHRED_EDGE_LOADER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "shred/schema_map.h"
#include "xml/document.h"

namespace xprel::shred {

inline constexpr char kEdgeTable[] = "Edge";
inline constexpr char kAttrTable[] = "Attr";
inline constexpr char kEdgeNameColumn[] = "name";
inline constexpr char kEdgeParColumn[] = "par_id";
inline constexpr char kAttrElemColumn[] = "elem_id";
inline constexpr char kAttrNameColumn[] = "attr_name";
inline constexpr char kAttrValueColumn[] = "value";

// The schema-oblivious Edge-like mapping (paper Sections 1 and 5.1): every
// element node is a tuple of one central `Edge` relation
//   Edge(id, par_id, name, dewey_pos, path_id, text)
// and attributes live in a separate relation (the paper's footnote 3
// option)
//   Attr(elem_id, attr_name, value).
// Root-to-node paths are still interned in `Paths`, so the Edge-like PPF
// translator can apply the same regex path filtering; the difference the
// paper measures is that every structural join is a self-join of the big
// Edge relation.
class EdgeStore {
 public:
  static Result<std::unique_ptr<EdgeStore>> Create();

  // Shreds one document (no schema involved). Returns the doc id.
  Result<int64_t> LoadDocument(const xml::Document& doc);

  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }

  struct ElementOrigin {
    int64_t doc_id;
    xml::NodeId node;
  };
  const ElementOrigin* FindOrigin(int64_t element_id) const;
  // Element id assigned to a document node, or -1.
  int64_t ElementIdOf(int64_t doc_id, xml::NodeId node) const;

  // --- Incremental maintenance (used by dml::DocumentMutator). The
  // document tree has already been mutated; these bring the relations, the
  // indexes and the Paths summary in line with it. ---

  // Shreds the subtree rooted at `subtree_root` (already grafted into
  // `doc`) under its parent's existing element row.
  Status InsertSubtree(const xml::Document& doc, int64_t doc_id,
                       xml::NodeId subtree_root, MutationEffects* effects);

  // Removes every element row of the subtree rooted at `subtree_root`
  // (already unlinked in `doc`, but nodes still readable) and releases
  // their path references.
  Status DeleteSubtree(const xml::Document& doc, int64_t doc_id,
                       xml::NodeId subtree_root, MutationEffects* effects);

  // Rewrites the text column of one element row from the document.
  Status UpdateDirectText(const xml::Document& doc, int64_t doc_id,
                          xml::NodeId node, MutationEffects* effects);

  // Rewrites the dewey_pos of the given element rows from the document
  // (after a local renumber spent their gaps).
  Status UpdateDeweys(const xml::Document& doc, int64_t doc_id,
                      const std::vector<xml::NodeId>& nodes);

  // Compacts Edge/Attr tables whose tombstone share crossed the threshold
  // (Paths is never compacted — the registry stores RowIds into it).
  // Returns the number of tables compacted.
  size_t CompactIfNeeded();

  size_t live_paths() const { return paths_->live_paths(); }

  // --- Snapshot support (used by the durability layer); see the
  // SchemaAwareStore counterpart for the contract. ---

  struct LoaderState {
    int64_t next_doc_id = 1;
    int64_t next_element_id = 1;
    std::vector<ElementOrigin> origins;  // index = element id - 1
    std::vector<std::pair<std::pair<int64_t, xml::NodeId>, int64_t>> node_ids;
    std::vector<PathsRegistry::PathState> paths;
  };
  LoaderState ExportLoaderState() const;
  Status RestoreLoaderState(LoaderState state);

 private:
  EdgeStore() = default;

  Status LoadElement(const xml::Document& doc, xml::NodeId node,
                     int64_t parent_id, const std::string& parent_path,
                     int64_t doc_id, MutationEffects* effects);
  Result<rel::RowId> RowOf(int64_t element_id) const;

  rel::Database db_;
  std::unique_ptr<PathsRegistry> paths_;
  int64_t next_doc_id_ = 1;
  int64_t next_element_id_ = 1;
  std::vector<ElementOrigin> origins_;
  std::map<std::pair<int64_t, xml::NodeId>, int64_t> node_to_id_;
};

}  // namespace xprel::shred

#endif  // XPREL_SHRED_EDGE_LOADER_H_
