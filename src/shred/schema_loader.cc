#include "shred/schema_loader.h"

#include "common/fault_injection.h"
#include "rel/key_codec.h"

namespace xprel::shred {

using rel::Value;

Result<std::unique_ptr<SchemaAwareStore>> SchemaAwareStore::Create(
    const xsd::SchemaGraph& graph) {
  auto mapping = SchemaAwareMapping::Create(graph);
  if (!mapping.ok()) return mapping.status();
  std::unique_ptr<SchemaAwareStore> store(new SchemaAwareStore());
  store->mapping_ = std::move(mapping).value();
  XPREL_RETURN_IF_ERROR(store->mapping_.CreateTables(store->db_));
  store->paths_ = std::make_unique<PathsRegistry>(
      store->db_.FindTable(kPathsTable));
  return store;
}

namespace {

// Concatenated direct text children — the element "value" stored in the
// text column (see DESIGN.md: the library uses direct text throughout, for
// shredded stores and the reference evaluator alike).
std::string DirectText(const xml::Document& doc, xml::NodeId node) {
  std::string out;
  for (xml::NodeId c : doc.node(node).children) {
    if (doc.node(c).kind == xml::NodeKind::kText) out += doc.node(c).text;
  }
  return out;
}

}  // namespace

Result<int64_t> SchemaAwareStore::LoadDocument(const xml::Document& doc) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("shred.schema_load"));
  if (doc.root() == xml::kNoNode) {
    return Status::InvalidArgument("empty document");
  }
  const std::string& root_tag = doc.node(doc.root()).name;
  int root_schema_node = -1;
  for (int r : graph().roots()) {
    if (graph().node(r).tag == root_tag) {
      root_schema_node = r;
      break;
    }
  }
  if (root_schema_node < 0) {
    return Status::InvalidArgument("document root <" + root_tag +
                                   "> matches no schema root");
  }
  int64_t doc_id = next_doc_id_++;
  XPREL_RETURN_IF_ERROR(LoadElement(doc, doc.root(), root_schema_node,
                                    /*parent_id=*/-1, /*parent_relation=*/"",
                                    /*parent_path=*/"", doc_id,
                                    /*effects=*/nullptr));
  return doc_id;
}

Status SchemaAwareStore::LoadElement(const xml::Document& doc,
                                     xml::NodeId node, int schema_node,
                                     int64_t parent_id,
                                     const std::string& parent_relation,
                                     const std::string& parent_path,
                                     int64_t doc_id,
                                     MutationEffects* effects) {
  const xsd::GraphNode& snode = graph().node(schema_node);
  const xml::Node& xnode = doc.node(node);
  const std::string& relation = mapping_.RelationOf(schema_node);
  const RelationInfo* info = mapping_.FindRelation(relation);
  rel::Table* table = db_.FindTable(relation);
  if (info == nullptr || table == nullptr) {
    return Status::Internal("missing relation " + relation);
  }

  std::string path = parent_path + "/" + xnode.name;
  bool created = false;
  auto path_id = paths_->Intern(path, &created);
  if (!path_id.ok()) return path_id.status();
  if (effects != nullptr) {
    effects->paths.push_back(*path_id);
    if (created) ++effects->paths_added;
  }

  int64_t element_id = next_element_id_++;
  origins_.push_back({doc_id, node});
  node_to_id_.emplace(std::make_pair(doc_id, node), element_id);

  // Assemble the row following the column order used by CreateTables.
  rel::Row row;
  row.push_back(Value::Int(element_id));
  if (info->is_document_relation) {
    row.push_back(parent_id < 0 ? Value::Int(doc_id) : Value::Null());
  }
  for (const auto& [prel, col] : info->parent_fk_columns) {
    if (prel == parent_relation && parent_id >= 0) {
      row.push_back(Value::Int(parent_id));
    } else {
      row.push_back(Value::Null());
    }
  }
  row.push_back(Value::Bytes(doc.dewey(node)));
  row.push_back(Value::Int(*path_id));
  if (info->has_text) {
    row.push_back(Value::Str(DirectText(doc, node)));
  }
  for (const auto& [attr, col] : info->attr_columns) {
    const std::string* v = doc.FindAttribute(node, attr);
    row.push_back(v != nullptr ? Value::Str(*v) : Value::Null());
  }
  XPREL_RETURN_IF_ERROR(table->Insert(std::move(row)));

  // Validate attributes: unknown attributes are a schema violation.
  for (const xml::Attribute& a : xnode.attributes) {
    if (info->attr_columns.count(a.name) == 0) {
      return Status::InvalidArgument("element <" + xnode.name +
                                     "> has undeclared attribute '" + a.name +
                                     "'");
    }
  }

  // Recurse into element children, resolving each tag against the schema.
  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind != xml::NodeKind::kElement) continue;
    const std::string& tag = doc.node(c).name;
    int child_schema = -1;
    for (int cs : snode.children) {
      if (graph().node(cs).tag == tag) {
        child_schema = cs;
        break;
      }
    }
    if (child_schema < 0) {
      return Status::InvalidArgument("element <" + tag +
                                     "> not allowed under <" + xnode.name +
                                     "> by the schema");
    }
    XPREL_RETURN_IF_ERROR(LoadElement(doc, c, child_schema, element_id,
                                      relation, path, doc_id, effects));
  }
  return Status::Ok();
}

Result<int> SchemaAwareStore::ResolveSchemaNode(const xml::Document& doc,
                                                xml::NodeId node) const {
  std::vector<const std::string*> tags;
  for (xml::NodeId cur = node; cur != xml::kNoNode;
       cur = doc.node(cur).parent) {
    tags.push_back(&doc.node(cur).name);
  }
  auto it = tags.rbegin();
  int sn = -1;
  for (int r : graph().roots()) {
    if (graph().node(r).tag == **it) {
      sn = r;
      break;
    }
  }
  if (sn < 0) {
    return Status::InvalidArgument("document root <" + **it +
                                   "> matches no schema root");
  }
  for (++it; it != tags.rend(); ++it) {
    int next = -1;
    for (int cs : graph().node(sn).children) {
      if (graph().node(cs).tag == **it) {
        next = cs;
        break;
      }
    }
    if (next < 0) {
      return Status::InvalidArgument("element <" + **it +
                                     "> not allowed under <" +
                                     graph().node(sn).tag +
                                     "> by the schema");
    }
    sn = next;
  }
  return sn;
}

Result<std::pair<rel::Table*, rel::RowId>> SchemaAwareStore::FindRow(
    int64_t element_id) {
  std::string key;
  rel::AppendEncodedValue(Value::Int(element_id), key);
  for (const auto& [name, info] : mapping_.relations()) {
    rel::Table* t = db_.FindTable(name);
    std::vector<rel::RowId> rows = t->FindIndex("pk_" + name)->Lookup(key);
    if (!rows.empty()) return std::make_pair(t, rows[0]);
  }
  return Status::InvalidArgument("schema dml: no row for element id " +
                                 std::to_string(element_id));
}

Status SchemaAwareStore::InsertSubtree(const xml::Document& doc,
                                       int64_t doc_id,
                                       xml::NodeId subtree_root,
                                       MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.ppf_insert"));
  xml::NodeId parent = doc.node(subtree_root).parent;
  if (parent == xml::kNoNode) {
    return Status::InvalidArgument("schema dml: cannot insert a new root");
  }
  int64_t parent_id = ElementIdOf(doc_id, parent);
  if (parent_id < 0) {
    return Status::InvalidArgument("schema dml: parent node not in store");
  }
  auto schema_node = ResolveSchemaNode(doc, subtree_root);
  if (!schema_node.ok()) return schema_node.status();
  auto parent_schema = ResolveSchemaNode(doc, parent);
  if (!parent_schema.ok()) return parent_schema.status();
  auto parent_path = doc.RootToNodePath(parent);
  if (!parent_path.ok()) return parent_path.status();
  return LoadElement(doc, subtree_root, *schema_node, parent_id,
                     mapping_.RelationOf(*parent_schema), *parent_path,
                     doc_id, effects);
}

Status SchemaAwareStore::DeleteSubtree(const xml::Document& doc,
                                       int64_t doc_id,
                                       xml::NodeId subtree_root,
                                       MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.ppf_delete"));
  std::vector<xml::NodeId> stack{subtree_root};
  while (!stack.empty()) {
    xml::NodeId cur = stack.back();
    stack.pop_back();
    if (doc.node(cur).kind != xml::NodeKind::kElement) continue;
    int64_t eid = ElementIdOf(doc_id, cur);
    if (eid < 0) {
      return Status::InvalidArgument("schema dml: subtree node not in store");
    }
    auto loc = FindRow(eid);
    if (!loc.ok()) return loc.status();
    auto [table, rid] = *loc;
    const int path_col = table->schema().ColumnIndex(kPathIdColumn);
    int64_t path_id = table->at(rid, static_cast<size_t>(path_col)).AsInt();
    XPREL_RETURN_IF_ERROR(table->Delete(rid));
    bool retired = false;
    XPREL_RETURN_IF_ERROR(paths_->Release(path_id, &retired));
    if (effects != nullptr) {
      effects->paths.push_back(path_id);
      if (retired) ++effects->paths_retired;
    }
    node_to_id_.erase(std::make_pair(doc_id, cur));
    for (xml::NodeId c : doc.node(cur).children) stack.push_back(c);
  }
  return Status::Ok();
}

Status SchemaAwareStore::UpdateDirectText(const xml::Document& doc,
                                          int64_t doc_id, xml::NodeId node,
                                          MutationEffects* effects) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.ppf_text"));
  int64_t eid = ElementIdOf(doc_id, node);
  if (eid < 0) {
    return Status::InvalidArgument("schema dml: node not in store");
  }
  auto loc = FindRow(eid);
  if (!loc.ok()) return loc.status();
  auto [table, rid] = *loc;
  const int text_col = table->schema().ColumnIndex(kTextColumn);
  if (text_col < 0) {
    return Status::InvalidArgument("schema dml: relation " + table->name() +
                                   " has no text column");
  }
  const int path_col = table->schema().ColumnIndex(kPathIdColumn);
  int64_t path_id = table->at(rid, static_cast<size_t>(path_col)).AsInt();
  rel::Row row = table->ReadRow(rid);
  row[static_cast<size_t>(text_col)] = Value::Str(DirectText(doc, node));
  auto moved = table->RewriteRow(rid, std::move(row));
  if (!moved.ok()) return moved.status();
  if (effects != nullptr) effects->paths.push_back(path_id);
  return Status::Ok();
}

Status SchemaAwareStore::UpdateDeweys(const xml::Document& doc,
                                      int64_t doc_id,
                                      const std::vector<xml::NodeId>& nodes) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.ppf_dewey"));
  for (xml::NodeId node : nodes) {
    if (doc.node(node).kind != xml::NodeKind::kElement) continue;
    int64_t eid = ElementIdOf(doc_id, node);
    if (eid < 0) {
      return Status::InvalidArgument("schema dml: node not in store");
    }
    auto loc = FindRow(eid);
    if (!loc.ok()) return loc.status();
    auto [table, rid] = *loc;
    const int dewey_col = table->schema().ColumnIndex(kDeweyColumn);
    rel::Row row = table->ReadRow(rid);
    row[static_cast<size_t>(dewey_col)] = Value::Bytes(doc.dewey(node));
    auto moved = table->RewriteRow(rid, std::move(row));
    if (!moved.ok()) return moved.status();
  }
  return Status::Ok();
}

size_t SchemaAwareStore::CompactIfNeeded() {
  size_t compacted = 0;
  for (const auto& [name, info] : mapping_.relations()) {
    rel::Table* t = db_.FindTable(name);
    if (t->dead_row_count() >= 64 &&
        t->dead_row_count() * 4 >= t->row_count()) {
      t->Compact();
      ++compacted;
    }
  }
  return compacted;
}

SchemaAwareStore::LoaderState SchemaAwareStore::ExportLoaderState() const {
  LoaderState state;
  state.next_doc_id = next_doc_id_;
  state.next_element_id = next_element_id_;
  state.origins = origins_;
  state.node_ids.assign(node_to_id_.begin(), node_to_id_.end());
  state.paths = paths_->ExportState();
  return state;
}

Status SchemaAwareStore::RestoreLoaderState(LoaderState state) {
  if (state.next_element_id < 1 || state.next_doc_id < 1 ||
      state.origins.size() !=
          static_cast<size_t>(state.next_element_id - 1)) {
    return Status::InvalidArgument(
        "schema store restore: origin count disagrees with the element id "
        "counter");
  }
  for (const auto& [key, eid] : state.node_ids) {
    if (eid < 1 || eid >= state.next_element_id || key.second < 1) {
      return Status::InvalidArgument(
          "schema store restore: node-id entry out of range");
    }
  }
  XPREL_RETURN_IF_ERROR(paths_->RestoreState(state.paths));
  next_doc_id_ = state.next_doc_id;
  next_element_id_ = state.next_element_id;
  origins_ = std::move(state.origins);
  node_to_id_.clear();
  node_to_id_.insert(state.node_ids.begin(), state.node_ids.end());
  return Status::Ok();
}

const SchemaAwareStore::ElementOrigin* SchemaAwareStore::FindOrigin(
    int64_t element_id) const {
  if (element_id < 1 ||
      element_id > static_cast<int64_t>(origins_.size())) {
    return nullptr;
  }
  return &origins_[static_cast<size_t>(element_id - 1)];
}

int64_t SchemaAwareStore::ElementIdOf(int64_t doc_id,
                                      xml::NodeId node) const {
  auto it = node_to_id_.find(std::make_pair(doc_id, node));
  return it == node_to_id_.end() ? -1 : it->second;
}

}  // namespace xprel::shred
