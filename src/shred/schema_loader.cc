#include "shred/schema_loader.h"

#include "common/fault_injection.h"
#include "encoding/dewey.h"

namespace xprel::shred {

using encoding::Dewey;
using rel::Value;

Result<std::unique_ptr<SchemaAwareStore>> SchemaAwareStore::Create(
    const xsd::SchemaGraph& graph) {
  auto mapping = SchemaAwareMapping::Create(graph);
  if (!mapping.ok()) return mapping.status();
  std::unique_ptr<SchemaAwareStore> store(new SchemaAwareStore());
  store->mapping_ = std::move(mapping).value();
  XPREL_RETURN_IF_ERROR(store->mapping_.CreateTables(store->db_));
  store->paths_ = std::make_unique<PathsRegistry>(
      store->db_.FindTable(kPathsTable));
  return store;
}

namespace {

// Concatenated direct text children — the element "value" stored in the
// text column (see DESIGN.md: the library uses direct text throughout, for
// shredded stores and the reference evaluator alike).
std::string DirectText(const xml::Document& doc, xml::NodeId node) {
  std::string out;
  for (xml::NodeId c : doc.node(node).children) {
    if (doc.node(c).kind == xml::NodeKind::kText) out += doc.node(c).text;
  }
  return out;
}

}  // namespace

Result<int64_t> SchemaAwareStore::LoadDocument(const xml::Document& doc) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("shred.schema_load"));
  if (doc.root() == xml::kNoNode) {
    return Status::InvalidArgument("empty document");
  }
  const std::string& root_tag = doc.node(doc.root()).name;
  int root_schema_node = -1;
  for (int r : graph().roots()) {
    if (graph().node(r).tag == root_tag) {
      root_schema_node = r;
      break;
    }
  }
  if (root_schema_node < 0) {
    return Status::InvalidArgument("document root <" + root_tag +
                                   "> matches no schema root");
  }
  int64_t doc_id = next_doc_id_++;
  std::string dewey = Dewey::FromComponents({1});
  XPREL_RETURN_IF_ERROR(LoadElement(doc, doc.root(), root_schema_node,
                                    /*parent_id=*/-1, /*parent_relation=*/"",
                                    /*parent_path=*/"", dewey, doc_id));
  return doc_id;
}

Status SchemaAwareStore::LoadElement(const xml::Document& doc,
                                     xml::NodeId node, int schema_node,
                                     int64_t parent_id,
                                     const std::string& parent_relation,
                                     const std::string& parent_path,
                                     std::string_view dewey, int64_t doc_id) {
  const xsd::GraphNode& snode = graph().node(schema_node);
  const xml::Node& xnode = doc.node(node);
  const std::string& relation = mapping_.RelationOf(schema_node);
  const RelationInfo* info = mapping_.FindRelation(relation);
  rel::Table* table = db_.FindTable(relation);
  if (info == nullptr || table == nullptr) {
    return Status::Internal("missing relation " + relation);
  }

  std::string path = parent_path + "/" + xnode.name;
  auto path_id = paths_->Intern(path);
  if (!path_id.ok()) return path_id.status();

  int64_t element_id = next_element_id_++;
  origins_.push_back({doc_id, node});
  node_to_id_.emplace(std::make_pair(doc_id, node), element_id);

  // Assemble the row following the column order used by CreateTables.
  rel::Row row;
  row.push_back(Value::Int(element_id));
  if (info->is_document_relation) {
    row.push_back(parent_id < 0 ? Value::Int(doc_id) : Value::Null());
  }
  for (const auto& [prel, col] : info->parent_fk_columns) {
    if (prel == parent_relation && parent_id >= 0) {
      row.push_back(Value::Int(parent_id));
    } else {
      row.push_back(Value::Null());
    }
  }
  row.push_back(Value::Bytes(std::string(dewey)));
  row.push_back(Value::Int(*path_id));
  if (info->has_text) {
    row.push_back(Value::Str(DirectText(doc, node)));
  }
  for (const auto& [attr, col] : info->attr_columns) {
    const std::string* v = doc.FindAttribute(node, attr);
    row.push_back(v != nullptr ? Value::Str(*v) : Value::Null());
  }
  XPREL_RETURN_IF_ERROR(table->Insert(std::move(row)));

  // Validate attributes: unknown attributes are a schema violation.
  for (const xml::Attribute& a : xnode.attributes) {
    if (info->attr_columns.count(a.name) == 0) {
      return Status::InvalidArgument("element <" + xnode.name +
                                     "> has undeclared attribute '" + a.name +
                                     "'");
    }
  }

  // Recurse into element children, resolving each tag against the schema.
  uint32_t child_ordinal = 0;
  for (xml::NodeId c : xnode.children) {
    if (doc.node(c).kind != xml::NodeKind::kElement) continue;
    ++child_ordinal;
    const std::string& tag = doc.node(c).name;
    int child_schema = -1;
    for (int cs : snode.children) {
      if (graph().node(cs).tag == tag) {
        child_schema = cs;
        break;
      }
    }
    if (child_schema < 0) {
      return Status::InvalidArgument("element <" + tag +
                                     "> not allowed under <" + xnode.name +
                                     "> by the schema");
    }
    std::string child_dewey = Dewey::Child(dewey, child_ordinal);
    XPREL_RETURN_IF_ERROR(LoadElement(doc, c, child_schema, element_id,
                                      relation, path, child_dewey, doc_id));
  }
  return Status::Ok();
}

const SchemaAwareStore::ElementOrigin* SchemaAwareStore::FindOrigin(
    int64_t element_id) const {
  if (element_id < 1 ||
      element_id > static_cast<int64_t>(origins_.size())) {
    return nullptr;
  }
  return &origins_[static_cast<size_t>(element_id - 1)];
}

int64_t SchemaAwareStore::ElementIdOf(int64_t doc_id,
                                      xml::NodeId node) const {
  auto it = node_to_id_.find(std::make_pair(doc_id, node));
  return it == node_to_id_.end() ? -1 : it->second;
}

}  // namespace xprel::shred
