#ifndef XPREL_SHRED_SCHEMA_LOADER_H_
#define XPREL_SHRED_SCHEMA_LOADER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rel/table.h"
#include "shred/schema_map.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::shred {

// A database instance under the schema-aware mapping, plus the loader state
// needed to shred documents into it incrementally.
class SchemaAwareStore {
 public:
  // Builds the mapping from the schema graph and creates all tables.
  static Result<std::unique_ptr<SchemaAwareStore>> Create(
      const xsd::SchemaGraph& graph);

  // Shreds one document. Elements are validated against the schema graph as
  // they are walked; unknown elements are an error. Returns the doc id.
  Result<int64_t> LoadDocument(const xml::Document& doc);

  const SchemaAwareMapping& mapping() const { return mapping_; }
  const xsd::SchemaGraph& graph() const { return mapping_.graph(); }
  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }

  // Map from element id back to (document, original node) — used by the
  // engine facade to report results, and by tests to compare against the
  // reference evaluator.
  struct ElementOrigin {
    int64_t doc_id;
    xml::NodeId node;
  };
  const ElementOrigin* FindOrigin(int64_t element_id) const;
  // Element id assigned to a document node, or -1.
  int64_t ElementIdOf(int64_t doc_id, xml::NodeId node) const;

  // --- Incremental maintenance (used by dml::DocumentMutator). The
  // document tree has already been mutated; these bring the relations, the
  // indexes and the Paths summary in line with it. Every inserted element
  // is validated against the schema graph exactly as in LoadDocument. ---

  Status InsertSubtree(const xml::Document& doc, int64_t doc_id,
                       xml::NodeId subtree_root, MutationEffects* effects);
  Status DeleteSubtree(const xml::Document& doc, int64_t doc_id,
                       xml::NodeId subtree_root, MutationEffects* effects);
  Status UpdateDirectText(const xml::Document& doc, int64_t doc_id,
                          xml::NodeId node, MutationEffects* effects);
  Status UpdateDeweys(const xml::Document& doc, int64_t doc_id,
                      const std::vector<xml::NodeId>& nodes);
  // Compacts mapping relations whose tombstone share crossed the threshold
  // (Paths is never compacted — the registry stores RowIds into it).
  size_t CompactIfNeeded();

  size_t live_paths() const { return paths_->live_paths(); }

  // --- Snapshot support (used by the durability layer). Table contents
  // travel separately (rel::Table::ExportContent per table of db()); this
  // covers the loader bookkeeping that is not derivable from the tables. ---

  struct LoaderState {
    int64_t next_doc_id = 1;
    int64_t next_element_id = 1;
    std::vector<ElementOrigin> origins;  // index = element id - 1
    // Live (doc_id, node) -> element id entries (deleted elements absent).
    std::vector<std::pair<std::pair<int64_t, xml::NodeId>, int64_t>> node_ids;
    std::vector<PathsRegistry::PathState> paths;
  };
  LoaderState ExportLoaderState() const;
  // Installs `state` after the tables were restored; validates internal
  // consistency (origin count vs id counter, ids in range, paths registry
  // vs the Paths table) and returns InvalidArgument on a corrupt snapshot.
  Status RestoreLoaderState(LoaderState state);

 private:
  SchemaAwareStore() = default;

  Status LoadElement(const xml::Document& doc, xml::NodeId node,
                     int schema_node, int64_t parent_id,
                     const std::string& parent_relation,
                     const std::string& parent_path, int64_t doc_id,
                     MutationEffects* effects);

  // Schema-graph node matched by the root-to-node tag chain of `node`.
  Result<int> ResolveSchemaNode(const xml::Document& doc,
                                xml::NodeId node) const;
  // Table + row storing the given element id (pk probe across relations).
  Result<std::pair<rel::Table*, rel::RowId>> FindRow(int64_t element_id);

  SchemaAwareMapping mapping_;
  rel::Database db_;
  std::unique_ptr<PathsRegistry> paths_;
  int64_t next_doc_id_ = 1;
  int64_t next_element_id_ = 1;
  std::vector<ElementOrigin> origins_;  // index = element id - 1
  std::map<std::pair<int64_t, xml::NodeId>, int64_t> node_to_id_;
};

}  // namespace xprel::shred

#endif  // XPREL_SHRED_SCHEMA_LOADER_H_
