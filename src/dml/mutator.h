#ifndef XPREL_DML_MUTATOR_H_
#define XPREL_DML_MUTATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "engine/engine.h"
#include "shred/schema_map.h"
#include "xml/document.h"

namespace xprel::dml {

// Monotonic per-mutator statistics (single writer: mutations serialize on
// the engine's writer lock).
struct MutationStats {
  uint64_t mutations_applied = 0;
  // Insertions that exhausted their Dewey gap and fell back to renumbering
  // the parent's children locally.
  uint64_t dewey_renumbers = 0;
  uint64_t paths_added = 0;
  uint64_t paths_retired = 0;
  uint64_t rollbacks = 0;  // failed mutations rolled back to consistency
};

// What one applied mutation reports back to serving layers.
struct MutationResult {
  // Root of the inserted subtree (InsertFragment only).
  xml::NodeId node = xml::kNoNode;
  // Path ids touched, per backend Paths space — feed this to
  // XPathEngine::InvalidateForMutation (done automatically) and
  // service::QueryService::InvalidateMutation (caller's job).
  engine::AffectedPaths affected;
  // The insert fell back to a local sibling renumber.
  bool renumbered = false;
};

// Subtree insert / delete / text update on a document loaded into an
// XPathEngine, with incremental maintenance of every derived structure:
//
//   * the document tree itself (stable node ids; grafted nodes append to
//     the array, OrderRank() keeps document order),
//   * gap-strided Dewey keys (caret into the gap, ORDPATH-style; local
//     renumber only when a gap is exhausted, counted in stats),
//   * the shredded relations + B-tree indexes of both PPF stores
//     (tombstone deletes, append inserts, threshold compaction),
//   * the Paths summary (refcounted: new paths get new ids, deletes retire
//     them),
//   * plan- and result-cache invalidation scoped to the affected path ids
//     (generation bump only when the path summary itself changed),
//   * the accelerator pre/post image is marked stale and lazily rebuilt —
//     it cannot be maintained incrementally (the paper's Section 2
//     contrast with Dewey order keys).
//
// Writer-excludes-readers: every mutation holds the engine's writer lock,
// so concurrent Run() calls observe either the full pre- or post-mutation
// state. A mutation that fails part-way (schema violation, injected fault,
// budget refusal) rolls the document back and rebuilds the stores from it,
// so the engine is always consistent.
//
// `doc` must be the same (non-const) document the engine was built over
// and must outlive the mutator.
class DocumentMutator {
 public:
  DocumentMutator(xml::Document& doc, engine::XPathEngine& engine,
                  MemoryBudget* budget = nullptr)
      : doc_(doc), engine_(engine), budget_(budget) {}

  // Parses `fragment_xml` (one well-formed element) and inserts it as a
  // child of `parent` at `child_index` (clamped to the child count).
  Result<MutationResult> InsertFragment(xml::NodeId parent,
                                        size_t child_index,
                                        std::string_view fragment_xml);
  // Same, with the parent named by an XPath whose first result is used.
  Result<MutationResult> InsertFragmentAt(std::string_view parent_xpath,
                                          size_t child_index,
                                          std::string_view fragment_xml);

  // Removes the subtree rooted at `target` (must not be the root).
  Result<MutationResult> DeleteSubtree(xml::NodeId target);
  Result<MutationResult> DeleteSubtreeAt(std::string_view target_xpath);

  // Replaces the direct text of element `target`.
  Result<MutationResult> UpdateText(xml::NodeId target,
                                    std::string_view new_text);
  Result<MutationResult> UpdateTextAt(std::string_view target_xpath,
                                      std::string_view new_text);

  // Resolves an XPath to its first result node (used by the *At variants).
  Result<xml::NodeId> ResolveTarget(std::string_view xpath) const;

  const MutationStats& stats() const { return stats_; }

 private:
  Status CheckBinding() const;
  Status ValidateElement(xml::NodeId id) const;

  // Assigns fresh strided Dewey keys to `node`'s subtree under
  // `new_dewey`, collecting pre-existing element nodes whose key changed
  // into `changed` (new nodes — id > old_size — get their keys but are not
  // collected; they are inserted fresh). Skips subtrees whose root key is
  // already equal (descendant keys derive from it).
  void ReassignSubtreeDeweys(xml::NodeId node, std::string new_dewey,
                             int32_t old_size,
                             std::vector<xml::NodeId>* changed);

  // Rolls the engine back to a consistent state after a partial failure:
  // clears the plan cache, bumps the generation, reloads both shredded
  // stores from the (already restored) document, and marks the
  // accelerator stale.
  Status RebuildStoresFromDocument();

  // Common tail of every successful mutation: refresh order ranks, mark
  // the accelerator stale, invalidate plan-cache entries by path id, and
  // fold the per-store effects into counters + the returned result.
  MutationResult Finalize(const shred::MutationEffects& ppf,
                          const shred::MutationEffects& edge,
                          bool renumbered, xml::NodeId node);

  xml::Document& doc_;
  engine::XPathEngine& engine_;
  MemoryBudget* budget_;
  MutationStats stats_;
};

}  // namespace xprel::dml

#endif  // XPREL_DML_MUTATOR_H_
