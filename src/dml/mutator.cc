#include "dml/mutator.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "common/fault_injection.h"
#include "encoding/dewey.h"
#include "xml/parser.h"

namespace xprel::dml {

using encoding::Dewey;

namespace {

// Both stores shred the engine's single document under doc id 1.
constexpr int64_t kDocId = 1;

// Rough resident bytes of a subtree across the document and its two
// shredded images (rows + index entries + dictionary copies). Coarse on
// purpose — the budget needs proportionality, not byte exactness.
size_t ApproxSubtreeBytes(const xml::Document& doc, xml::NodeId root) {
  size_t bytes = 0;
  std::vector<xml::NodeId> stack{root};
  while (!stack.empty()) {
    xml::NodeId cur = stack.back();
    stack.pop_back();
    const xml::Node& n = doc.node(cur);
    bytes += sizeof(xml::Node) + n.name.size() + n.text.size();
    for (const xml::Attribute& a : n.attributes) {
      bytes += a.name.size() + a.value.size() + 2 * sizeof(std::string);
    }
    for (xml::NodeId c : n.children) stack.push_back(c);
  }
  return bytes * 3;
}

void SortUnique(std::vector<int64_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

Status DocumentMutator::CheckBinding() const {
  if (&doc_ != &engine_.document()) {
    return Status::InvalidArgument(
        "dml: mutator document is not the engine's document");
  }
  return Status::Ok();
}

Status DocumentMutator::ValidateElement(xml::NodeId id) const {
  if (id < 1 || id > doc_.size()) {
    return Status::InvalidArgument("dml: node id " + std::to_string(id) +
                                   " out of range");
  }
  if (!doc_.IsElement(id)) {
    return Status::InvalidArgument("dml: node " + std::to_string(id) +
                                   " is not an element");
  }
  if (!doc_.alive(id)) {
    return Status::InvalidArgument("dml: node " + std::to_string(id) +
                                   " was already removed");
  }
  return Status::Ok();
}

Result<xml::NodeId> DocumentMutator::ResolveTarget(
    std::string_view xpath) const {
  engine::Backend backend =
      engine_.ppf_store() != nullptr    ? engine::Backend::kPpf
      : engine_.edge_store() != nullptr ? engine::Backend::kEdgePpf
                                        : engine::Backend::kStaircase;
  auto out = engine_.Run(backend, xpath);
  if (!out.ok()) return out.status();
  if (out.value().nodes.empty()) {
    return Status::InvalidArgument("dml: xpath target matched no node: " +
                                   std::string(xpath));
  }
  return out.value().nodes.front();
}

void DocumentMutator::ReassignSubtreeDeweys(xml::NodeId node,
                                            std::string new_dewey,
                                            int32_t old_size,
                                            std::vector<xml::NodeId>* changed) {
  // Descendant keys derive from the root key: an unchanged root means the
  // whole subtree is already keyed consistently.
  if (doc_.node(node).dewey == new_dewey) return;
  doc_.MutableNode(node).dewey = std::move(new_dewey);
  if (node <= old_size && changed != nullptr) changed->push_back(node);
  uint32_t idx = 0;
  for (xml::NodeId c : doc_.node(node).children) {
    if (!doc_.IsElement(c)) continue;
    ReassignSubtreeDeweys(c, Dewey::StridedChild(doc_.dewey(node), idx++),
                          old_size, changed);
  }
}

Status DocumentMutator::RebuildStoresFromDocument() {
  // Cached plans point into the tables being replaced; drop everything and
  // move the generation so result caches miss too.
  {
    std::lock_guard<std::mutex> lock(engine_.cache_mu_);
    engine_.ClearPlanCacheLocked();
  }
  engine_.BumpGeneration();
  doc_.RefreshOrderRanks();
  if (engine_.ppf_store_ != nullptr) {
    auto store = shred::SchemaAwareStore::Create(*engine_.graph_);
    if (!store.ok()) return store.status();
    auto fresh = std::move(store).value();
    auto id = fresh->LoadDocument(doc_);
    if (!id.ok()) return id.status();
    engine_.ppf_store_ = std::move(fresh);
  }
  if (engine_.edge_store_ != nullptr) {
    auto store = shred::EdgeStore::Create();
    if (!store.ok()) return store.status();
    auto fresh = std::move(store).value();
    auto id = fresh->LoadDocument(doc_);
    if (!id.ok()) return id.status();
    engine_.edge_store_ = std::move(fresh);
  }
  engine_.MarkAccelStale();
  return Status::Ok();
}

MutationResult DocumentMutator::Finalize(const shred::MutationEffects& ppf,
                                         const shred::MutationEffects& edge,
                                         bool renumbered, xml::NodeId node) {
  doc_.RefreshOrderRanks();

  MutationResult res;
  res.node = node;
  res.renumbered = renumbered;
  res.affected.ppf = ppf.paths;
  res.affected.edge = edge.paths;
  SortUnique(res.affected.ppf);
  SortUnique(res.affected.edge);
  res.affected.paths_changed = ppf.changed() || edge.changed();

  engine_.MarkAccelStale();
  engine_.InvalidateForMutation(res.affected);

  // Counters: both stores intern the same root-to-node paths, so the
  // schema-aware store's counts are the canonical ones (Edge's when PPF is
  // disabled).
  const shred::MutationEffects& primary =
      engine_.ppf_store_ != nullptr ? ppf : edge;
  ++stats_.mutations_applied;
  if (renumbered) ++stats_.dewey_renumbers;
  stats_.paths_added += static_cast<uint64_t>(primary.paths_added);
  stats_.paths_retired += static_cast<uint64_t>(primary.paths_retired);

  engine::MutationCounters& mc = engine_.mutation_counters_;
  mc.mutations_applied.fetch_add(1, std::memory_order_relaxed);
  if (renumbered) mc.dewey_renumbers.fetch_add(1, std::memory_order_relaxed);
  mc.paths_added.fetch_add(static_cast<uint64_t>(primary.paths_added),
                           std::memory_order_relaxed);
  mc.paths_retired.fetch_add(static_cast<uint64_t>(primary.paths_retired),
                             std::memory_order_relaxed);
  return res;
}

Result<MutationResult> DocumentMutator::InsertFragment(
    xml::NodeId parent, size_t child_index, std::string_view fragment_xml) {
  XPREL_RETURN_IF_ERROR(CheckBinding());
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.apply"));
  XPREL_RETURN_IF_ERROR(ValidateElement(parent));
  auto frag = xml::ParseXml(fragment_xml);
  if (!frag.ok()) return frag.status();
  const xml::Document& fdoc = frag.value();
  if (fdoc.root() == xml::kNoNode) {
    return Status::InvalidArgument("dml: empty fragment");
  }
  const size_t charge = ApproxSubtreeBytes(fdoc, fdoc.root());
  if (budget_ != nullptr) {
    XPREL_RETURN_IF_ERROR(budget_->Reserve(charge, "dml insert"));
  }

  std::unique_lock<std::shared_mutex> writer(engine_.rw_mu_);

  // Dewey caret (ORDPATH-style): midpoint ordinal between the neighbouring
  // element siblings' last components; appends take their own trailing gap.
  const std::vector<xml::NodeId>& siblings = doc_.node(parent).children;
  child_index = std::min(child_index, siblings.size());
  uint32_t before = 0;
  uint32_t after = Dewey::kNoSibling;
  for (size_t i = child_index; i-- > 0;) {
    if (doc_.IsElement(siblings[i])) {
      before = Dewey::LastOrdinal(doc_.dewey(siblings[i]));
      break;
    }
  }
  for (size_t i = child_index; i < siblings.size(); ++i) {
    if (doc_.IsElement(siblings[i])) {
      after = Dewey::LastOrdinal(doc_.dewey(siblings[i]));
      break;
    }
  }
  uint32_t ordinal = 0;
  const bool renumbered = !Dewey::OrdinalBetween(before, after, &ordinal);
  std::string root_dewey =
      renumbered ? std::string() : Dewey::Child(doc_.dewey(parent), ordinal);

  const int32_t old_size = doc_.size();
  xml::NodeId new_root = doc_.AdoptSubtree(fdoc, fdoc.root(), parent,
                                           child_index,
                                           std::move(root_dewey));

  std::vector<xml::NodeId> rekeyed;
  if (renumbered) {
    // Gap exhausted: fresh strided keys for every element child of the
    // parent (subtrees whose root key comes out unchanged are skipped).
    uint32_t idx = 0;
    for (xml::NodeId c : doc_.node(parent).children) {
      if (!doc_.IsElement(c)) continue;
      ReassignSubtreeDeweys(c, Dewey::StridedChild(doc_.dewey(parent), idx++),
                            old_size, &rekeyed);
    }
  }

  shred::MutationEffects ppf_eff, edge_eff;
  Status s = Status::Ok();
  if (engine_.ppf_store_ != nullptr) {
    s = engine_.ppf_store_->InsertSubtree(doc_, kDocId, new_root, &ppf_eff);
  }
  if (s.ok() && engine_.edge_store_ != nullptr) {
    s = engine_.edge_store_->InsertSubtree(doc_, kDocId, new_root, &edge_eff);
  }
  if (s.ok() && !rekeyed.empty()) {
    if (engine_.ppf_store_ != nullptr) {
      s = engine_.ppf_store_->UpdateDeweys(doc_, kDocId, rekeyed);
    }
    if (s.ok() && engine_.edge_store_ != nullptr) {
      s = engine_.edge_store_->UpdateDeweys(doc_, kDocId, rekeyed);
    }
  }
  if (!s.ok()) {
    // Partial failure: restore the document (renumbered keys stay — they
    // are self-consistent) and rebuild the stores from it.
    doc_.TruncateTo(old_size);
    ++stats_.rollbacks;
    if (budget_ != nullptr) budget_->Release(charge);
    XPREL_RETURN_IF_ERROR(RebuildStoresFromDocument());
    return s;
  }
  return Finalize(ppf_eff, edge_eff, renumbered, new_root);
}

Result<MutationResult> DocumentMutator::InsertFragmentAt(
    std::string_view parent_xpath, size_t child_index,
    std::string_view fragment_xml) {
  auto target = ResolveTarget(parent_xpath);
  if (!target.ok()) return target.status();
  return InsertFragment(*target, child_index, fragment_xml);
}

Result<MutationResult> DocumentMutator::DeleteSubtree(xml::NodeId target) {
  XPREL_RETURN_IF_ERROR(CheckBinding());
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.apply"));
  XPREL_RETURN_IF_ERROR(ValidateElement(target));
  if (doc_.node(target).parent == xml::kNoNode) {
    return Status::InvalidArgument("dml: cannot delete the document root");
  }
  const size_t credit = ApproxSubtreeBytes(doc_, target);

  std::unique_lock<std::shared_mutex> writer(engine_.rw_mu_);

  // Stores first (the subtree's child links must still be walkable, and a
  // failure leaves the document untouched for the rebuild).
  shred::MutationEffects ppf_eff, edge_eff;
  Status s = Status::Ok();
  if (engine_.ppf_store_ != nullptr) {
    s = engine_.ppf_store_->DeleteSubtree(doc_, kDocId, target, &ppf_eff);
  }
  if (s.ok() && engine_.edge_store_ != nullptr) {
    s = engine_.edge_store_->DeleteSubtree(doc_, kDocId, target, &edge_eff);
  }
  if (!s.ok()) {
    ++stats_.rollbacks;
    XPREL_RETURN_IF_ERROR(RebuildStoresFromDocument());
    return s;
  }
  doc_.RemoveSubtree(target);
  if (engine_.ppf_store_ != nullptr) engine_.ppf_store_->CompactIfNeeded();
  if (engine_.edge_store_ != nullptr) engine_.edge_store_->CompactIfNeeded();
  if (budget_ != nullptr) budget_->Release(credit);
  return Finalize(ppf_eff, edge_eff, /*renumbered=*/false, xml::kNoNode);
}

Result<MutationResult> DocumentMutator::DeleteSubtreeAt(
    std::string_view target_xpath) {
  auto target = ResolveTarget(target_xpath);
  if (!target.ok()) return target.status();
  return DeleteSubtree(*target);
}

Result<MutationResult> DocumentMutator::UpdateText(xml::NodeId target,
                                                   std::string_view new_text) {
  XPREL_RETURN_IF_ERROR(CheckBinding());
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("dml.apply"));
  XPREL_RETURN_IF_ERROR(ValidateElement(target));

  std::unique_lock<std::shared_mutex> writer(engine_.rw_mu_);

  std::string old_text;
  for (xml::NodeId c : doc_.node(target).children) {
    if (doc_.node(c).kind == xml::NodeKind::kText) {
      old_text += doc_.node(c).text;
    }
  }
  doc_.SetDirectText(target, new_text);

  shred::MutationEffects ppf_eff, edge_eff;
  Status s = Status::Ok();
  if (engine_.ppf_store_ != nullptr) {
    s = engine_.ppf_store_->UpdateDirectText(doc_, kDocId, target, &ppf_eff);
  }
  if (s.ok() && engine_.edge_store_ != nullptr) {
    s = engine_.edge_store_->UpdateDirectText(doc_, kDocId, target,
                                              &edge_eff);
  }
  if (!s.ok()) {
    doc_.SetDirectText(target, old_text);
    ++stats_.rollbacks;
    XPREL_RETURN_IF_ERROR(RebuildStoresFromDocument());
    return s;
  }
  return Finalize(ppf_eff, edge_eff, /*renumbered=*/false, target);
}

Result<MutationResult> DocumentMutator::UpdateTextAt(
    std::string_view target_xpath, std::string_view new_text) {
  auto target = ResolveTarget(target_xpath);
  if (!target.ok()) return target.status();
  return UpdateText(*target, new_text);
}

}  // namespace xprel::dml
