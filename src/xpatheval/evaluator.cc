#include "xpatheval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "xpath/parser.h"

namespace xprel::xpatheval {

using xml::Document;
using xml::NodeId;
using xml::NodeKind;
using xpath::Axis;
using xpath::CompOp;
using xpath::Expr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;

XPathEvaluator::XPathEvaluator(const Document& doc) : doc_(doc) {
  // subtree_end_[i] = first id after node (i+1)'s subtree. Nodes are in
  // preorder, so the subtree of n is the maximal contiguous run of deeper
  // nodes following it.
  int32_t n = doc.size();
  subtree_end_.assign(static_cast<size_t>(n), 0);
  for (NodeId id = 1; id <= n; ++id) {
    NodeId end = id + 1;
    int32_t depth = doc.node(id).depth;
    while (end <= n && doc.node(end).depth > depth) ++end;
    subtree_end_[static_cast<size_t>(id - 1)] = end;
  }
}

std::string XPathEvaluator::ElementValue(NodeId id) const {
  std::string out;
  for (NodeId c : doc_.node(id).children) {
    if (doc_.node(c).kind == NodeKind::kText) out += doc_.node(c).text;
  }
  return out;
}

bool XPathEvaluator::MatchesTest(NodeId node, const Step& step) const {
  const xml::Node& n = doc_.node(node);
  if (n.kind != NodeKind::kElement) return false;
  switch (step.test) {
    case NodeTestKind::kName:
      return n.name == step.name;
    case NodeTestKind::kWildcard:
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      return false;  // handled by the trailing-text() convention
  }
  return false;
}

std::vector<NodeId> XPathEvaluator::AxisCandidates(Ctx ctx,
                                                   const Step& step) const {
  std::vector<NodeId> out;
  auto add_if = [&](NodeId id) {
    if (MatchesTest(id, step)) out.push_back(id);
  };

  if (ctx == 0) {  // virtual document root
    switch (step.axis) {
      case Axis::kChild:
        if (doc_.root() != xml::kNoNode) add_if(doc_.root());
        break;
      case Axis::kDescendant:
        for (NodeId id = 1; id <= doc_.size(); ++id) add_if(id);
        break;
      case Axis::kDescendantOrSelf:
        // The document root itself is part of descendant-or-self::node():
        // it must stay in the context so that a following child step can
        // reach the root element (e.g. '//*').
        if (step.test == NodeTestKind::kAnyNode) out.push_back(0);
        for (NodeId id = 1; id <= doc_.size(); ++id) add_if(id);
        break;
      default:
        break;
    }
    return out;
  }

  NodeId end = subtree_end_[static_cast<size_t>(ctx - 1)];
  switch (step.axis) {
    case Axis::kChild:
      for (NodeId c : doc_.node(ctx).children) add_if(c);
      break;
    case Axis::kDescendant:
      for (NodeId id = ctx + 1; id < end; ++id) add_if(id);
      break;
    case Axis::kDescendantOrSelf:
      for (NodeId id = ctx; id < end; ++id) add_if(id);
      break;
    case Axis::kSelf:
      add_if(ctx);
      break;
    case Axis::kParent:
      if (doc_.node(ctx).parent != xml::kNoNode) add_if(doc_.node(ctx).parent);
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Proximity order: nearest ancestor first.
      NodeId cur = step.axis == Axis::kAncestorOrSelf ? ctx
                                                      : doc_.node(ctx).parent;
      while (cur != xml::kNoNode) {
        add_if(cur);
        cur = doc_.node(cur).parent;
      }
      break;
    }
    case Axis::kFollowing:
      for (NodeId id = end; id <= doc_.size(); ++id) add_if(id);
      break;
    case Axis::kPreceding: {
      // Reverse document order, excluding ancestors.
      std::vector<bool> is_ancestor(static_cast<size_t>(doc_.size()) + 1,
                                    false);
      for (NodeId a = doc_.node(ctx).parent; a != xml::kNoNode;
           a = doc_.node(a).parent) {
        is_ancestor[static_cast<size_t>(a)] = true;
      }
      for (NodeId id = ctx - 1; id >= 1; --id) {
        if (!is_ancestor[static_cast<size_t>(id)]) add_if(id);
      }
      break;
    }
    case Axis::kFollowingSibling: {
      NodeId parent = doc_.node(ctx).parent;
      if (parent == xml::kNoNode) break;
      bool after = false;
      for (NodeId s : doc_.node(parent).children) {
        if (s == ctx) {
          after = true;
          continue;
        }
        if (after) add_if(s);
      }
      break;
    }
    case Axis::kPrecedingSibling: {
      NodeId parent = doc_.node(ctx).parent;
      if (parent == xml::kNoNode) break;
      std::vector<NodeId> before;
      for (NodeId s : doc_.node(parent).children) {
        if (s == ctx) break;
        before.push_back(s);
      }
      // Proximity order: nearest preceding sibling first.
      for (auto it = before.rbegin(); it != before.rend(); ++it) add_if(*it);
      break;
    }
    case Axis::kAttribute:
      // Convention: the owning element stands in for the attribute node.
      if (step.test == NodeTestKind::kName) {
        if (doc_.FindAttribute(ctx, step.name) != nullptr) out.push_back(ctx);
      } else if (!doc_.node(ctx).attributes.empty()) {
        out.push_back(ctx);
      }
      break;
  }
  return out;
}

Result<std::vector<NodeId>> XPathEvaluator::ApplyFullStep(
    Ctx ctx, const Step& step) const {
  std::vector<NodeId> candidates = AxisCandidates(ctx, step);
  for (const xpath::ExprPtr& pred : step.predicates) {
    std::vector<NodeId> filtered;
    int size = static_cast<int>(candidates.size());
    for (int i = 0; i < size; ++i) {
      auto keep = EvalPredicate(*pred, candidates[static_cast<size_t>(i)],
                                i + 1, size);
      if (!keep.ok()) return keep.status();
      if (keep.value()) filtered.push_back(candidates[static_cast<size_t>(i)]);
    }
    candidates = std::move(filtered);
  }
  return candidates;
}

Result<std::vector<NodeId>> XPathEvaluator::EvaluatePath(
    const LocationPath& path) const {
  if (path.steps.empty()) {
    return Status::Unsupported("a bare '/' selects the document root node");
  }
  // Trailing text(): selects elements with non-empty direct text.
  size_t step_count = path.steps.size();
  bool text_mode = false;
  const Step& last = path.steps.back();
  if (last.test == NodeTestKind::kText) {
    if (last.axis != Axis::kChild || !last.predicates.empty()) {
      return Status::Unsupported("text() only as a plain final step");
    }
    --step_count;
    text_mode = true;
    if (step_count == 0) {
      return Status::Unsupported("text() of the document root");
    }
  }

  std::vector<NodeId> contexts = {0};
  for (size_t s = 0; s < step_count; ++s) {
    const Step& step = path.steps[s];
    if (step.axis == Axis::kAttribute && s + 1 != step_count) {
      return Status::Unsupported("attribute steps only at the end of a path");
    }
    std::vector<NodeId> next;
    for (NodeId ctx : contexts) {
      auto r = ApplyFullStep(ctx, step);
      if (!r.ok()) return r.status();
      next.insert(next.end(), r.value().begin(), r.value().end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    contexts = std::move(next);
    if (contexts.empty()) break;
  }

  // Drop the virtual document root if it is still in the context (it is
  // not an element and never part of a result).
  if (!contexts.empty() && contexts.front() == 0) {
    contexts.erase(contexts.begin());
  }
  if (text_mode) {
    std::vector<NodeId> out;
    for (NodeId id : contexts) {
      if (!ElementValue(id).empty()) out.push_back(id);
    }
    return out;
  }
  return contexts;
}

namespace {

// Comparison of a node value string against another string under the
// library's convention (see header).
bool CompareStrings(const std::string& a, const std::string& b, CompOp op) {
  int c = a.compare(b);
  switch (op) {
    case CompOp::kEq:
      return c == 0;
    case CompOp::kNe:
      return c != 0;
    case CompOp::kLt:
      return c < 0;
    case CompOp::kLe:
      return c <= 0;
    case CompOp::kGt:
      return c > 0;
    case CompOp::kGe:
      return c >= 0;
  }
  return false;
}

bool CompareNumbers(double a, double b, CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return a == b;
    case CompOp::kNe:
      return a != b;
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kGt:
      return a > b;
    case CompOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<XPathEvaluator::PathValues> XPathEvaluator::EvalPredicatePath(
    NodeId ctx, const LocationPath& path) const {
  PathValues out;
  if (path.steps.empty()) return out;

  std::vector<NodeId> contexts = {path.absolute ? 0 : ctx};
  size_t step_count = path.steps.size();
  bool text_mode = false;
  const Step& last = path.steps.back();
  if (last.test == NodeTestKind::kText && last.axis == Axis::kChild &&
      last.predicates.empty()) {
    --step_count;
    text_mode = true;
  }
  bool attr_mode = path.steps[step_count - 1].axis == Axis::kAttribute;

  for (size_t s = 0; s < step_count; ++s) {
    const Step& step = path.steps[s];
    if (step.axis == Axis::kAttribute && s + 1 != step_count) {
      return Status::Unsupported("attribute steps only at the end of a path");
    }
    std::vector<NodeId> next;
    for (NodeId c : contexts) {
      auto r = ApplyFullStep(c, step);
      if (!r.ok()) return r.status();
      next.insert(next.end(), r.value().begin(), r.value().end());
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    contexts = std::move(next);
    if (contexts.empty()) return out;
  }

  if (attr_mode) {
    const Step& astep = path.steps[step_count - 1];
    for (NodeId id : contexts) {
      if (id == 0) continue;
      if (astep.test == NodeTestKind::kName) {
        const std::string* v = doc_.FindAttribute(id, astep.name);
        if (v != nullptr) {
          out.values.push_back(*v);
          out.exists = true;
        }
      } else {
        for (const xml::Attribute& a : doc_.node(id).attributes) {
          out.values.push_back(a.value);
          out.exists = true;
        }
      }
    }
    return out;
  }
  for (NodeId id : contexts) {
    if (id == 0) continue;  // the virtual document root has no value
    std::string v = ElementValue(id);
    if (text_mode && v.empty()) continue;
    out.values.push_back(std::move(v));
    out.exists = true;
  }
  if (text_mode && out.values.empty()) out.exists = false;
  return out;
}

Result<bool> XPathEvaluator::EvalPredicate(const Expr& expr, NodeId node,
                                           int position, int size) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      auto a = EvalPredicate(*expr.children[0], node, position, size);
      if (!a.ok()) return a.status();
      if (!a.value()) return false;
      return EvalPredicate(*expr.children[1], node, position, size);
    }
    case Expr::Kind::kOr: {
      auto a = EvalPredicate(*expr.children[0], node, position, size);
      if (!a.ok()) return a.status();
      if (a.value()) return true;
      return EvalPredicate(*expr.children[1], node, position, size);
    }
    case Expr::Kind::kNot: {
      auto a = EvalPredicate(*expr.children[0], node, position, size);
      if (!a.ok()) return a.status();
      return !a.value();
    }
    case Expr::Kind::kPath: {
      auto pv = EvalPredicatePath(node, expr.path);
      if (!pv.ok()) return pv.status();
      return pv.value().exists;
    }
    case Expr::Kind::kString:
      return !expr.str_value.empty();
    case Expr::Kind::kNumber:
      // Bare numbers are rewritten to position()=n by the parser; a number
      // reaching here is a truth test: non-zero is true.
      return expr.num_value != 0;
    case Expr::Kind::kPosition:
      return position != 0;
    case Expr::Kind::kComparison: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      CompOp op = expr.op;

      // position() op number (and flipped).
      if (lhs.kind == Expr::Kind::kPosition ||
          rhs.kind == Expr::Kind::kPosition) {
        const Expr& other = lhs.kind == Expr::Kind::kPosition ? rhs : lhs;
        if (other.kind != Expr::Kind::kNumber) {
          return Status::Unsupported("position() compared to non-number");
        }
        double p = position;
        double n = other.num_value;
        if (lhs.kind == Expr::Kind::kPosition) {
          return CompareNumbers(p, n, op);
        }
        return CompareNumbers(n, p, op);
      }

      auto values_of = [&](const Expr& e) -> Result<PathValues> {
        if (e.kind == Expr::Kind::kPath) return EvalPredicatePath(node, e.path);
        PathValues v;
        if (e.kind == Expr::Kind::kString) {
          v.values.push_back(e.str_value);
          v.exists = true;
        } else if (e.kind == Expr::Kind::kNumber) {
          // Marked below; handled via numeric comparison path.
          v.exists = true;
        }
        return v;
      };

      bool lhs_number = lhs.kind == Expr::Kind::kNumber;
      bool rhs_number = rhs.kind == Expr::Kind::kNumber;
      if (lhs_number && rhs_number) {
        return CompareNumbers(lhs.num_value, rhs.num_value, op);
      }
      if (lhs_number || rhs_number) {
        // node-set/string op number: numeric comparison; unparseable values
        // never match.
        const Expr& other = lhs_number ? rhs : lhs;
        double num = lhs_number ? lhs.num_value : rhs.num_value;
        auto pv = values_of(other);
        if (!pv.ok()) return pv.status();
        for (const std::string& v : pv.value().values) {
          auto d = ParseDouble(v);
          if (!d) continue;
          bool match = lhs_number ? CompareNumbers(num, *d, op)
                                  : CompareNumbers(*d, num, op);
          if (match) return true;
        }
        return false;
      }

      auto l = values_of(lhs);
      if (!l.ok()) return l.status();
      auto r = values_of(rhs);
      if (!r.ok()) return r.status();
      for (const std::string& a : l.value().values) {
        for (const std::string& b : r.value().values) {
          if (CompareStrings(a, b, op)) return true;
        }
      }
      return false;
    }
  }
  return Status::Internal("unhandled predicate expression");
}

Result<std::vector<NodeId>> XPathEvaluator::Evaluate(
    const XPathExpr& expr) const {
  std::vector<NodeId> out;
  for (const LocationPath& branch : expr.branches) {
    auto r = EvaluatePath(branch);
    if (!r.ok()) return r.status();
    out.insert(out.end(), r.value().begin(), r.value().end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<std::vector<NodeId>> XPathEvaluator::EvaluateString(
    std::string_view xpath) const {
  auto parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Evaluate(parsed.value());
}

}  // namespace xprel::xpatheval
