#ifndef XPREL_XPATHEVAL_EVALUATOR_H_
#define XPREL_XPATHEVAL_EVALUATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/document.h"
#include "xpath/ast.h"

namespace xprel::xpatheval {

// A native, DOM-walking XPath evaluator. It is the library's correctness
// oracle: integration tests compare every relational backend's result
// against it. It favours clarity over speed.
//
// Result and value conventions (shared with the relational translators, see
// DESIGN.md):
//   * results are element node ids in document order, deduplicated;
//   * a trailing text() step selects elements whose direct text (the
//     concatenation of their text children) is non-empty, reported as the
//     owning element;
//   * a trailing attribute step selects the owning elements that carry the
//     attribute;
//   * the comparison value of an element is its direct text; of an
//     attribute, its value;
//   * equality on strings is string equality; ordering comparisons are
//     numeric when the literal is a number, lexicographic otherwise.
//
// position() and numeric predicates are fully supported here (the
// translators reject them), with XPath proximity positions on reverse axes.
class XPathEvaluator {
 public:
  explicit XPathEvaluator(const xml::Document& doc);

  Result<std::vector<xml::NodeId>> Evaluate(const xpath::XPathExpr& expr) const;
  Result<std::vector<xml::NodeId>> EvaluateString(std::string_view xpath) const;

  // The comparison value of an element (its direct text).
  std::string ElementValue(xml::NodeId id) const;

 private:
  // 0 denotes the virtual document-root context.
  using Ctx = xml::NodeId;

  Result<std::vector<xml::NodeId>> EvaluatePath(
      const xpath::LocationPath& path) const;
  // Applies one step (axis + test + predicates) to a single context node.
  Result<std::vector<xml::NodeId>> ApplyFullStep(Ctx ctx,
                                                 const xpath::Step& step) const;
  // Axis + node-test candidates in axis order (no predicates).
  std::vector<xml::NodeId> AxisCandidates(Ctx ctx,
                                          const xpath::Step& step) const;
  bool MatchesTest(xml::NodeId node, const xpath::Step& step) const;

  Result<bool> EvalPredicate(const xpath::Expr& expr, xml::NodeId node,
                             int position, int size) const;

  // Values (comparison strings) and existence of a predicate path.
  struct PathValues {
    std::vector<std::string> values;
    bool exists = false;
  };
  Result<PathValues> EvalPredicatePath(xml::NodeId ctx,
                                       const xpath::LocationPath& path) const;

  const xml::Document& doc_;
  // First preorder id after node i's subtree (exclusive bound).
  std::vector<xml::NodeId> subtree_end_;
};

}  // namespace xprel::xpatheval

#endif  // XPREL_XPATHEVAL_EVALUATOR_H_
