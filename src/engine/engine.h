#ifndef XPREL_ENGINE_ENGINE_H_
#define XPREL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "accel/accel_store.h"
#include "common/result.h"
#include "rel/query.h"
#include "shred/edge_loader.h"
#include "shred/schema_loader.h"
#include "translate/translator.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::engine {

// The five execution strategies the paper's Section 5 compares.
enum class Backend {
  kPpf,          // the contribution: schema-aware PPF translation (Section 4)
  kEdgePpf,      // PPF over the schema-oblivious Edge mapping (Section 5.1)
  kAccelerator,  // XPath Accelerator window translation (Grust et al.)
  kStaircase,    // staircase-join evaluation (the MonetDB/XQuery stand-in)
  kNaive,        // conventional per-step schema-aware translation
                 // (the commercial built-in shredding stand-in)
};

const char* BackendName(Backend b);

struct EngineOptions {
  bool enable_ppf = true;
  bool enable_edge = true;
  bool enable_accel = true;  // serves both kAccelerator and kStaircase
  translate::TranslateOptions ppf_options;
};

struct QueryOutcome {
  std::vector<xml::NodeId> nodes;  // document order
  std::string sql;                 // empty for the staircase backend
  rel::QueryStats stats;
  double elapsed_ms = 0;
};

// One document loaded under every enabled storage mapping, queryable
// through any backend. The document and schema must outlive the engine.
//
//   auto engine = XPathEngine::Build(doc, schema_graph);
//   auto out = engine->Run(Backend::kPpf, "/site/regions/*/item");
class XPathEngine {
 public:
  static Result<std::unique_ptr<XPathEngine>> Build(
      const xml::Document& doc, const xsd::SchemaGraph& graph,
      EngineOptions options = {});

  Result<QueryOutcome> Run(Backend backend, std::string_view xpath) const;

  // Translation only (no execution); not meaningful for kStaircase.
  Result<std::string> TranslateToSql(Backend backend,
                                     std::string_view xpath) const;

  const shred::SchemaAwareStore* ppf_store() const { return ppf_store_.get(); }
  const shred::EdgeStore* edge_store() const { return edge_store_.get(); }
  const accel::AccelStore* accel_store() const { return accel_store_.get(); }
  const xml::Document& document() const { return *doc_; }

 private:
  XPathEngine() = default;

  const xml::Document* doc_ = nullptr;
  const xsd::SchemaGraph* graph_ = nullptr;
  EngineOptions options_;
  std::unique_ptr<shred::SchemaAwareStore> ppf_store_;
  std::unique_ptr<shred::EdgeStore> edge_store_;
  std::unique_ptr<accel::AccelStore> accel_store_;
};

}  // namespace xprel::engine

#endif  // XPREL_ENGINE_ENGINE_H_
