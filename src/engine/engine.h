#ifndef XPREL_ENGINE_ENGINE_H_
#define XPREL_ENGINE_ENGINE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "accel/accel_store.h"
#include "common/memory_budget.h"
#include "common/result.h"
#include "rel/query.h"
#include "shred/edge_loader.h"
#include "shred/schema_loader.h"
#include "translate/translator.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::engine {

// The five execution strategies the paper's Section 5 compares.
enum class Backend {
  kPpf,          // the contribution: schema-aware PPF translation (Section 4)
  kEdgePpf,      // PPF over the schema-oblivious Edge mapping (Section 5.1)
  kAccelerator,  // XPath Accelerator window translation (Grust et al.)
  kStaircase,    // staircase-join evaluation (the MonetDB/XQuery stand-in)
  kNaive,        // conventional per-step schema-aware translation
                 // (the commercial built-in shredding stand-in)
};

const char* BackendName(Backend b);

struct EngineOptions {
  bool enable_ppf = true;
  bool enable_edge = true;
  bool enable_accel = true;  // serves both kAccelerator and kStaircase
  // Cache (backend, xpath) -> translated SQL + compiled plans, so repeated
  // Run() calls skip parse/translate/plan entirely.
  bool enable_plan_cache = true;
  // Maximum number of cached (backend, xpath) entries; least-recently-used
  // entries are evicted past this bound. 0 means unbounded. Entries are
  // shared_ptr-held, so an execution holding an evicted entry stays valid.
  size_t plan_cache_capacity = 4096;
  // Per-query memory budget applied when Run() is called without an
  // ExecControl carrying its own budget: transient executor state (hash
  // builds, EXISTS memos, dedup tables, result rows) beyond this many bytes
  // makes the query fail with ResourceExhausted instead of taking the
  // process down. 0 disables the default budget.
  size_t per_query_memory_cap = size_t{512} << 20;
  // Byte budget for the plan cache's compiled entries (estimated sizes).
  // When an insert would exceed it, LRU entries are evicted first; if the
  // entry alone exceeds the budget it is simply not cached. 0 = unbounded.
  size_t plan_cache_memory_cap = size_t{128} << 20;
  // Default intra-query parallelism for Run() calls whose ExecControl
  // carries a TaskRunner but leaves parallelism at 0 (auto). 0 keeps auto
  // (the runner's width); N caps every such query at N threads. Queries
  // without a runner always run serial — the engine spawns no threads.
  int parallelism = 0;
  translate::TranslateOptions ppf_options;
};

struct QueryOutcome {
  std::vector<xml::NodeId> nodes;  // document order
  std::string sql;                 // empty for the staircase backend
  rel::QueryStats stats;
  double elapsed_ms = 0;
};

// One document loaded under every enabled storage mapping, queryable
// through any backend. The document and schema must outlive the engine.
//
//   auto engine = XPathEngine::Build(doc, schema_graph);
//   auto out = engine->Run(Backend::kPpf, "/site/regions/*/item");
class XPathEngine {
 public:
  static Result<std::unique_ptr<XPathEngine>> Build(
      const xml::Document& doc, const xsd::SchemaGraph& graph,
      EngineOptions options = {});

  // Thread-safe: any number of threads may Run() concurrently on one
  // engine. `control` (nullable) arms per-query cancellation and deadline
  // checks inside the executor (see rel::ExecControl); an interrupted query
  // returns Status::Cancelled / Status::DeadlineExceeded.
  Result<QueryOutcome> Run(Backend backend, std::string_view xpath,
                           const rel::ExecControl* control = nullptr) const;

  // Translation only (no execution); not meaningful for kStaircase.
  Result<std::string> TranslateToSql(Backend backend,
                                     std::string_view xpath) const;

  // Human-readable access plan for every SELECT block of the translated
  // query (join strategy per step, bitmap pre-filters, semi-join builds).
  // Not meaningful for kStaircase.
  Result<std::string> ExplainPlan(Backend backend,
                                  std::string_view xpath) const;

  const shred::SchemaAwareStore* ppf_store() const { return ppf_store_.get(); }
  const shred::EdgeStore* edge_store() const { return edge_store_.get(); }
  const accel::AccelStore* accel_store() const { return accel_store_.get(); }
  const xml::Document& document() const { return *doc_; }

  // Number of compiled (backend, xpath) entries currently cached.
  size_t plan_cache_size() const;

  // Accounting for the plan cache's estimated footprint (bytes). Capped by
  // EngineOptions::plan_cache_memory_cap.
  const MemoryBudget& plan_cache_budget() const { return plan_cache_budget_; }

  // Document generation, for serving layers that cache results keyed on
  // (backend, xpath, generation): starts at 0 and only moves via
  // BumpGeneration(). Call BumpGeneration() whenever the underlying
  // document or stores are reloaded or mutated out-of-band, so every
  // result cached against the previous generation silently misses.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  XPathEngine() = default;

  // A translated + planned query, reusable across Run() calls. Owns the
  // SqlQuery (the statements the plans borrow), so entries are immutable
  // and shared_ptr-held executions survive cache eviction.
  struct CachedQuery {
    translate::TranslatedQuery translated;
    std::string sql_text;
    std::vector<std::unique_ptr<rel::Plan>> plans;
  };

  // Translates and plans `xpath` for a SQL-executing backend, or returns
  // the cached result. Not meaningful for kStaircase.
  Result<std::shared_ptr<const CachedQuery>> GetOrBuildQuery(
      Backend backend, std::string_view xpath) const;

  const rel::Database* BackendDb(Backend backend) const;

  const xml::Document* doc_ = nullptr;
  const xsd::SchemaGraph* graph_ = nullptr;
  EngineOptions options_;
  std::atomic<uint64_t> generation_{0};
  std::unique_ptr<shred::SchemaAwareStore> ppf_store_;
  std::unique_ptr<shred::EdgeStore> edge_store_;
  std::unique_ptr<accel::AccelStore> accel_store_;

  // Plan cache, keyed by backend + '\n' + xpath. Guarded by cache_mu_ so
  // concurrent readers of one engine stay safe; execution happens outside
  // the lock on the immutable shared entries. LRU order lives in
  // cache_lru_ (most recent at the front); plan_cache_ maps each key to
  // its list node, so hits splice in O(1) and eviction pops the back.
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const CachedQuery> query;
    size_t charge = 0;  // bytes reserved in plan_cache_budget_
  };
  mutable MemoryBudget plan_cache_budget_;
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<std::string, std::list<CacheEntry>::iterator>
      plan_cache_;
};

}  // namespace xprel::engine

#endif  // XPREL_ENGINE_ENGINE_H_
