#ifndef XPREL_ENGINE_ENGINE_H_
#define XPREL_ENGINE_ENGINE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accel/accel_store.h"
#include "common/memory_budget.h"
#include "common/result.h"
#include "rel/query.h"
#include "shred/edge_loader.h"
#include "shred/schema_loader.h"
#include "translate/translator.h"
#include "xml/document.h"
#include "xsd/schema_graph.h"

namespace xprel::dml {
class DocumentMutator;
}  // namespace xprel::dml

namespace xprel::engine {

// The five execution strategies the paper's Section 5 compares.
enum class Backend {
  kPpf,          // the contribution: schema-aware PPF translation (Section 4)
  kEdgePpf,      // PPF over the schema-oblivious Edge mapping (Section 5.1)
  kAccelerator,  // XPath Accelerator window translation (Grust et al.)
  kStaircase,    // staircase-join evaluation (the MonetDB/XQuery stand-in)
  kNaive,        // conventional per-step schema-aware translation
                 // (the commercial built-in shredding stand-in)
};

const char* BackendName(Backend b);

struct EngineOptions {
  bool enable_ppf = true;
  bool enable_edge = true;
  bool enable_accel = true;  // serves both kAccelerator and kStaircase
  // Cache (backend, xpath) -> translated SQL + compiled plans, so repeated
  // Run() calls skip parse/translate/plan entirely.
  bool enable_plan_cache = true;
  // Maximum number of cached (backend, xpath) entries; least-recently-used
  // entries are evicted past this bound. 0 means unbounded. Entries are
  // shared_ptr-held, so an execution holding an evicted entry stays valid.
  size_t plan_cache_capacity = 4096;
  // Per-query memory budget applied when Run() is called without an
  // ExecControl carrying its own budget: transient executor state (hash
  // builds, EXISTS memos, dedup tables, result rows) beyond this many bytes
  // makes the query fail with ResourceExhausted instead of taking the
  // process down. 0 disables the default budget.
  size_t per_query_memory_cap = size_t{512} << 20;
  // Byte budget for the plan cache's compiled entries (estimated sizes).
  // When an insert would exceed it, LRU entries are evicted first; if the
  // entry alone exceeds the budget it is simply not cached. 0 = unbounded.
  size_t plan_cache_memory_cap = size_t{128} << 20;
  // Default intra-query parallelism for Run() calls whose ExecControl
  // carries a TaskRunner but leaves parallelism at 0 (auto). 0 keeps auto
  // (the runner's width); N caps every such query at N threads. Queries
  // without a runner always run serial — the engine spawns no threads.
  int parallelism = 0;
  translate::TranslateOptions ppf_options;
};

struct QueryOutcome {
  std::vector<xml::NodeId> nodes;  // document order
  std::string sql;                 // empty for the staircase backend
  rel::QueryStats stats;
  double elapsed_ms = 0;
  // Path ids (of the backend's Paths space) the compiled plans touch,
  // sorted and deduplicated — the key for path-scoped result caching.
  // `full_footprint` means attribution was not possible (staircase /
  // accelerator backends, or a plan block without a Paths bitmap) and the
  // result must be treated as touching every path.
  std::vector<int64_t> path_footprint;
  bool full_footprint = true;
};

// Path ids one mutation touched, per Paths id space (the schema-aware and
// Edge stores intern paths independently). Produced by dml::DocumentMutator,
// consumed by the engine's and the service's surgical invalidation.
struct AffectedPaths {
  std::vector<int64_t> ppf;   // sorted, deduplicated
  std::vector<int64_t> edge;  // sorted, deduplicated
  // The Paths summary itself changed (a path was created or retired):
  // path-scoped invalidation is insufficient, fall back to clearing caches
  // and bumping the document generation.
  bool paths_changed = false;
};

// Monotonic DML statistics, surfaced by ExplainPlan (engine view) and the
// query service's DumpMetrics.
struct MutationCounters {
  std::atomic<uint64_t> mutations_applied{0};
  std::atomic<uint64_t> dewey_renumbers{0};
  std::atomic<uint64_t> paths_added{0};
  std::atomic<uint64_t> paths_retired{0};
  std::atomic<uint64_t> plan_entries_invalidated{0};
};

// One document loaded under every enabled storage mapping, queryable
// through any backend. The document and schema must outlive the engine.
//
//   auto engine = XPathEngine::Build(doc, schema_graph);
//   auto out = engine->Run(Backend::kPpf, "/site/regions/*/item");
class XPathEngine {
 public:
  static Result<std::unique_ptr<XPathEngine>> Build(
      const xml::Document& doc, const xsd::SchemaGraph& graph,
      EngineOptions options = {});

  // Assembles an engine around already-populated stores — the durability
  // layer's snapshot-restore path. The stores must hold the shredded image
  // of exactly `doc` (same element ids, same Paths state); nothing is
  // reloaded. A null store disables that backend, mirroring
  // enable_ppf/enable_edge. The accelerator image cannot be snapshotted
  // incrementally (pre/post regions, the paper's Section 2 contrast), so it
  // is rebuilt from the document here when enabled.
  static Result<std::unique_ptr<XPathEngine>> BuildFromStores(
      const xml::Document& doc, const xsd::SchemaGraph& graph,
      std::unique_ptr<shred::SchemaAwareStore> ppf_store,
      std::unique_ptr<shred::EdgeStore> edge_store,
      EngineOptions options = {});

  // Thread-safe: any number of threads may Run() concurrently on one
  // engine. `control` (nullable) arms per-query cancellation and deadline
  // checks inside the executor (see rel::ExecControl); an interrupted query
  // returns Status::Cancelled / Status::DeadlineExceeded.
  // `trace` (nullable) opts into per-step actuals (rel::ExecTrace, one
  // StepStats vector per SQL block); leaving it null keeps the execution
  // entirely untraced — no clock reads, no extra work. If the control also
  // carries a TraceContext, the engine hangs plan/execute spans on it.
  Result<QueryOutcome> Run(Backend backend, std::string_view xpath,
                           const rel::ExecControl* control = nullptr,
                           rel::ExecTrace* trace = nullptr) const;

  // Translation only (no execution); not meaningful for kStaircase.
  Result<std::string> TranslateToSql(Backend backend,
                                     std::string_view xpath) const;

  // Human-readable access plan for every SELECT block of the translated
  // query (join strategy per step, bitmap pre-filters, semi-join builds).
  // Not meaningful for kStaircase.
  Result<std::string> ExplainPlan(Backend backend,
                                  std::string_view xpath) const;

  // EXPLAIN ANALYZE: executes the query with per-step tracing and renders
  // the same tree as ExplainPlan with each step annotated by its actuals —
  // rows in/out, batches, probe counts, phase-attributed wall time, and
  // per-morsel skew on parallel runs — plus a one-line run summary. The
  // "est=?" slot on every step is reserved for planner estimates (the
  // cost-based planning PR fills it). Not meaningful for kStaircase.
  Result<std::string> ExplainAnalyze(
      Backend backend, std::string_view xpath,
      const rel::ExecControl* control = nullptr) const;

  const shred::SchemaAwareStore* ppf_store() const { return ppf_store_.get(); }
  const shred::EdgeStore* edge_store() const { return edge_store_.get(); }
  const accel::AccelStore* accel_store() const { return accel_store_.get(); }
  const xml::Document& document() const { return *doc_; }

  // Number of compiled (backend, xpath) entries currently cached.
  size_t plan_cache_size() const;

  // Accounting for the plan cache's estimated footprint (bytes). Capped by
  // EngineOptions::plan_cache_memory_cap.
  const MemoryBudget& plan_cache_budget() const { return plan_cache_budget_; }

  // Document generation, for serving layers that cache results keyed on
  // (backend, xpath, generation): starts at 0 and only moves via
  // BumpGeneration(). Call BumpGeneration() whenever the underlying
  // document or stores are reloaded or mutated out-of-band, so every
  // result cached against the previous generation silently misses.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Surgical plan-cache invalidation after a mutation: drops only entries
  // whose path footprint intersects the affected set (entries that could
  // not be attributed to specific paths are treated as touching every
  // path). When the mutation changed the Paths summary itself, falls back
  // to clearing the whole cache and bumping the generation. Thread-safe.
  void InvalidateForMutation(const AffectedPaths& affected);

  const MutationCounters& mutation_counters() const {
    return mutation_counters_;
  }

  // Shared (reader) side of the writer-excludes-readers mutex, for
  // components outside the query path that must observe a quiescent store
  // image — the durability checkpointer holds this while serializing a
  // snapshot, so no mutation can move the tables mid-capture.
  std::shared_lock<std::shared_mutex> ReaderLock() const {
    return std::shared_lock<std::shared_mutex>(rw_mu_);
  }

 private:
  friend class xprel::dml::DocumentMutator;

  XPathEngine() = default;

  // A translated + planned query, reusable across Run() calls. Owns the
  // SqlQuery (the statements the plans borrow), so entries are immutable
  // and shared_ptr-held executions survive cache eviction.
  struct CachedQuery {
    Backend backend = Backend::kPpf;
    translate::TranslatedQuery translated;
    std::string sql_text;
    std::vector<std::unique_ptr<rel::Plan>> plans;
    // Versions of every table the plans touch, snapshotted at build time.
    // A cache hit whose snapshot is stale (DML moved a table on) is
    // discarded and rebuilt — this is what makes a cached plan's RowId
    // bitmaps and merge orders safe to reuse at all.
    std::vector<std::pair<const rel::Table*, uint64_t>> table_versions;
    // Path ids selected by the plans' Paths-table bitmaps (sorted,
    // deduplicated); meaningful only when !full_footprint.
    std::vector<int64_t> path_footprint;
    bool full_footprint = true;

    bool VersionsCurrent() const {
      for (const auto& [table, version] : table_versions) {
        if (table->version() != version) return false;
      }
      return true;
    }
  };

  // Translates and plans `xpath` for a SQL-executing backend, or returns
  // the cached result. Not meaningful for kStaircase. `cache_hit`
  // (nullable) reports whether the entry came straight from the plan cache
  // — the signal behind the "plan" trace span's hit/miss annotation.
  Result<std::shared_ptr<const CachedQuery>> GetOrBuildQuery(
      Backend backend, std::string_view xpath,
      bool* cache_hit = nullptr) const;

  // Shared EXPLAIN renderer: header lines + per-block plan tree, annotated
  // with actuals when `trace` is non-null (see ExplainAnalyze).
  std::string RenderPlans(const CachedQuery& cq,
                          const rel::ExecTrace* trace) const;

  const rel::Database* BackendDb(Backend backend) const;

  // Marks the accelerator image stale (pre/post regions cannot be
  // maintained incrementally — the paper's Section 2 contrast) and purges
  // its plan-cache entries; the next accel/staircase query rebuilds it.
  void MarkAccelStale();
  // Takes the writer lock, rebuilds the accelerator image from the (already
  // mutated) document, and clears the stale flag. No-op if already fresh.
  Status RebuildAccelIfStale() const;

  // Drops every cached plan entry (with budget release); caller holds
  // cache_mu_.
  void ClearPlanCacheLocked();

  const xml::Document* doc_ = nullptr;
  const xsd::SchemaGraph* graph_ = nullptr;
  EngineOptions options_;
  std::atomic<uint64_t> generation_{0};
  std::unique_ptr<shred::SchemaAwareStore> ppf_store_;
  std::unique_ptr<shred::EdgeStore> edge_store_;
  mutable std::unique_ptr<accel::AccelStore> accel_store_;
  mutable std::atomic<bool> accel_stale_{false};
  mutable MutationCounters mutation_counters_;

  // Writer-excludes-readers: every query path holds this shared; the DML
  // layer (and the lazy accelerator rebuild) holds it exclusive while any
  // derived structure is in motion. Acquired before cache_mu_.
  mutable std::shared_mutex rw_mu_;

  // Plan cache, keyed by backend + '\n' + xpath. Guarded by cache_mu_ so
  // concurrent readers of one engine stay safe; execution happens outside
  // the lock on the immutable shared entries. LRU order lives in
  // cache_lru_ (most recent at the front); plan_cache_ maps each key to
  // its list node, so hits splice in O(1) and eviction pops the back.
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const CachedQuery> query;
    size_t charge = 0;  // bytes reserved in plan_cache_budget_
  };
  mutable MemoryBudget plan_cache_budget_;
  mutable std::mutex cache_mu_;
  mutable std::list<CacheEntry> cache_lru_;
  mutable std::unordered_map<std::string, std::list<CacheEntry>::iterator>
      plan_cache_;
};

}  // namespace xprel::engine

#endif  // XPREL_ENGINE_ENGINE_H_
