#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "accel/accel_translator.h"
#include "accel/staircase.h"
#include "common/fault_injection.h"
#include "translate/edge_translator.h"

namespace xprel::engine {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Coarse control check for paths that do not run through the relational
// executor (the staircase backend): which trigger fired, if any.
Status ControlStatus(const rel::ExecControl* control) {
  if (control == nullptr) return Status::Ok();
  if (control->cancel != nullptr &&
      control->cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (control->has_deadline &&
      std::chrono::steady_clock::now() >= control->deadline) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Ok();
}

// Estimated resident bytes of a compiled plan: the dominant variable-size
// members (merge-join row orders, bitmaps, expression pool) plus fixed
// per-node overhead, recursing into EXISTS subplans. Deliberately coarse —
// the plan-cache budget needs proportionality, not byte exactness.
size_t ApproxPlanBytes(const rel::Plan& plan) {
  size_t n = sizeof(rel::Plan);
  for (const rel::AccessStep& s : plan.steps) {
    n += sizeof(rel::AccessStep);
    n += s.merge_order.size() * sizeof(rel::RowId);
  }
  for (const rel::RowBitmap& bm : plan.bitmaps) {
    n += bm.words.size() * sizeof(uint64_t);
  }
  n += plan.expr_pool.size() * sizeof(rel::CompiledExpr);
  n += plan.regexes.size() * 256;  // NFA states; coarse per-regex estimate
  for (const auto& [expr, sub] : plan.subplans) {
    if (sub != nullptr) n += ApproxPlanBytes(*sub);
  }
  if (plan.semijoin_plan != nullptr) n += ApproxPlanBytes(*plan.semijoin_plan);
  return n;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kPpf:
      return "PPF";
    case Backend::kEdgePpf:
      return "Edge-like PPF";
    case Backend::kAccelerator:
      return "XPath Accelerator";
    case Backend::kStaircase:
      return "Staircase (MonetDB-like)";
    case Backend::kNaive:
      return "Conventional per-step";
  }
  return "?";
}

Result<std::unique_ptr<XPathEngine>> XPathEngine::Build(
    const xml::Document& doc, const xsd::SchemaGraph& graph,
    EngineOptions options) {
  std::unique_ptr<XPathEngine> engine(new XPathEngine());
  engine->doc_ = &doc;
  engine->graph_ = &graph;
  engine->options_ = options;
  engine->plan_cache_budget_.set_cap(options.plan_cache_memory_cap);
  if (options.enable_ppf) {
    auto store = shred::SchemaAwareStore::Create(graph);
    if (!store.ok()) return store.status();
    engine->ppf_store_ = std::move(store).value();
    auto id = engine->ppf_store_->LoadDocument(doc);
    if (!id.ok()) return id.status();
  }
  if (options.enable_edge) {
    auto store = shred::EdgeStore::Create();
    if (!store.ok()) return store.status();
    engine->edge_store_ = std::move(store).value();
    auto id = engine->edge_store_->LoadDocument(doc);
    if (!id.ok()) return id.status();
  }
  if (options.enable_accel) {
    auto store = accel::AccelStore::Create(doc);
    if (!store.ok()) return store.status();
    engine->accel_store_ = std::move(store).value();
  }
  return engine;
}

Result<std::string> XPathEngine::TranslateToSql(Backend backend,
                                                std::string_view xpath) const {
  switch (backend) {
    case Backend::kPpf: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(), options_.ppf_options);
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kNaive: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(),
                                 translate::NaiveTranslateOptions());
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kEdgePpf: {
      translate::EdgePpfTranslator t;
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kAccelerator: {
      accel::AcceleratorTranslator t;
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kStaircase:
      return Status::InvalidArgument(
          "the staircase backend evaluates natively, without SQL");
  }
  return Status::Internal("unknown backend");
}

const rel::Database* XPathEngine::BackendDb(Backend backend) const {
  switch (backend) {
    case Backend::kPpf:
    case Backend::kNaive:
      return ppf_store_ != nullptr ? &ppf_store_->db() : nullptr;
    case Backend::kEdgePpf:
      return edge_store_ != nullptr ? &edge_store_->db() : nullptr;
    case Backend::kAccelerator:
      return accel_store_ != nullptr ? &accel_store_->db() : nullptr;
    case Backend::kStaircase:
      return nullptr;
  }
  return nullptr;
}

size_t XPathEngine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return plan_cache_.size();
}

Result<std::shared_ptr<const XPathEngine::CachedQuery>>
XPathEngine::GetOrBuildQuery(Backend backend, std::string_view xpath) const {
  std::string key =
      std::to_string(static_cast<int>(backend)) + "\n" + std::string(xpath);
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      return it->second->query;
    }
  }

  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("engine.translate"));
  Result<translate::TranslatedQuery> q = Status::Internal("unset");
  switch (backend) {
    case Backend::kPpf:
    case Backend::kNaive: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(),
                                 backend == Backend::kPpf
                                     ? options_.ppf_options
                                     : translate::NaiveTranslateOptions());
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kEdgePpf: {
      if (edge_store_ == nullptr) {
        return Status::InvalidArgument("Edge backend disabled");
      }
      translate::EdgePpfTranslator t;
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kAccelerator: {
      if (accel_store_ == nullptr) {
        return Status::InvalidArgument("Accelerator backend disabled");
      }
      accel::AcceleratorTranslator t;
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kStaircase:
      return Status::InvalidArgument(
          "the staircase backend evaluates natively, without SQL");
  }
  if (!q.ok()) return q.status();

  auto entry = std::make_shared<CachedQuery>();
  entry->translated = std::move(q).value();
  entry->sql_text = entry->translated.ToSqlString();
  if (!entry->translated.statically_empty) {
    const rel::Database* db = BackendDb(backend);
    for (const auto& stmt : entry->translated.sql.selects) {
      auto plan = rel::PlanSelect(*db, *stmt, nullptr);
      if (!plan.ok()) return plan.status();
      entry->plans.push_back(std::move(plan).value());
    }
  }

  // Caching is best-effort: a failed insert (budget refusal, injected fault)
  // must not fail the query itself — except for the deterministic fault
  // point, which exists so tests can prove the query path survives it.
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("engine.plan_cache_insert"));
  if (options_.enable_plan_cache) {
    size_t charge = key.size() + entry->sql_text.size() + sizeof(CacheEntry);
    for (const auto& plan : entry->plans) charge += ApproxPlanBytes(*plan);
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
      // Make room under the byte budget before inserting; if the entry can
      // never fit even with the cache empty, skip caching — the caller
      // still gets the freshly built (uncached) entry.
      bool reserved = plan_cache_budget_.Reserve(charge, "plan cache").ok();
      while (!reserved && !cache_lru_.empty()) {
        plan_cache_budget_.Release(cache_lru_.back().charge);
        plan_cache_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
        reserved = plan_cache_budget_.Reserve(charge, "plan cache").ok();
      }
      if (!reserved) return std::shared_ptr<const CachedQuery>(entry);
      cache_lru_.push_front(CacheEntry{key, entry, charge});
      plan_cache_.emplace(std::move(key), cache_lru_.begin());
      size_t cap = options_.plan_cache_capacity;
      while (cap != 0 && cache_lru_.size() > cap) {
        plan_cache_budget_.Release(cache_lru_.back().charge);
        plan_cache_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
      }
    }
  }
  return std::shared_ptr<const CachedQuery>(entry);
}

Result<std::string> XPathEngine::ExplainPlan(Backend backend,
                                             std::string_view xpath) const {
  if (backend == Backend::kStaircase) {
    return Status::InvalidArgument(
        "the staircase backend evaluates natively, without SQL plans");
  }
  auto cached = GetOrBuildQuery(backend, xpath);
  if (!cached.ok()) return cached.status();
  const CachedQuery& cq = *cached.value();
  if (cq.translated.statically_empty) {
    return std::string("(statically empty: no rows can match)\n");
  }
  std::string out = "-- batch size: " + std::to_string(rel::kDefaultBatchSize) +
                    " rows (vectorized executor; per-step exec= below)\n";
  for (size_t i = 0; i < cq.plans.size(); ++i) {
    if (cq.plans.size() > 1) {
      out += "-- block " + std::to_string(i + 1) + " of " +
             std::to_string(cq.plans.size()) + "\n";
    }
    // Parallel shape: which step (if any) the morsel scheduler partitions
    // when the query runs with a TaskRunner and parallelism >= 2.
    const rel::Plan& plan = *cq.plans[i];
    int pstep = rel::PartitionStep(plan);
    if (pstep >= 0) {
      const rel::AccessStep& s = plan.steps[static_cast<size_t>(pstep)];
      out += "-- parallel: Dewey-range morsels over step " +
             std::to_string(pstep + 1) + " (" + s.alias + " on " +
             s.table->schema().name + ", " +
             std::to_string(s.table->row_count()) + " rows)\n";
    } else {
      out += "-- parallel: serial (no step large enough to shard)\n";
    }
    out += plan.Describe();
  }
  return out;
}

Result<QueryOutcome> XPathEngine::Run(Backend backend, std::string_view xpath,
                                      const rel::ExecControl* control) const {
  QueryOutcome out;
  auto start = std::chrono::steady_clock::now();

  // Every execution runs under a memory budget: callers that pass their own
  // (the query service threads a per-query child of the service-wide budget)
  // keep it; otherwise the engine supplies a per-call default so a runaway
  // query fails with ResourceExhausted instead of exhausting the process.
  MemoryBudget default_budget(options_.per_query_memory_cap);
  rel::ExecControl budgeted_control;
  if (options_.per_query_memory_cap != 0 &&
      (control == nullptr || control->budget == nullptr)) {
    if (control != nullptr) budgeted_control = *control;
    budgeted_control.budget = &default_budget;
    control = &budgeted_control;
  }
  // Engine-level parallelism default: applies only to controls that carry a
  // runner but left the knob at auto (the engine itself spawns no threads).
  if (options_.parallelism != 0 && control != nullptr &&
      control->runner != nullptr && control->parallelism == 0) {
    if (control != &budgeted_control) {
      budgeted_control = *control;
      control = &budgeted_control;
    }
    budgeted_control.parallelism = options_.parallelism;
  }

  if (backend == Backend::kStaircase) {
    if (accel_store_ == nullptr) {
      return Status::InvalidArgument("Accelerator backend disabled");
    }
    // The staircase evaluator has no per-row interruption hooks; honour the
    // control at the two step boundaries it does cross.
    XPREL_RETURN_IF_ERROR(ControlStatus(control));
    accel::StaircaseEvaluator eval(*accel_store_);
    auto r = eval.EvaluateString(xpath);
    if (!r.ok()) return r.status();
    XPREL_RETURN_IF_ERROR(ControlStatus(control));
    for (int32_t pre : r.value()) {
      out.nodes.push_back(accel_store_->NodeOf(pre));
    }
    out.stats.output_rows = out.nodes.size();
  } else {
    auto cached = GetOrBuildQuery(backend, xpath);
    if (!cached.ok()) return cached.status();
    const CachedQuery& cq = *cached.value();
    out.sql = cq.sql_text;
    if (!cq.translated.statically_empty) {
      std::vector<const rel::Plan*> plans;
      plans.reserve(cq.plans.size());
      for (const auto& p : cq.plans) plans.push_back(p.get());
      // Consume the result as id chunks straight off the vectorized
      // executor: node ids get sorted + deduplicated into document order
      // below, so SQL-level ORDER BY and DISTINCT materialization would be
      // wasted work on this path.
      bool unknown_id = false;
      auto sink = [&](const rel::RowChunk& chunk) {
        const std::vector<rel::Value>& ids = chunk.columns[0];
        out.nodes.reserve(out.nodes.size() + chunk.rows);
        if (backend == Backend::kAccelerator) {
          for (size_t r = 0; r < chunk.rows; ++r) {
            out.nodes.push_back(
                accel_store_->NodeOf(static_cast<int32_t>(ids[r].AsInt())));
          }
        } else if (backend == Backend::kEdgePpf) {
          for (size_t r = 0; r < chunk.rows; ++r) {
            const auto* origin = edge_store_->FindOrigin(ids[r].AsInt());
            if (origin == nullptr) {
              unknown_id = true;
              return false;
            }
            out.nodes.push_back(origin->node);
          }
        } else {
          for (size_t r = 0; r < chunk.rows; ++r) {
            const auto* origin = ppf_store_->FindOrigin(ids[r].AsInt());
            if (origin == nullptr) {
              unknown_id = true;
              return false;
            }
            out.nodes.push_back(origin->node);
          }
        }
        return true;
      };
      XPREL_RETURN_IF_ERROR(
          rel::ExecutePlannedQueryChunks(plans, sink, &out.stats, control));
      if (unknown_id) return Status::Internal("unknown element id in result");
    }
  }

  std::sort(out.nodes.begin(), out.nodes.end());
  out.nodes.erase(std::unique(out.nodes.begin(), out.nodes.end()),
                  out.nodes.end());
  out.elapsed_ms = MsSince(start);
  return out;
}

}  // namespace xprel::engine
