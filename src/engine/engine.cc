#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>

#include "accel/accel_translator.h"
#include "accel/staircase.h"
#include "common/fault_injection.h"
#include "translate/edge_translator.h"

namespace xprel::engine {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Coarse control check for paths that do not run through the relational
// executor (the staircase backend): which trigger fired, if any.
Status ControlStatus(const rel::ExecControl* control) {
  if (control == nullptr) return Status::Ok();
  if (control->cancel != nullptr &&
      control->cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  if (control->has_deadline &&
      std::chrono::steady_clock::now() >= control->deadline) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Ok();
}

// Estimated resident bytes of a compiled plan: the dominant variable-size
// members (merge-join row orders, bitmaps, expression pool) plus fixed
// per-node overhead, recursing into EXISTS subplans. Deliberately coarse —
// the plan-cache budget needs proportionality, not byte exactness.
size_t ApproxPlanBytes(const rel::Plan& plan) {
  size_t n = sizeof(rel::Plan);
  for (const rel::AccessStep& s : plan.steps) {
    n += sizeof(rel::AccessStep);
    n += s.merge_order.size() * sizeof(rel::RowId);
  }
  for (const rel::RowBitmap& bm : plan.bitmaps) {
    n += bm.words.size() * sizeof(uint64_t);
  }
  n += plan.expr_pool.size() * sizeof(rel::CompiledExpr);
  n += plan.regexes.size() * 256;  // NFA states; coarse per-regex estimate
  for (const auto& [expr, sub] : plan.subplans) {
    if (sub != nullptr) n += ApproxPlanBytes(*sub);
  }
  if (plan.semijoin_plan != nullptr) n += ApproxPlanBytes(*plan.semijoin_plan);
  return n;
}

// Collects the distinct tables `plan` (and its subplans) touches, and the
// Paths rows selected by its plan-time bitmaps. Returns true when the
// plan's path set is fully attributable: it has at least one Paths-table
// step and every Paths step carries a bitmap (the regex was evaluated at
// plan time), so the bitmap rows ARE the paths the query can see.
bool CollectPlanFootprint(const rel::Plan& plan,
                          std::set<const rel::Table*>& tables,
                          std::set<int64_t>& paths) {
  bool attributed = false;
  for (const rel::AccessStep& s : plan.steps) {
    if (s.table == nullptr) continue;
    tables.insert(s.table);
    if (s.table->schema().name != shred::kPathsTable) continue;
    if (s.bitmap_filters.empty()) return false;
    attributed = true;
    for (const rel::RowBitmap* bm : s.bitmap_filters) {
      for (size_t w = 0; w < bm->words.size(); ++w) {
        uint64_t word = bm->words[w];
        for (int b = 0; word != 0; ++b, word >>= 1) {
          if ((word & 1) == 0) continue;
          rel::RowId rid = static_cast<rel::RowId>(w * 64 + b);
          paths.insert(s.table->at(rid, 0).AsInt());
        }
      }
    }
  }
  for (const auto& [expr, sub] : plan.subplans) {
    if (sub != nullptr && !CollectPlanFootprint(*sub, tables, paths)) {
      attributed = false;
    }
  }
  if (plan.semijoin_plan != nullptr &&
      !CollectPlanFootprint(*plan.semijoin_plan, tables, paths)) {
    attributed = false;
  }
  return attributed;
}

// True when two sorted id vectors share an element.
bool SortedIntersect(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kPpf:
      return "PPF";
    case Backend::kEdgePpf:
      return "Edge-like PPF";
    case Backend::kAccelerator:
      return "XPath Accelerator";
    case Backend::kStaircase:
      return "Staircase (MonetDB-like)";
    case Backend::kNaive:
      return "Conventional per-step";
  }
  return "?";
}

Result<std::unique_ptr<XPathEngine>> XPathEngine::Build(
    const xml::Document& doc, const xsd::SchemaGraph& graph,
    EngineOptions options) {
  std::unique_ptr<XPathEngine> engine(new XPathEngine());
  engine->doc_ = &doc;
  engine->graph_ = &graph;
  engine->options_ = options;
  engine->plan_cache_budget_.set_cap(options.plan_cache_memory_cap);
  if (options.enable_ppf) {
    auto store = shred::SchemaAwareStore::Create(graph);
    if (!store.ok()) return store.status();
    engine->ppf_store_ = std::move(store).value();
    auto id = engine->ppf_store_->LoadDocument(doc);
    if (!id.ok()) return id.status();
  }
  if (options.enable_edge) {
    auto store = shred::EdgeStore::Create();
    if (!store.ok()) return store.status();
    engine->edge_store_ = std::move(store).value();
    auto id = engine->edge_store_->LoadDocument(doc);
    if (!id.ok()) return id.status();
  }
  if (options.enable_accel) {
    auto store = accel::AccelStore::Create(doc);
    if (!store.ok()) return store.status();
    engine->accel_store_ = std::move(store).value();
  }
  return engine;
}

Result<std::unique_ptr<XPathEngine>> XPathEngine::BuildFromStores(
    const xml::Document& doc, const xsd::SchemaGraph& graph,
    std::unique_ptr<shred::SchemaAwareStore> ppf_store,
    std::unique_ptr<shred::EdgeStore> edge_store, EngineOptions options) {
  std::unique_ptr<XPathEngine> engine(new XPathEngine());
  engine->doc_ = &doc;
  engine->graph_ = &graph;
  engine->options_ = options;
  engine->options_.enable_ppf = ppf_store != nullptr;
  engine->options_.enable_edge = edge_store != nullptr;
  engine->plan_cache_budget_.set_cap(options.plan_cache_memory_cap);
  engine->ppf_store_ = std::move(ppf_store);
  engine->edge_store_ = std::move(edge_store);
  if (options.enable_accel) {
    auto store = accel::AccelStore::Create(doc);
    if (!store.ok()) return store.status();
    engine->accel_store_ = std::move(store).value();
  }
  return engine;
}

Result<std::string> XPathEngine::TranslateToSql(Backend backend,
                                                std::string_view xpath) const {
  switch (backend) {
    case Backend::kPpf: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(), options_.ppf_options);
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kNaive: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(),
                                 translate::NaiveTranslateOptions());
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kEdgePpf: {
      translate::EdgePpfTranslator t;
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kAccelerator: {
      accel::AcceleratorTranslator t;
      auto q = t.TranslateString(xpath);
      if (!q.ok()) return q.status();
      return q.value().ToSqlString();
    }
    case Backend::kStaircase:
      return Status::InvalidArgument(
          "the staircase backend evaluates natively, without SQL");
  }
  return Status::Internal("unknown backend");
}

const rel::Database* XPathEngine::BackendDb(Backend backend) const {
  switch (backend) {
    case Backend::kPpf:
    case Backend::kNaive:
      return ppf_store_ != nullptr ? &ppf_store_->db() : nullptr;
    case Backend::kEdgePpf:
      return edge_store_ != nullptr ? &edge_store_->db() : nullptr;
    case Backend::kAccelerator:
      return accel_store_ != nullptr ? &accel_store_->db() : nullptr;
    case Backend::kStaircase:
      return nullptr;
  }
  return nullptr;
}

size_t XPathEngine::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return plan_cache_.size();
}

Result<std::shared_ptr<const XPathEngine::CachedQuery>>
XPathEngine::GetOrBuildQuery(Backend backend, std::string_view xpath,
                             bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  std::string key =
      std::to_string(static_cast<int>(backend)) + "\n" + std::string(xpath);
  if (options_.enable_plan_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // Revalidate against the tables the plans were compiled over: DML
      // moves table versions on, making plan-time RowId bitmaps and merge
      // orders physically stale. A stale entry is dropped and rebuilt —
      // returning it would silently serve pre-mutation results.
      if (it->second->query->VersionsCurrent()) {
        cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
        if (cache_hit != nullptr) *cache_hit = true;
        return it->second->query;
      }
      plan_cache_budget_.Release(it->second->charge);
      cache_lru_.erase(it->second);
      plan_cache_.erase(it);
    }
  }

  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("engine.translate"));
  Result<translate::TranslatedQuery> q = Status::Internal("unset");
  switch (backend) {
    case Backend::kPpf:
    case Backend::kNaive: {
      if (ppf_store_ == nullptr) return Status::InvalidArgument("PPF disabled");
      translate::PpfTranslator t(ppf_store_->mapping(),
                                 backend == Backend::kPpf
                                     ? options_.ppf_options
                                     : translate::NaiveTranslateOptions());
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kEdgePpf: {
      if (edge_store_ == nullptr) {
        return Status::InvalidArgument("Edge backend disabled");
      }
      translate::EdgePpfTranslator t;
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kAccelerator: {
      if (accel_store_ == nullptr) {
        return Status::InvalidArgument("Accelerator backend disabled");
      }
      accel::AcceleratorTranslator t;
      q = t.TranslateString(xpath);
      break;
    }
    case Backend::kStaircase:
      return Status::InvalidArgument(
          "the staircase backend evaluates natively, without SQL");
  }
  if (!q.ok()) return q.status();

  auto entry = std::make_shared<CachedQuery>();
  entry->backend = backend;
  entry->translated = std::move(q).value();
  entry->sql_text = entry->translated.ToSqlString();
  if (!entry->translated.statically_empty) {
    const rel::Database* db = BackendDb(backend);
    for (const auto& stmt : entry->translated.sql.selects) {
      auto plan = rel::PlanSelect(*db, *stmt, nullptr);
      if (!plan.ok()) return plan.status();
      entry->plans.push_back(std::move(plan).value());
    }
  }

  // Version snapshot + path footprint for DML revalidation/invalidation.
  {
    std::set<const rel::Table*> tables;
    std::set<int64_t> paths;
    bool attributed = true;
    for (const auto& plan : entry->plans) {
      attributed &= CollectPlanFootprint(*plan, tables, paths);
    }
    for (const rel::Table* t : tables) {
      entry->table_versions.emplace_back(t, t->version());
    }
    // Path attribution only makes sense for the PPF translations, whose
    // every step is path-filtered through a plan-time Paths bitmap; a
    // statically empty query has an empty (exact) footprint — it can only
    // become non-empty when a new path appears, which bumps the generation.
    if ((backend == Backend::kPpf || backend == Backend::kEdgePpf) &&
        (attributed || entry->translated.statically_empty)) {
      entry->full_footprint = false;
      entry->path_footprint.assign(paths.begin(), paths.end());
    }
  }

  // Caching is best-effort: a failed insert (budget refusal, injected fault)
  // must not fail the query itself — except for the deterministic fault
  // point, which exists so tests can prove the query path survives it.
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("engine.plan_cache_insert"));
  if (options_.enable_plan_cache) {
    size_t charge = key.size() + entry->sql_text.size() + sizeof(CacheEntry);
    for (const auto& plan : entry->plans) charge += ApproxPlanBytes(*plan);
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
      // Make room under the byte budget before inserting; if the entry can
      // never fit even with the cache empty, skip caching — the caller
      // still gets the freshly built (uncached) entry.
      bool reserved = plan_cache_budget_.Reserve(charge, "plan cache").ok();
      while (!reserved && !cache_lru_.empty()) {
        plan_cache_budget_.Release(cache_lru_.back().charge);
        plan_cache_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
        reserved = plan_cache_budget_.Reserve(charge, "plan cache").ok();
      }
      if (!reserved) return std::shared_ptr<const CachedQuery>(entry);
      cache_lru_.push_front(CacheEntry{key, entry, charge});
      plan_cache_.emplace(std::move(key), cache_lru_.begin());
      size_t cap = options_.plan_cache_capacity;
      while (cap != 0 && cache_lru_.size() > cap) {
        plan_cache_budget_.Release(cache_lru_.back().charge);
        plan_cache_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
      }
    }
  }
  return std::shared_ptr<const CachedQuery>(entry);
}

std::string XPathEngine::RenderPlans(const CachedQuery& cq,
                                     const rel::ExecTrace* trace) const {
  std::string out = "-- batch size: " + std::to_string(rel::kDefaultBatchSize) +
                    " rows (vectorized executor; per-step exec= below)\n";
  if (cq.full_footprint) {
    out += "-- invalidation: full footprint (any mutation invalidates)\n";
  } else {
    out += "-- invalidation: path footprint = " +
           std::to_string(cq.path_footprint.size()) + " path id(s)\n";
  }
  const uint64_t applied =
      mutation_counters_.mutations_applied.load(std::memory_order_relaxed);
  if (applied > 0) {
    out += "-- mutations: applied=" + std::to_string(applied) +
           " dewey_renumbers=" +
           std::to_string(mutation_counters_.dewey_renumbers.load(
               std::memory_order_relaxed)) +
           " paths_added=" +
           std::to_string(mutation_counters_.paths_added.load(
               std::memory_order_relaxed)) +
           " paths_retired=" +
           std::to_string(mutation_counters_.paths_retired.load(
               std::memory_order_relaxed)) +
           " plan_entries_invalidated=" +
           std::to_string(mutation_counters_.plan_entries_invalidated.load(
               std::memory_order_relaxed)) +
           "\n";
  }
  for (size_t i = 0; i < cq.plans.size(); ++i) {
    if (cq.plans.size() > 1) {
      out += "-- block " + std::to_string(i + 1) + " of " +
             std::to_string(cq.plans.size()) + "\n";
    }
    // Parallel shape: which step (if any) the morsel scheduler partitions
    // when the query runs with a TaskRunner and parallelism >= 2.
    const rel::Plan& plan = *cq.plans[i];
    int pstep = rel::PartitionStep(plan);
    if (pstep >= 0) {
      const rel::AccessStep& s = plan.steps[static_cast<size_t>(pstep)];
      out += "-- parallel: Dewey-range morsels over step " +
             std::to_string(pstep + 1) + " (" + s.alias + " on " +
             s.table->schema().name + ", " +
             std::to_string(s.table->row_count()) + " rows)\n";
    } else {
      out += "-- parallel: serial (no step large enough to shard)\n";
    }
    // With a trace, annotate each step with the actuals recorded for this
    // block; a block the trace never reached (earlier error) stays bare.
    if (trace != nullptr && i < trace->blocks.size()) {
      const std::vector<rel::StepStats>& steps = trace->blocks[i];
      out += plan.DescribeWithActuals(steps.data(), steps.size());
    } else {
      out += plan.Describe();
    }
  }
  return out;
}

Result<std::string> XPathEngine::ExplainPlan(Backend backend,
                                             std::string_view xpath) const {
  if (backend == Backend::kStaircase) {
    return Status::InvalidArgument(
        "the staircase backend evaluates natively, without SQL plans");
  }
  if (backend == Backend::kAccelerator) {
    XPREL_RETURN_IF_ERROR(RebuildAccelIfStale());
  }
  std::shared_lock<std::shared_mutex> rw_lock(rw_mu_);
  auto cached = GetOrBuildQuery(backend, xpath);
  if (!cached.ok()) return cached.status();
  const CachedQuery& cq = *cached.value();
  if (cq.translated.statically_empty) {
    return std::string("(statically empty: no rows can match)\n");
  }
  return RenderPlans(cq, nullptr);
}

Result<std::string> XPathEngine::ExplainAnalyze(
    Backend backend, std::string_view xpath,
    const rel::ExecControl* control) const {
  if (backend == Backend::kStaircase) {
    return Status::InvalidArgument(
        "the staircase backend evaluates natively, without SQL plans");
  }
  rel::ExecTrace trace;
  auto run = Run(backend, xpath, control, &trace);
  if (!run.ok()) return run.status();
  const QueryOutcome& out = run.value();

  // Re-fetch the compiled entry to render the tree the run just executed.
  // Run() left it hot in the plan cache; if a concurrent mutation slipped
  // in between, RenderPlans guards the trace by block index, so the worst
  // case is a freshly built tree with fewer annotated blocks.
  std::shared_lock<std::shared_mutex> rw_lock(rw_mu_);
  auto cached = GetOrBuildQuery(backend, xpath);
  if (!cached.ok()) return cached.status();
  const CachedQuery& cq = *cached.value();
  if (cq.translated.statically_empty) {
    return std::string("(statically empty: no rows can match)\n");
  }
  char summary[96];
  std::snprintf(summary, sizeof(summary), "-- actual: %zu node(s) in %.3f ms\n",
                out.nodes.size(), out.elapsed_ms);
  return std::string(summary) + RenderPlans(cq, &trace);
}

Result<QueryOutcome> XPathEngine::Run(Backend backend, std::string_view xpath,
                                      const rel::ExecControl* control,
                                      rel::ExecTrace* trace) const {
  // The accelerator image cannot be maintained incrementally (pre/post
  // ranks shift globally on any insert — the paper's Section 2 contrast
  // with Dewey keys), so mutations mark it stale and the next query pays a
  // full rebuild. Must happen before the reader lock: the rebuild takes
  // the writer lock.
  if (backend == Backend::kAccelerator || backend == Backend::kStaircase) {
    XPREL_RETURN_IF_ERROR(RebuildAccelIfStale());
  }
  // Writer-excludes-readers: mutations hold this exclusively, so every
  // derived structure read below is consistent for the whole execution.
  std::shared_lock<std::shared_mutex> rw_lock(rw_mu_);

  QueryOutcome out;
  auto start = std::chrono::steady_clock::now();

  // Every execution runs under a memory budget: callers that pass their own
  // (the query service threads a per-query child of the service-wide budget)
  // keep it; otherwise the engine supplies a per-call default so a runaway
  // query fails with ResourceExhausted instead of exhausting the process.
  MemoryBudget default_budget(options_.per_query_memory_cap);
  rel::ExecControl budgeted_control;
  if (options_.per_query_memory_cap != 0 &&
      (control == nullptr || control->budget == nullptr)) {
    if (control != nullptr) budgeted_control = *control;
    budgeted_control.budget = &default_budget;
    control = &budgeted_control;
  }
  // Engine-level parallelism default: applies only to controls that carry a
  // runner but left the knob at auto (the engine itself spawns no threads).
  if (options_.parallelism != 0 && control != nullptr &&
      control->runner != nullptr && control->parallelism == 0) {
    if (control != &budgeted_control) {
      budgeted_control = *control;
      control = &budgeted_control;
    }
    budgeted_control.parallelism = options_.parallelism;
  }

  // Coarse engine spans hang off the caller's TraceContext (if any); the
  // budgeted_control copies above preserve the pointer.
  TraceContext* tctx = control != nullptr ? control->trace : nullptr;

  if (backend == Backend::kStaircase) {
    if (accel_store_ == nullptr) {
      return Status::InvalidArgument("Accelerator backend disabled");
    }
    ScopedSpan exec_span(tctx, "execute");
    // The staircase evaluator has no per-row interruption hooks; honour the
    // control at the two step boundaries it does cross.
    XPREL_RETURN_IF_ERROR(ControlStatus(control));
    accel::StaircaseEvaluator eval(*accel_store_);
    auto r = eval.EvaluateString(xpath);
    if (!r.ok()) return r.status();
    XPREL_RETURN_IF_ERROR(ControlStatus(control));
    for (int32_t pre : r.value()) {
      out.nodes.push_back(accel_store_->NodeOf(pre));
    }
    out.stats.output_rows = out.nodes.size();
  } else {
    bool cache_hit = false;
    const int plan_span = tctx != nullptr ? tctx->BeginSpan("plan") : -1;
    auto cached = GetOrBuildQuery(backend, xpath, &cache_hit);
    if (plan_span >= 0) {
      tctx->Annotate(plan_span, cache_hit ? "cache=hit" : "cache=miss");
      tctx->EndSpan(plan_span);
    }
    if (!cached.ok()) return cached.status();
    const CachedQuery& cq = *cached.value();
    out.sql = cq.sql_text;
    out.path_footprint = cq.path_footprint;
    out.full_footprint = cq.full_footprint;
    if (!cq.translated.statically_empty) {
      std::vector<const rel::Plan*> plans;
      plans.reserve(cq.plans.size());
      for (const auto& p : cq.plans) plans.push_back(p.get());
      // Consume the result as id chunks straight off the vectorized
      // executor: node ids get sorted + deduplicated into document order
      // below, so SQL-level ORDER BY and DISTINCT materialization would be
      // wasted work on this path.
      bool unknown_id = false;
      auto sink = [&](const rel::RowChunk& chunk) {
        const std::vector<rel::Value>& ids = chunk.columns[0];
        out.nodes.reserve(out.nodes.size() + chunk.rows);
        if (backend == Backend::kAccelerator) {
          for (size_t r = 0; r < chunk.rows; ++r) {
            out.nodes.push_back(
                accel_store_->NodeOf(static_cast<int32_t>(ids[r].AsInt())));
          }
        } else if (backend == Backend::kEdgePpf) {
          for (size_t r = 0; r < chunk.rows; ++r) {
            const auto* origin = edge_store_->FindOrigin(ids[r].AsInt());
            if (origin == nullptr) {
              unknown_id = true;
              return false;
            }
            out.nodes.push_back(origin->node);
          }
        } else {
          for (size_t r = 0; r < chunk.rows; ++r) {
            const auto* origin = ppf_store_->FindOrigin(ids[r].AsInt());
            if (origin == nullptr) {
              unknown_id = true;
              return false;
            }
            out.nodes.push_back(origin->node);
          }
        }
        return true;
      };
      {
        ScopedSpan exec_span(tctx, "execute");
        XPREL_RETURN_IF_ERROR(rel::ExecutePlannedQueryChunks(
            plans, sink, &out.stats, control, trace));
        exec_span.Annotate("rows=" + std::to_string(out.stats.output_rows));
      }
      if (unknown_id) return Status::Internal("unknown element id in result");
    }
  }

  // Document order: ids coincide with preorder only until the first
  // mutation; OrderRank() is the authority either way (and equals the id
  // for an unmutated document).
  const xml::Document& doc = *doc_;
  std::sort(out.nodes.begin(), out.nodes.end(),
            [&doc](xml::NodeId a, xml::NodeId b) {
              return doc.OrderRank(a) < doc.OrderRank(b);
            });
  out.nodes.erase(std::unique(out.nodes.begin(), out.nodes.end()),
                  out.nodes.end());
  out.elapsed_ms = MsSince(start);
  return out;
}

void XPathEngine::InvalidateForMutation(const AffectedPaths& affected) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (affected.paths_changed) {
    // Structural edit: the path summary changed, so statically-empty
    // verdicts and every path-scoped footprint are suspect. Clear
    // everything and move the generation so result caches miss too.
    BumpGeneration();
    mutation_counters_.plan_entries_invalidated.fetch_add(
        cache_lru_.size(), std::memory_order_relaxed);
    ClearPlanCacheLocked();
    return;
  }
  uint64_t dropped = 0;
  for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
    const CachedQuery& q = *it->query;
    const std::vector<int64_t>* space = nullptr;
    switch (q.backend) {
      case Backend::kPpf:
      case Backend::kNaive:
        space = &affected.ppf;
        break;
      case Backend::kEdgePpf:
        space = &affected.edge;
        break;
      default:
        break;  // accelerator entries are never path-attributed
    }
    const bool stale = q.full_footprint || space == nullptr ||
                       SortedIntersect(q.path_footprint, *space);
    if (stale) {
      plan_cache_budget_.Release(it->charge);
      plan_cache_.erase(it->key);
      it = cache_lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  mutation_counters_.plan_entries_invalidated.fetch_add(
      dropped, std::memory_order_relaxed);
}

void XPathEngine::MarkAccelStale() {
  if (accel_store_ == nullptr) return;
  accel_stale_.store(true, std::memory_order_release);
  // Purge accelerator plan entries immediately: their Table pointers lead
  // into the store instance the rebuild will replace.
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
    if (it->query->backend == Backend::kAccelerator) {
      plan_cache_budget_.Release(it->charge);
      plan_cache_.erase(it->key);
      it = cache_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

Status XPathEngine::RebuildAccelIfStale() const {
  if (accel_store_ == nullptr ||
      !accel_stale_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  if (!accel_stale_.load(std::memory_order_acquire)) return Status::Ok();
  auto store = accel::AccelStore::Create(*doc_);
  if (!store.ok()) return store.status();
  accel_store_ = std::move(store).value();
  accel_stale_.store(false, std::memory_order_release);
  return Status::Ok();
}

void XPathEngine::ClearPlanCacheLocked() {
  for (const CacheEntry& e : cache_lru_) plan_cache_budget_.Release(e.charge);
  cache_lru_.clear();
  plan_cache_.clear();
}

}  // namespace xprel::engine
