#ifndef XPREL_SERVICE_RESULT_CACHE_H_
#define XPREL_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "rel/query.h"
#include "xml/document.h"

namespace xprel::service {

// A thread-safe LRU cache of finished query results, keyed by the string the
// service renders from (backend, normalized xpath, document generation).
// Entries are shared_ptr-held and immutable, so a reader holding an entry
// across an eviction (or a Clear()) stays valid. Generation-keyed
// invalidation is implicit: after the document generation bumps, every old
// key simply stops being asked for, and stale entries age out through the
// LRU tail.
class ResultCache {
 public:
  struct Entry {
    std::vector<xml::NodeId> nodes;  // document order
    rel::QueryStats stats;           // counters of the run that produced it
    double build_ms = 0;             // execution time of that run
    // Invalidation scope, copied from the engine's QueryOutcome: the
    // backend that ran, and the sorted Paths ids the plan touched when the
    // engine could attribute them (full_footprint=false). Entries with
    // full_footprint=true must be dropped on every mutation.
    int backend = 0;  // engine::Backend, widened to avoid the header dep
    std::vector<int64_t> path_footprint;
    bool full_footprint = true;
  };

  // capacity 0 disables the cache entirely (Get always misses, Put drops).
  // `budget` (nullable, must outlive the cache) charges each entry's
  // estimated bytes against a shared budget — typically the service-wide
  // one — so cached results and in-flight queries compete for the same
  // allowance. Puts that cannot be funded even after evicting the whole LRU
  // tail are silently dropped; the cache is best-effort.
  explicit ResultCache(size_t capacity, MemoryBudget* budget = nullptr)
      : capacity_(capacity), budget_(budget) {}

  std::shared_ptr<const Entry> Get(const std::string& key);
  void Put(const std::string& key, std::shared_ptr<const Entry> entry);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  // Path-id-scoped invalidation: drops every entry for which `pred` returns
  // true (releasing its budget reservation) and returns how many were
  // dropped. The predicate runs under the cache lock — keep it cheap.
  size_t EraseIf(const std::function<bool(const Entry&)>& pred);

 private:
  struct LruEntry {
    std::string key;
    std::shared_ptr<const Entry> entry;
    size_t charge = 0;  // bytes reserved in budget_ for this entry
  };

  // Caller holds mu_. Removes the LRU tail entry, returning its reservation.
  void EvictBack();

  const size_t capacity_;
  MemoryBudget* const budget_;
  mutable std::mutex mu_;
  std::list<LruEntry> lru_;  // most recently used at the front
  std::unordered_map<std::string, std::list<LruEntry>::iterator> map_;
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_RESULT_CACHE_H_
