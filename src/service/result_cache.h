#ifndef XPREL_SERVICE_RESULT_CACHE_H_
#define XPREL_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rel/query.h"
#include "xml/document.h"

namespace xprel::service {

// A thread-safe LRU cache of finished query results, keyed by the string the
// service renders from (backend, normalized xpath, document generation).
// Entries are shared_ptr-held and immutable, so a reader holding an entry
// across an eviction (or a Clear()) stays valid. Generation-keyed
// invalidation is implicit: after the document generation bumps, every old
// key simply stops being asked for, and stale entries age out through the
// LRU tail.
class ResultCache {
 public:
  struct Entry {
    std::vector<xml::NodeId> nodes;  // document order
    rel::QueryStats stats;           // counters of the run that produced it
    double build_ms = 0;             // execution time of that run
  };

  // capacity 0 disables the cache entirely (Get always misses, Put drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const Entry> Get(const std::string& key);
  void Put(const std::string& key, std::shared_ptr<const Entry> entry);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  using LruEntry = std::pair<std::string, std::shared_ptr<const Entry>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<LruEntry> lru_;  // most recently used at the front
  std::unordered_map<std::string, std::list<LruEntry>::iterator> map_;
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_RESULT_CACHE_H_
