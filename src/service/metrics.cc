#include "service/metrics.h"

#include <cstdio>

namespace xprel::service {

uint64_t LatencyHistogram::PercentileUs(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Snapshot the buckets; relaxed loads, so a concurrent recorder may be
  // half-visible — acceptable for an observability read.
  std::array<uint64_t, kBuckets> snap;
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(i)];
  }
  if (total == 0) return 0;
  // Rank of the quantile sample, 1-based; walk buckets to find it.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<size_t>(i)];
    if (seen < rank) continue;
    if (total == 1) {
      // One sample: the upper edge would report up to double the observed
      // value, so answer with the bucket midpoint instead. Bucket 0 spans
      // [0, 2) — midpoint 1; bucket i spans [2^i, 2^(i+1)) — midpoint
      // 3·2^(i-1).
      return i == 0 ? 1 : uint64_t{3} << (i - 1);
    }
    return uint64_t{1} << (i + 1);  // upper bucket edge
  }
  return uint64_t{1} << kBuckets;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%lluµs p95=%lluµs p99=%lluµs mean=%.0fµs n=%llu",
                static_cast<unsigned long long>(PercentileUs(0.50)),
                static_cast<unsigned long long>(PercentileUs(0.95)),
                static_cast<unsigned long long>(PercentileUs(0.99)),
                MeanUs(), static_cast<unsigned long long>(count()));
  return buf;
}

std::string MetricsRegistry::Dump() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "requests: submitted=%llu completed=%llu rejected=%llu cancelled=%llu "
      "timed_out=%llu resource_exhausted=%llu errors=%llu\n"
      "result cache: hits=%llu misses=%llu hit_rate=%.1f%% "
      "entries_invalidated=%llu\n"
      "executor: batches_emitted=%llu morsels_scheduled=%llu "
      "morsel_steals=%llu max_query_threads=%llu\n"
      "memory: used=%llu peak=%llu\n",
      static_cast<unsigned long long>(submitted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(completed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(rejected.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(cancelled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(timed_out.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          resource_exhausted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(cache_hits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          cache_misses.load(std::memory_order_relaxed)),
      100.0 * CacheHitRate(),
      static_cast<unsigned long long>(
          cache_entries_invalidated.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          batches_emitted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          morsels_scheduled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          morsel_steals.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          max_query_threads.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(mem_used.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(mem_peak.load(std::memory_order_relaxed)));
  std::string out = buf;
  out += "queue wait: " + queue_wait.Summary() + "\n";
  out += "latency:    " + latency.Summary() + "\n";
  return out;
}

namespace {

// Positional names for the backend label; must track engine::Backend's enum
// order (the registry stays engine-agnostic on purpose).
constexpr const char* kBackendNames[] = {"ppf", "edge_ppf", "accelerator",
                                         "staircase", "naive"};
constexpr const char* kOutcomeNames[] = {
    "ok",       "cache_hit",          "cancelled", "timed_out",
    "resource_exhausted", "error",    "rejected"};
static_assert(sizeof(kOutcomeNames) / sizeof(kOutcomeNames[0]) ==
              MetricsRegistry::kOutcomes);

std::string BackendLabel(int i) {
  constexpr int kNamed = sizeof(kBackendNames) / sizeof(kBackendNames[0]);
  if (i >= 0 && i < kNamed) return kBackendNames[i];
  return "backend" + std::to_string(i);
}

void EmitCounter(std::string& out, const char* name, uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void EmitGauge(std::string& out, const char* name, uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void EmitHistogram(std::string& out, const char* name,
                   const LatencyHistogram& h) {
  out += "# TYPE ";
  out += name;
  out += " histogram\n";
  int last = -1;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.BucketCount(i) > 0) last = i;
  }
  uint64_t cum = 0;
  for (int i = 0; i <= last; ++i) {
    cum += h.BucketCount(i);
    out += name;
    out += "_bucket{le=\"";
    out += std::to_string(uint64_t{1} << (i + 1));
    out += "\"} ";
    out += std::to_string(cum);
    out += '\n';
  }
  out += name;
  out += "_bucket{le=\"+Inf\"} ";
  out += std::to_string(h.count());
  out += '\n';
  out += name;
  out += "_sum ";
  out += std::to_string(h.TotalUs());
  out += '\n';
  out += name;
  out += "_count ";
  out += std::to_string(h.count());
  out += '\n';
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out;
  out.reserve(2048);
  EmitCounter(out, "xprel_queries_submitted_total", load(submitted));
  EmitCounter(out, "xprel_queries_completed_total", load(completed));
  EmitCounter(out, "xprel_queries_rejected_total", load(rejected));
  EmitCounter(out, "xprel_queries_cancelled_total", load(cancelled));
  EmitCounter(out, "xprel_queries_timed_out_total", load(timed_out));
  EmitCounter(out, "xprel_queries_resource_exhausted_total",
              load(resource_exhausted));
  EmitCounter(out, "xprel_queries_errors_total", load(errors));
  EmitCounter(out, "xprel_result_cache_hits_total", load(cache_hits));
  EmitCounter(out, "xprel_result_cache_misses_total", load(cache_misses));
  EmitCounter(out, "xprel_result_cache_invalidated_total",
              load(cache_entries_invalidated));
  EmitCounter(out, "xprel_executor_batches_emitted_total",
              load(batches_emitted));
  EmitCounter(out, "xprel_executor_morsels_scheduled_total",
              load(morsels_scheduled));
  EmitCounter(out, "xprel_executor_morsel_steals_total", load(morsel_steals));
  EmitGauge(out, "xprel_max_query_threads", load(max_query_threads));
  EmitGauge(out, "xprel_memory_used_bytes", load(mem_used));
  EmitGauge(out, "xprel_memory_peak_bytes", load(mem_peak));

  // Labeled series: only emitted once touched, so an idle registry renders
  // compactly and scrapes stay proportional to actual traffic shape.
  bool any = false;
  for (int b = 0; b < kMaxBackends && !any; ++b) {
    for (int o = 0; o < kOutcomes && !any; ++o) {
      any = load(by_backend_outcome[static_cast<size_t>(b)]
                                   [static_cast<size_t>(o)]) > 0;
    }
  }
  if (any) {
    out += "# TYPE xprel_queries_total counter\n";
    for (int b = 0; b < kMaxBackends; ++b) {
      for (int o = 0; o < kOutcomes; ++o) {
        uint64_t v = load(by_backend_outcome[static_cast<size_t>(b)]
                                            [static_cast<size_t>(o)]);
        if (v == 0) continue;
        out += "xprel_queries_total{backend=\"" + BackendLabel(b) +
               "\",outcome=\"" + kOutcomeNames[o] + "\"} " +
               std::to_string(v) + "\n";
      }
    }
  }

  EmitHistogram(out, "xprel_queue_wait_us", queue_wait);
  EmitHistogram(out, "xprel_query_latency_us", latency);
  return out;
}

}  // namespace xprel::service
