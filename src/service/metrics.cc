#include "service/metrics.h"

#include <cstdio>

namespace xprel::service {

uint64_t LatencyHistogram::PercentileUs(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Snapshot the buckets; relaxed loads, so a concurrent recorder may be
  // half-visible — acceptable for an observability read.
  std::array<uint64_t, kBuckets> snap;
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(i)];
  }
  if (total == 0) return 0;
  // Rank of the quantile sample, 1-based; walk buckets to find it.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<size_t>(i)];
    if (seen >= rank) return uint64_t{1} << (i + 1);  // upper bucket edge
  }
  return uint64_t{1} << kBuckets;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%lluµs p95=%lluµs p99=%lluµs mean=%.0fµs n=%llu",
                static_cast<unsigned long long>(PercentileUs(0.50)),
                static_cast<unsigned long long>(PercentileUs(0.95)),
                static_cast<unsigned long long>(PercentileUs(0.99)),
                MeanUs(), static_cast<unsigned long long>(count()));
  return buf;
}

std::string MetricsRegistry::Dump() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "requests: submitted=%llu completed=%llu rejected=%llu cancelled=%llu "
      "timed_out=%llu resource_exhausted=%llu errors=%llu\n"
      "result cache: hits=%llu misses=%llu hit_rate=%.1f%% "
      "entries_invalidated=%llu\n"
      "executor: batches_emitted=%llu morsels_scheduled=%llu "
      "morsel_steals=%llu max_query_threads=%llu\n"
      "memory: used=%llu peak=%llu\n",
      static_cast<unsigned long long>(submitted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(completed.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(rejected.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(cancelled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(timed_out.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          resource_exhausted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(cache_hits.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          cache_misses.load(std::memory_order_relaxed)),
      100.0 * CacheHitRate(),
      static_cast<unsigned long long>(
          cache_entries_invalidated.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          batches_emitted.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          morsels_scheduled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          morsel_steals.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          max_query_threads.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(mem_used.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(mem_peak.load(std::memory_order_relaxed)));
  std::string out = buf;
  out += "queue wait: " + queue_wait.Summary() + "\n";
  out += "latency:    " + latency.Summary() + "\n";
  return out;
}

}  // namespace xprel::service
