#include "service/query_service.h"

#include <cstdio>
#include <utility>

#include "durability/manager.h"

namespace xprel::service {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

uint64_t UsBetween(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return us.count() < 0 ? 0 : static_cast<uint64_t>(us.count());
}

// Terminal status -> the outcome label used by trace records and the
// labeled Prometheus counters.
const char* OutcomeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "timed_out";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    default:
      return "error";
  }
}

MetricsRegistry::Outcome OutcomeKind(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return MetricsRegistry::Outcome::kOk;
    case StatusCode::kCancelled:
      return MetricsRegistry::Outcome::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return MetricsRegistry::Outcome::kTimedOut;
    case StatusCode::kResourceExhausted:
      return MetricsRegistry::Outcome::kResourceExhausted;
    default:
      return MetricsRegistry::Outcome::kError;
  }
}

// Flat text rendering of per-step actuals, one step per line — the service
// stores text (not StepStats) so trace records stay self-contained after
// the plan that produced them is gone.
std::string StepActualsSummary(const rel::ExecTrace& trace) {
  std::string out;
  for (size_t b = 0; b < trace.blocks.size(); ++b) {
    if (trace.blocks.size() > 1) {
      out += "block " + std::to_string(b + 1) + ":\n";
    }
    for (size_t s = 0; s < trace.blocks[b].size(); ++s) {
      const rel::StepStats& a = trace.blocks[b][s];
      out += "step " + std::to_string(s + 1) + ": in=" +
             std::to_string(a.rows_in) + " out=" + std::to_string(a.rows_out) +
             " batches=" + std::to_string(a.batches) +
             " time=" + std::to_string(a.time_us) + "us";
      if (a.morsels > 0) out += " morsels=" + std::to_string(a.morsels);
      out += "\n";
    }
  }
  return out;
}

// Both vectors sorted ascending.
bool SortedIntersect(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

QueryService::QueryService(const engine::XPathEngine& engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      memory_(options.total_memory_cap),
      cache_(options.result_cache_capacity, &memory_),
      pool_(options.workers, options.queue_capacity) {}

std::string_view QueryService::NormalizeXPath(std::string_view xpath) {
  while (!xpath.empty() && IsAsciiSpace(xpath.front())) {
    xpath.remove_prefix(1);
  }
  while (!xpath.empty() && IsAsciiSpace(xpath.back())) {
    xpath.remove_suffix(1);
  }
  return xpath;
}

std::string QueryService::CacheKey(engine::Backend backend,
                                   std::string_view xpath) const {
  // Both generations participate: the engine's moves on document reload,
  // the service's on InvalidateResults(). Either bump orphans every old key.
  std::string key = std::to_string(static_cast<int>(backend));
  key += '\x1f';
  key += std::to_string(engine_.generation());
  key += '\x1f';
  key += std::to_string(cache_generation_.load(std::memory_order_acquire));
  key += '\x1f';
  key.append(xpath.data(), xpath.size());
  return key;
}

std::future<Result<QueryResponse>> QueryService::Submit(QueryRequest req) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> fut = promise->get_future();

  std::string xpath(NormalizeXPath(req.xpath));
  // Per-query trace: a span tree shared by the submitting thread (admission,
  // cache lookup, queue wait), the worker, and — via ExecControl — the
  // engine and its morsel workers. Level 0 allocates nothing.
  std::shared_ptr<TraceContext> tctx;
  if (options_.trace_level > 0) {
    tctx = std::make_shared<TraceContext>(
        next_trace_id_.fetch_add(1, std::memory_order_relaxed));
  }
  const bool cacheable = cache_.capacity() > 0;
  std::string key;
  if (cacheable) {
    key = CacheKey(req.backend, xpath);
    if (!req.bypass_cache) {
      const int lookup_span =
          tctx != nullptr ? tctx->BeginSpan("cache-lookup") : -1;
      auto hit = cache_.Get(key);
      if (tctx != nullptr) {
        tctx->Annotate(lookup_span, hit ? "hit" : "miss");
        tctx->EndSpan(lookup_span);
      }
      if (hit) {
        metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        metrics_.completed.fetch_add(1, std::memory_order_relaxed);
        metrics_.RecordOutcome(static_cast<int>(req.backend),
                               MetricsRegistry::Outcome::kCacheHit);
        QueryResponse resp;
        resp.nodes = hit->nodes;
        resp.stats = hit->stats;
        resp.cache_hit = true;
        resp.elapsed_ms = hit->build_ms;
        if (tctx != nullptr) {
          resp.trace_id = tctx->trace_id();
          TraceRecord rec;
          rec.trace_id = tctx->trace_id();
          rec.backend = static_cast<int>(req.backend);
          rec.xpath = xpath;
          rec.outcome = "cache_hit";
          rec.spans = tctx->Render();
          RecordTrace(std::move(rec), /*failed=*/false);
        }
        promise->set_value(std::move(resp));
        return fut;
      }
    }
    metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  const auto admitted_at = std::chrono::steady_clock::now();
  std::chrono::milliseconds deadline_ms =
      req.deadline.count() > 0 ? req.deadline : options_.default_deadline;
  const bool has_deadline = deadline_ms.count() > 0;
  const auto deadline_at = admitted_at + deadline_ms;

  const int queue_span = tctx != nullptr ? tctx->BeginSpan("queue") : -1;

  bool admitted = pool_.TrySubmit([this, promise, backend = req.backend,
                                   xpath = std::move(xpath),
                                   cancel = std::move(req.cancel), cacheable,
                                   key = std::move(key), admitted_at,
                                   has_deadline, deadline_at,
                                   mem_cap = req.memory_cap, tctx,
                                   queue_span]() {
    const auto picked_up = std::chrono::steady_clock::now();
    const uint64_t wait_us = UsBetween(admitted_at, picked_up);
    metrics_.queue_wait.RecordUs(wait_us);
    if (tctx != nullptr) tctx->EndSpan(queue_span);

    rel::ExecControl control;
    control.check_interval = options_.check_interval;
    if (cancel != nullptr) control.cancel = cancel->flag();
    if (has_deadline) {
      control.has_deadline = true;
      control.deadline = deadline_at;
    }
    // Every query runs under a child of the service-wide budget, so one
    // query's transient state is capped individually while the sum of all
    // in-flight queries (plus the result cache) is capped collectively.
    size_t cap = mem_cap != 0 ? mem_cap : options_.per_query_memory_cap;
    MemoryBudget query_budget(cap, &memory_);
    control.budget = &query_budget;
    // Intra-query parallelism: morsels ride the pool's helper lane (separate
    // from the admission queue, caller-runs when saturated), so a busy pool
    // degrades every query to serial instead of rejecting or deadlocking.
    control.runner = &pool_.intra_runner();
    control.parallelism = options_.parallelism;
    control.trace = tctx.get();

    // With tracing on, the run also collects per-step actuals so slow-query
    // captures can say which step ate the time, not just that the query was
    // slow.
    rel::ExecTrace etrace;
    auto out = engine_.Run(backend, xpath, &control,
                           tctx != nullptr ? &etrace : nullptr);
    const uint64_t exec_us =
        UsBetween(picked_up, std::chrono::steady_clock::now());
    metrics_.latency.RecordUs(exec_us);
    metrics_.mem_used.store(memory_.used(), std::memory_order_relaxed);
    metrics_.mem_peak.store(memory_.peak(), std::memory_order_relaxed);
    if (!out.ok()) {
      switch (out.status().code()) {
        case StatusCode::kCancelled:
          metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kDeadlineExceeded:
          metrics_.timed_out.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kResourceExhausted:
          metrics_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          metrics_.errors.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      metrics_.RecordOutcome(static_cast<int>(backend),
                             OutcomeKind(out.status().code()));
      if (tctx != nullptr) {
        TraceRecord rec;
        rec.trace_id = tctx->trace_id();
        rec.backend = static_cast<int>(backend);
        rec.xpath = xpath;
        rec.outcome = OutcomeName(out.status().code());
        rec.queue_wait_ms = static_cast<double>(wait_us) / 1000.0;
        rec.elapsed_ms = static_cast<double>(exec_us) / 1000.0;
        rec.spans = tctx->Render();
        rec.step_actuals = StepActualsSummary(etrace);
        RecordTrace(std::move(rec), /*failed=*/true);
      }
      promise->set_value(out.status());
      return;
    }

    engine::QueryOutcome outcome = std::move(out).value();
    if (cacheable) {
      auto entry = std::make_shared<ResultCache::Entry>();
      entry->nodes = outcome.nodes;
      entry->stats = outcome.stats;
      entry->build_ms = outcome.elapsed_ms;
      entry->backend = static_cast<int>(backend);
      entry->path_footprint = outcome.path_footprint;
      entry->full_footprint = outcome.full_footprint;
      cache_.Put(key, std::move(entry));
    }
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.batches_emitted.fetch_add(outcome.stats.batches_emitted,
                                       std::memory_order_relaxed);
    metrics_.morsels_scheduled.fetch_add(outcome.stats.morsels_scheduled,
                                         std::memory_order_relaxed);
    metrics_.morsel_steals.fetch_add(outcome.stats.morsel_steals,
                                     std::memory_order_relaxed);
    // Per-query thread fan-out high-water mark.
    uint64_t fan = outcome.stats.parallel_threads;
    uint64_t seen = metrics_.max_query_threads.load(std::memory_order_relaxed);
    while (fan > seen && !metrics_.max_query_threads.compare_exchange_weak(
                             seen, fan, std::memory_order_relaxed)) {
    }
    metrics_.RecordOutcome(static_cast<int>(backend),
                           MetricsRegistry::Outcome::kOk);
    QueryResponse resp;
    resp.nodes = std::move(outcome.nodes);
    resp.stats = outcome.stats;
    resp.elapsed_ms = outcome.elapsed_ms;
    resp.queue_wait_ms = static_cast<double>(wait_us) / 1000.0;
    if (tctx != nullptr) {
      resp.trace_id = tctx->trace_id();
      TraceRecord rec;
      rec.trace_id = tctx->trace_id();
      rec.backend = static_cast<int>(backend);
      rec.xpath = xpath;
      rec.outcome = "ok";
      rec.queue_wait_ms = resp.queue_wait_ms;
      rec.elapsed_ms = static_cast<double>(exec_us) / 1000.0;
      rec.spans = tctx->Render();
      rec.step_actuals = StepActualsSummary(etrace);
      RecordTrace(std::move(rec), /*failed=*/false);
    }
    promise->set_value(std::move(resp));
  });

  if (!admitted) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.RecordOutcome(static_cast<int>(req.backend),
                           MetricsRegistry::Outcome::kRejected);
    if (tctx != nullptr) {
      tctx->Annotate(queue_span, "rejected");
      tctx->EndSpan(queue_span);
      TraceRecord rec;
      rec.trace_id = tctx->trace_id();
      rec.backend = static_cast<int>(req.backend);
      rec.xpath = std::string(NormalizeXPath(req.xpath));
      rec.outcome = "rejected";
      rec.spans = tctx->Render();
      RecordTrace(std::move(rec), /*failed=*/true);
    }
    promise->set_value(Status::ResourceExhausted(
        "admission queue full (" + std::to_string(pool_.queue_capacity()) +
        " waiting requests)"));
  }
  return fut;
}

void QueryService::RecordTrace(TraceRecord rec, bool failed) {
  const bool slow =
      options_.slow_query_threshold.count() > 0 &&
      rec.elapsed_ms >=
          static_cast<double>(options_.slow_query_threshold.count());
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (options_.trace_ring_capacity > 0) {
    recent_traces_.push_back(rec);
    while (recent_traces_.size() > options_.trace_ring_capacity) {
      recent_traces_.pop_front();
    }
  }
  if ((failed || slow) && options_.slow_log_capacity > 0) {
    slow_queries_.push_back(std::move(rec));
    while (slow_queries_.size() > options_.slow_log_capacity) {
      slow_queries_.pop_front();
    }
  }
}

std::vector<TraceRecord> QueryService::RecentTraces() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return {recent_traces_.begin(), recent_traces_.end()};
}

std::vector<TraceRecord> QueryService::SlowQueries() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return {slow_queries_.begin(), slow_queries_.end()};
}

std::string QueryService::RenderLastTrace() const {
  TraceRecord rec;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    if (recent_traces_.empty()) return "(no traces recorded)\n";
    rec = recent_traces_.back();
  }
  char head[160];
  std::snprintf(head, sizeof(head),
                "backend=%s outcome=%s queue_wait=%.3fms elapsed=%.3fms\n",
                engine::BackendName(static_cast<engine::Backend>(rec.backend)),
                rec.outcome.c_str(), rec.queue_wait_ms, rec.elapsed_ms);
  std::string out = "query: " + rec.xpath + "\n";
  out += head;
  out += rec.spans;
  if (!rec.step_actuals.empty()) {
    out += "step actuals:\n";
    out += rec.step_actuals;
  }
  return out;
}

std::string QueryService::RenderPrometheus() const {
  std::string out = metrics_.RenderPrometheus();
  auto gauge = [&out](const char* name, uint64_t v) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  gauge("xprel_queue_depth", pool_.queue_depth());
  gauge("xprel_result_cache_entries", cache_.size());
  out += "# TYPE xprel_pool_tasks_run_total counter\n";
  out += "xprel_pool_tasks_run_total{lane=\"main\"} " +
         std::to_string(pool_.tasks_run()) + "\n";
  out += "xprel_pool_tasks_run_total{lane=\"helper\"} " +
         std::to_string(pool_.helper_tasks_run()) + "\n";
  if (const durability::DurabilityManager* d = durability()) {
    const durability::DurabilityStats& s = d->stats();
    auto counter = [&out](const char* name, uint64_t v) {
      out += "# TYPE ";
      out += name;
      out += " counter\n";
      out += name;
      out += ' ';
      out += std::to_string(v);
      out += '\n';
    };
    counter("xprel_wal_records_total",
            s.wal_records.load(std::memory_order_relaxed));
    counter("xprel_wal_bytes_total",
            s.wal_bytes.load(std::memory_order_relaxed));
    counter("xprel_wal_aborts_total",
            s.wal_aborts.load(std::memory_order_relaxed));
    counter("xprel_wal_append_failures_total",
            s.wal_append_failures.load(std::memory_order_relaxed));
    counter("xprel_checkpoints_total",
            s.checkpoints.load(std::memory_order_relaxed));
    counter("xprel_checkpoint_failures_total",
            s.checkpoint_failures.load(std::memory_order_relaxed));
    counter("xprel_recovery_replayed_total",
            s.recovery_replayed.load(std::memory_order_relaxed));
    counter("xprel_recovery_corrupt_snapshots_total",
            s.recovery_corrupt_snapshots.load(std::memory_order_relaxed));
    counter("xprel_recovery_reshred_fallbacks_total",
            s.recovery_reshred_fallbacks.load(std::memory_order_relaxed));
    gauge("xprel_snapshot_bytes",
          s.snapshot_bytes.load(std::memory_order_relaxed));
    gauge("xprel_applied_lsn", d->applied_lsn());
  }
  return out;
}

void QueryService::InvalidateMutation(const engine::AffectedPaths& affected) {
  if (affected.paths_changed) {
    // The Paths summary moved: footprints of surviving entries may name
    // retired ids or miss new ones, so every entry goes. The engine already
    // bumped its generation (orphaning the keys); Clear() frees the memory
    // now instead of letting dead entries age out of the LRU.
    metrics_.cache_entries_invalidated.fetch_add(cache_.size(),
                                                 std::memory_order_relaxed);
    InvalidateResults();
    cache_.Clear();
    return;
  }
  size_t dropped = cache_.EraseIf([&affected](const ResultCache::Entry& e) {
    if (e.full_footprint) return true;
    // Each backend reads its own store, so footprints are matched against
    // that store's Paths id space.
    const std::vector<int64_t>* space = nullptr;
    switch (static_cast<engine::Backend>(e.backend)) {
      case engine::Backend::kPpf:
        space = &affected.ppf;
        break;
      case engine::Backend::kEdgePpf:
        space = &affected.edge;
        break;
      default:
        return true;  // unattributable backend: conservative drop
    }
    return SortedIntersect(e.path_footprint, *space);
  });
  metrics_.cache_entries_invalidated.fetch_add(dropped,
                                               std::memory_order_relaxed);
}

std::string QueryService::DumpMetrics() const {
  std::string out = "-- query service --\n";
  out += "workers=" + std::to_string(pool_.worker_count()) +
         " queue_depth=" + std::to_string(pool_.queue_depth()) + "/" +
         std::to_string(pool_.queue_capacity()) +
         " cache_entries=" + std::to_string(cache_.size()) + "/" +
         std::to_string(cache_.capacity()) + "\n";
  out += metrics_.Dump();
  const engine::MutationCounters& mc = engine_.mutation_counters();
  uint64_t applied = mc.mutations_applied.load(std::memory_order_relaxed);
  if (applied > 0) {
    out += "mutations: applied=" + std::to_string(applied) +
           " dewey_renumbers=" +
           std::to_string(mc.dewey_renumbers.load(std::memory_order_relaxed)) +
           " paths_added=" +
           std::to_string(mc.paths_added.load(std::memory_order_relaxed)) +
           " paths_retired=" +
           std::to_string(mc.paths_retired.load(std::memory_order_relaxed)) +
           " plan_entries_invalidated=" +
           std::to_string(
               mc.plan_entries_invalidated.load(std::memory_order_relaxed)) +
           " result_entries_invalidated=" +
           std::to_string(metrics_.cache_entries_invalidated.load(
               std::memory_order_relaxed)) +
           "\n";
  }
  if (const durability::DurabilityManager* d = durability()) {
    const durability::DurabilityStats& s = d->stats();
    out += "durability: wal_records=" +
           std::to_string(s.wal_records.load(std::memory_order_relaxed)) +
           " wal_bytes=" +
           std::to_string(s.wal_bytes.load(std::memory_order_relaxed)) +
           " wal_aborts=" +
           std::to_string(s.wal_aborts.load(std::memory_order_relaxed)) +
           " append_failures=" +
           std::to_string(
               s.wal_append_failures.load(std::memory_order_relaxed)) +
           " checkpoints=" +
           std::to_string(s.checkpoints.load(std::memory_order_relaxed)) +
           " checkpoint_failures=" +
           std::to_string(
               s.checkpoint_failures.load(std::memory_order_relaxed)) +
           " snapshot_bytes=" +
           std::to_string(s.snapshot_bytes.load(std::memory_order_relaxed)) +
           " applied_lsn=" + std::to_string(d->applied_lsn()) + "\n";
    if (const durability::RecoveryReport* r = d->recovery_report()) {
      out += "recovery: used_snapshot=" +
             std::to_string(r->used_snapshot ? 1 : 0) +
             " reshred_fallback=" +
             std::to_string(r->reshred_fallback ? 1 : 0) +
             " replayed=" + std::to_string(r->replayed) +
             " skipped_aborted=" + std::to_string(r->skipped_aborted) +
             " corrupt_snapshots=" + std::to_string(r->corrupt_snapshots) +
             " torn_segments=" + std::to_string(r->torn_segments) +
             " recovered_lsn=" + std::to_string(r->recovered_lsn) + "\n";
    }
  }
  return out;
}

}  // namespace xprel::service
