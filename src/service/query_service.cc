#include "service/query_service.h"

#include <utility>

namespace xprel::service {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

uint64_t UsBetween(std::chrono::steady_clock::time_point a,
                   std::chrono::steady_clock::time_point b) {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(b - a);
  return us.count() < 0 ? 0 : static_cast<uint64_t>(us.count());
}

// Both vectors sorted ascending.
bool SortedIntersect(const std::vector<int64_t>& a,
                     const std::vector<int64_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

QueryService::QueryService(const engine::XPathEngine& engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      memory_(options.total_memory_cap),
      cache_(options.result_cache_capacity, &memory_),
      pool_(options.workers, options.queue_capacity) {}

std::string_view QueryService::NormalizeXPath(std::string_view xpath) {
  while (!xpath.empty() && IsAsciiSpace(xpath.front())) {
    xpath.remove_prefix(1);
  }
  while (!xpath.empty() && IsAsciiSpace(xpath.back())) {
    xpath.remove_suffix(1);
  }
  return xpath;
}

std::string QueryService::CacheKey(engine::Backend backend,
                                   std::string_view xpath) const {
  // Both generations participate: the engine's moves on document reload,
  // the service's on InvalidateResults(). Either bump orphans every old key.
  std::string key = std::to_string(static_cast<int>(backend));
  key += '\x1f';
  key += std::to_string(engine_.generation());
  key += '\x1f';
  key += std::to_string(cache_generation_.load(std::memory_order_acquire));
  key += '\x1f';
  key.append(xpath.data(), xpath.size());
  return key;
}

std::future<Result<QueryResponse>> QueryService::Submit(QueryRequest req) {
  metrics_.submitted.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> fut = promise->get_future();

  std::string xpath(NormalizeXPath(req.xpath));
  const bool cacheable = cache_.capacity() > 0;
  std::string key;
  if (cacheable) {
    key = CacheKey(req.backend, xpath);
    if (!req.bypass_cache) {
      if (auto hit = cache_.Get(key)) {
        metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        metrics_.completed.fetch_add(1, std::memory_order_relaxed);
        QueryResponse resp;
        resp.nodes = hit->nodes;
        resp.stats = hit->stats;
        resp.cache_hit = true;
        resp.elapsed_ms = hit->build_ms;
        promise->set_value(std::move(resp));
        return fut;
      }
    }
    metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  const auto admitted_at = std::chrono::steady_clock::now();
  std::chrono::milliseconds deadline_ms =
      req.deadline.count() > 0 ? req.deadline : options_.default_deadline;
  const bool has_deadline = deadline_ms.count() > 0;
  const auto deadline_at = admitted_at + deadline_ms;

  bool admitted = pool_.TrySubmit([this, promise, backend = req.backend,
                                   xpath = std::move(xpath),
                                   cancel = std::move(req.cancel), cacheable,
                                   key = std::move(key), admitted_at,
                                   has_deadline, deadline_at,
                                   mem_cap = req.memory_cap]() {
    const auto picked_up = std::chrono::steady_clock::now();
    const uint64_t wait_us = UsBetween(admitted_at, picked_up);
    metrics_.queue_wait.RecordUs(wait_us);

    rel::ExecControl control;
    control.check_interval = options_.check_interval;
    if (cancel != nullptr) control.cancel = cancel->flag();
    if (has_deadline) {
      control.has_deadline = true;
      control.deadline = deadline_at;
    }
    // Every query runs under a child of the service-wide budget, so one
    // query's transient state is capped individually while the sum of all
    // in-flight queries (plus the result cache) is capped collectively.
    size_t cap = mem_cap != 0 ? mem_cap : options_.per_query_memory_cap;
    MemoryBudget query_budget(cap, &memory_);
    control.budget = &query_budget;
    // Intra-query parallelism: morsels ride the pool's helper lane (separate
    // from the admission queue, caller-runs when saturated), so a busy pool
    // degrades every query to serial instead of rejecting or deadlocking.
    control.runner = &pool_.intra_runner();
    control.parallelism = options_.parallelism;

    auto out = engine_.Run(backend, xpath, &control);
    metrics_.latency.RecordUs(UsBetween(picked_up, std::chrono::steady_clock::now()));
    metrics_.mem_used.store(memory_.used(), std::memory_order_relaxed);
    metrics_.mem_peak.store(memory_.peak(), std::memory_order_relaxed);
    if (!out.ok()) {
      switch (out.status().code()) {
        case StatusCode::kCancelled:
          metrics_.cancelled.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kDeadlineExceeded:
          metrics_.timed_out.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kResourceExhausted:
          metrics_.resource_exhausted.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          metrics_.errors.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      promise->set_value(out.status());
      return;
    }

    engine::QueryOutcome outcome = std::move(out).value();
    if (cacheable) {
      auto entry = std::make_shared<ResultCache::Entry>();
      entry->nodes = outcome.nodes;
      entry->stats = outcome.stats;
      entry->build_ms = outcome.elapsed_ms;
      entry->backend = static_cast<int>(backend);
      entry->path_footprint = outcome.path_footprint;
      entry->full_footprint = outcome.full_footprint;
      cache_.Put(key, std::move(entry));
    }
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.batches_emitted.fetch_add(outcome.stats.batches_emitted,
                                       std::memory_order_relaxed);
    metrics_.morsels_scheduled.fetch_add(outcome.stats.morsels_scheduled,
                                         std::memory_order_relaxed);
    metrics_.morsel_steals.fetch_add(outcome.stats.morsel_steals,
                                     std::memory_order_relaxed);
    // Per-query thread fan-out high-water mark.
    uint64_t fan = outcome.stats.parallel_threads;
    uint64_t seen = metrics_.max_query_threads.load(std::memory_order_relaxed);
    while (fan > seen && !metrics_.max_query_threads.compare_exchange_weak(
                             seen, fan, std::memory_order_relaxed)) {
    }
    QueryResponse resp;
    resp.nodes = std::move(outcome.nodes);
    resp.stats = outcome.stats;
    resp.elapsed_ms = outcome.elapsed_ms;
    resp.queue_wait_ms = static_cast<double>(wait_us) / 1000.0;
    promise->set_value(std::move(resp));
  });

  if (!admitted) {
    metrics_.rejected.fetch_add(1, std::memory_order_relaxed);
    promise->set_value(Status::ResourceExhausted(
        "admission queue full (" + std::to_string(pool_.queue_capacity()) +
        " waiting requests)"));
  }
  return fut;
}

void QueryService::InvalidateMutation(const engine::AffectedPaths& affected) {
  if (affected.paths_changed) {
    // The Paths summary moved: footprints of surviving entries may name
    // retired ids or miss new ones, so every entry goes. The engine already
    // bumped its generation (orphaning the keys); Clear() frees the memory
    // now instead of letting dead entries age out of the LRU.
    metrics_.cache_entries_invalidated.fetch_add(cache_.size(),
                                                 std::memory_order_relaxed);
    InvalidateResults();
    cache_.Clear();
    return;
  }
  size_t dropped = cache_.EraseIf([&affected](const ResultCache::Entry& e) {
    if (e.full_footprint) return true;
    // Each backend reads its own store, so footprints are matched against
    // that store's Paths id space.
    const std::vector<int64_t>* space = nullptr;
    switch (static_cast<engine::Backend>(e.backend)) {
      case engine::Backend::kPpf:
        space = &affected.ppf;
        break;
      case engine::Backend::kEdgePpf:
        space = &affected.edge;
        break;
      default:
        return true;  // unattributable backend: conservative drop
    }
    return SortedIntersect(e.path_footprint, *space);
  });
  metrics_.cache_entries_invalidated.fetch_add(dropped,
                                               std::memory_order_relaxed);
}

std::string QueryService::DumpMetrics() const {
  std::string out = "-- query service --\n";
  out += "workers=" + std::to_string(pool_.worker_count()) +
         " queue_depth=" + std::to_string(pool_.queue_depth()) + "/" +
         std::to_string(pool_.queue_capacity()) +
         " cache_entries=" + std::to_string(cache_.size()) + "/" +
         std::to_string(cache_.capacity()) + "\n";
  out += metrics_.Dump();
  const engine::MutationCounters& mc = engine_.mutation_counters();
  uint64_t applied = mc.mutations_applied.load(std::memory_order_relaxed);
  if (applied > 0) {
    out += "mutations: applied=" + std::to_string(applied) +
           " dewey_renumbers=" +
           std::to_string(mc.dewey_renumbers.load(std::memory_order_relaxed)) +
           " paths_added=" +
           std::to_string(mc.paths_added.load(std::memory_order_relaxed)) +
           " paths_retired=" +
           std::to_string(mc.paths_retired.load(std::memory_order_relaxed)) +
           " plan_entries_invalidated=" +
           std::to_string(
               mc.plan_entries_invalidated.load(std::memory_order_relaxed)) +
           " result_entries_invalidated=" +
           std::to_string(metrics_.cache_entries_invalidated.load(
               std::memory_order_relaxed)) +
           "\n";
  }
  return out;
}

}  // namespace xprel::service
