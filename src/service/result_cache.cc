#include "service/result_cache.h"

namespace xprel::service {

std::shared_ptr<const ResultCache::Entry> ResultCache::Get(
    const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent fill of the same key: keep the newer entry, refresh LRU.
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  map_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace xprel::service
