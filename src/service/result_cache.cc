#include "service/result_cache.h"

namespace xprel::service {

namespace {

// Estimated resident bytes of one cached result; coarse on purpose — the
// budget wants proportionality, not exactness.
size_t ApproxEntryBytes(const std::string& key, const ResultCache::Entry& e) {
  return key.size() + e.nodes.size() * sizeof(xml::NodeId) +
         e.path_footprint.size() * sizeof(int64_t) +
         sizeof(ResultCache::Entry) + 64;
}

}  // namespace

std::shared_ptr<const ResultCache::Entry> ResultCache::Get(
    const std::string& key) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->entry;
}

void ResultCache::EvictBack() {
  if (budget_ != nullptr) budget_->Release(lru_.back().charge);
  map_.erase(lru_.back().key);
  lru_.pop_back();
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0) return;
  const size_t charge = ApproxEntryBytes(key, *entry);
  // An entry larger than the whole budget can never be funded; drop it up
  // front rather than uselessly evicting everything else first.
  if (budget_ != nullptr && budget_->cap() != 0 && charge > budget_->cap()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Concurrent fill of the same key: drop the old entry (and its
    // reservation), then insert the newer one through the normal path.
    if (budget_ != nullptr) budget_->Release(it->second->charge);
    lru_.erase(it->second);
    map_.erase(it);
  }
  bool reserved =
      budget_ == nullptr || budget_->Reserve(charge, "result cache").ok();
  while (!reserved && !lru_.empty()) {
    EvictBack();
    reserved = budget_->Reserve(charge, "result cache").ok();
  }
  if (!reserved) return;  // cannot fund this entry even with an empty cache
  lru_.push_front(LruEntry{key, std::move(entry), charge});
  map_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) EvictBack();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

size_t ResultCache::EraseIf(const std::function<bool(const Entry&)>& pred) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!pred(*it->entry)) {
      ++it;
      continue;
    }
    if (budget_ != nullptr) budget_->Release(it->charge);
    map_.erase(it->key);
    it = lru_.erase(it);
    ++dropped;
  }
  return dropped;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ != nullptr) {
    for (const LruEntry& e : lru_) budget_->Release(e.charge);
  }
  map_.clear();
  lru_.clear();
}

}  // namespace xprel::service
