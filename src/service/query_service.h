#ifndef XPREL_SERVICE_QUERY_SERVICE_H_
#define XPREL_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/trace.h"
#include "engine/engine.h"
#include "service/metrics.h"
#include "service/result_cache.h"
#include "service/thread_pool.h"

namespace xprel::durability {
class DurabilityManager;
}  // namespace xprel::durability

namespace xprel::service {

// Tuning knobs for one QueryService.
struct ServiceOptions {
  int workers = 8;              // pool threads executing queries
  size_t queue_capacity = 128;  // waiting requests before admission rejects
  // Applied to requests that don't carry their own deadline; zero = none.
  // Deadlines are measured from admission, so time spent queued counts.
  std::chrono::milliseconds default_deadline{0};
  size_t result_cache_capacity = 1024;  // entries; 0 disables the cache
  // Rows the executor enumerates between cancellation/deadline samples.
  uint32_t check_interval = 1024;
  // Service-wide memory allowance, shared by every in-flight query's
  // transient state and the result cache's entries. A query that would push
  // the total past it fails with ResourceExhausted; cache inserts evict or
  // drop instead. 0 = account but never refuse.
  size_t total_memory_cap = 0;
  // Default per-query allowance (a child of the service-wide budget);
  // QueryRequest::memory_cap overrides it per request. 0 = no per-query cap.
  size_t per_query_memory_cap = 0;
  // Intra-query parallelism: each query may fan its morsels out over the
  // pool's spare capacity (caller-runs when the pool is busy, so saturation
  // degrades to serial instead of queueing). 0 = auto (the pool width);
  // 1 = serial; N = at most N threads per query.
  int parallelism = 0;
  // Observability. trace_level 0 disables per-query tracing entirely (no
  // TraceContext allocation, no ExecTrace, no ring-buffer writes); level 1
  // records a span tree + per-step actuals for every query. Note the
  // sampling clock itself is a build-time switch (XPREL_TRACE_LEVEL) — with
  // the clock compiled out, spans still form but durations read as 0.
  int trace_level = 1;
  // A completed query slower than this (execution span, queue wait
  // excluded) — or one ending in error/timeout/cancel — is captured in the
  // slow-query log with its full span tree and per-step actuals. 0 disables
  // the latency trigger (failures are still logged).
  std::chrono::milliseconds slow_query_threshold{250};
  size_t trace_ring_capacity = 64;  // most recent traces kept for `trace last`
  size_t slow_log_capacity = 32;    // slow/failed queries kept
};

// Hand one to Submit() to be able to revoke the request later; Cancel() is
// sticky and safe from any thread. One token may cover many requests (e.g.
// everything belonging to one session).
class CancelToken {
 public:
  void Cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }
  const std::atomic<bool>* flag() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

struct QueryRequest {
  engine::Backend backend = engine::Backend::kPpf;
  std::string xpath;
  // Zero = use ServiceOptions::default_deadline.
  std::chrono::milliseconds deadline{0};
  std::shared_ptr<CancelToken> cancel;  // optional
  bool bypass_cache = false;  // force execution (and refresh the cache)
  // Per-query memory cap in bytes; zero = ServiceOptions::per_query_memory_cap.
  size_t memory_cap = 0;
};

struct QueryResponse {
  std::vector<xml::NodeId> nodes;  // document order
  rel::QueryStats stats;
  bool cache_hit = false;
  double elapsed_ms = 0;     // execution time (the cached run's, on a hit)
  double queue_wait_ms = 0;  // admission -> worker pickup; 0 on a hit
  uint64_t trace_id = 0;     // 0 when tracing is off
};

// One query's observability capture: where time went (span tree) and what
// each plan step did (per-step actuals). Recent completions sit in a bounded
// ring; slow or failed ones additionally land in the slow-query log.
struct TraceRecord {
  uint64_t trace_id = 0;
  int backend = 0;  // engine::Backend as int
  std::string xpath;
  std::string outcome;  // "ok", "cache_hit", "cancelled", "timed_out", ...
  double queue_wait_ms = 0;
  double elapsed_ms = 0;  // worker pickup -> terminal status
  std::string spans;      // TraceContext::Render() output
  std::string step_actuals;  // per-block per-step counters, one line each
};

// The concurrent serving layer in front of one XPathEngine: a fixed worker
// pool multiplexes queries from many callers onto the (thread-safe,
// plan-cached) engine, a bounded admission queue turns overload into
// explicit ResourceExhausted rejections, per-query deadlines and
// CancelTokens interrupt execution cooperatively inside the executor's
// scan/join loops, and finished node sets are memoized in an LRU result
// cache keyed by (backend, normalized xpath, document generation).
//
//   QueryService svc(*engine, {.workers = 8, .queue_capacity = 256});
//   auto fut = svc.Submit({.xpath = "//keyword"});
//   Result<QueryResponse> r = fut.get();
//
// The engine must outlive the service. Destruction drains: admitted
// requests still run (cancel them first for a fast shutdown), and every
// future obtained from Submit() is eventually fulfilled.
class QueryService {
 public:
  explicit QueryService(const engine::XPathEngine& engine,
                        ServiceOptions options = {});

  // Asynchronous entry point. Never blocks: a full queue fails the future
  // immediately with Status::ResourceExhausted, a result-cache hit fulfils
  // it on the calling thread without consuming a pool slot.
  std::future<Result<QueryResponse>> Submit(QueryRequest req);

  // Convenience: Submit + wait.
  Result<QueryResponse> Run(QueryRequest req) { return Submit(std::move(req)).get(); }

  // Drops every cached result by moving this service onto a fresh cache
  // generation. Composes with the engine's own document generation (both
  // are part of the cache key), so either side can invalidate.
  void InvalidateResults() {
    cache_generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Path-id-scoped invalidation after a document mutation (feed it the
  // AffectedPaths from dml::MutationResult). Entries whose plan footprint
  // intersects the affected path ids — or that could not be attributed —
  // are dropped; the rest keep serving. When the mutation changed the Paths
  // summary itself (paths_changed), falls back to the generation bump.
  // Dropped-entry counts land in metrics().cache_entries_invalidated.
  void InvalidateMutation(const engine::AffectedPaths& affected);

  // Attach a durability manager whose WAL/checkpoint/recovery counters
  // should ride along in DumpMetrics() and RenderPrometheus(). Not owned;
  // null detaches. The manager must outlive the service (or be detached
  // before it dies); typical wiring attaches the manager returned by
  // durability::OpenOrRecover right after constructing the service.
  void AttachDurability(const durability::DurabilityManager* manager) {
    durability_.store(manager, std::memory_order_release);
  }
  const durability::DurabilityManager* durability() const {
    return durability_.load(std::memory_order_acquire);
  }

  const MetricsRegistry& metrics() const { return metrics_; }
  const ResultCache& result_cache() const { return cache_; }
  // Service-wide memory accounting (per-query budgets chain to it).
  const MemoryBudget& memory_budget() const { return memory_; }
  ThreadPool& pool() { return pool_; }

  // Metrics counters + histograms plus the point-in-time gauges (queue
  // depth, cache size) — the text block sql_explorer prints.
  std::string DumpMetrics() const;

  // Prometheus text exposition: the registry's counters/gauges/histograms
  // plus the service's point-in-time gauges (queue depth, cache entries,
  // pool task counters). Scrape-safe while traffic is in flight.
  std::string RenderPrometheus() const;

  // Most recent completed traces, oldest first (bounded by
  // trace_ring_capacity). Empty when trace_level == 0.
  std::vector<TraceRecord> RecentTraces() const;

  // Slow/failed captures, oldest first (bounded by slow_log_capacity).
  std::vector<TraceRecord> SlowQueries() const;

  // Human-readable rendering of the most recent trace (spans + per-step
  // actuals), or a placeholder line when none has been captured.
  std::string RenderLastTrace() const;

 private:
  // Leading/trailing ASCII whitespace never changes the meaning of an
  // XPath, so it is stripped before the expression becomes a cache key.
  static std::string_view NormalizeXPath(std::string_view xpath);

  std::string CacheKey(engine::Backend backend, std::string_view xpath) const;

  // Pushes `rec` into the recent-trace ring and, when it qualifies (slow or
  // failed), the slow-query log. Thread-safe.
  void RecordTrace(TraceRecord rec, bool failed);

  const engine::XPathEngine& engine_;
  const ServiceOptions options_;
  MetricsRegistry metrics_;
  MemoryBudget memory_;  // declared before cache_: the cache charges it
  ResultCache cache_;
  std::atomic<uint64_t> cache_generation_{0};
  std::atomic<const durability::DurabilityManager*> durability_{nullptr};
  std::atomic<uint64_t> next_trace_id_{1};
  mutable std::mutex trace_mu_;
  std::deque<TraceRecord> recent_traces_;  // bounded by trace_ring_capacity
  std::deque<TraceRecord> slow_queries_;   // bounded by slow_log_capacity
  ThreadPool pool_;  // last member: workers must die before the rest
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_QUERY_SERVICE_H_
