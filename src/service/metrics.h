#ifndef XPREL_SERVICE_METRICS_H_
#define XPREL_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace xprel::service {

// A lock-free log2-bucketed latency histogram over microseconds: bucket i
// counts samples in [2^i, 2^(i+1)) µs (bucket 0 also absorbs sub-µs
// samples). Percentile queries return the upper edge of the bucket holding
// the requested quantile — at most 2x off, which is plenty for p50/p95/p99
// service dashboards, and recording stays a single relaxed fetch_add on the
// serving hot path. Edge cases are pinned down: an empty histogram reports
// every percentile as 0, and a single-sample histogram reports the
// midpoint of the sample's bucket (the upper edge would double a lone
// sample's apparent latency).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // 2^40 µs ≈ 12.7 days: effectively ∞

  void RecordUs(uint64_t us) {
    int b = 0;
    while (b + 1 < kBuckets && (uint64_t{1} << (b + 1)) <= us) ++b;
    buckets_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_us_.fetch_add(us, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Mean in µs; 0 when empty.
  double MeanUs() const {
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  // Upper bucket edge (µs) containing quantile `q` in [0, 1]; 0 when empty,
  // the bucket midpoint when exactly one sample has been recorded.
  uint64_t PercentileUs(double q) const;

  // "p50=512µs p95=2048µs p99=4096µs mean=410µs n=1234"
  std::string Summary() const;

  // Raw bucket count (relaxed read) and cumulative µs, for exporters that
  // render the distribution themselves (Prometheus cumulative buckets).
  uint64_t BucketCount(int i) const {
    return i < 0 || i >= kBuckets
               ? 0
               : buckets_[static_cast<size_t>(i)].load(
                     std::memory_order_relaxed);
  }
  uint64_t TotalUs() const {
    return total_us_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_us_{0};
};

// The query service's counters and latency distributions. Everything is an
// atomic updated with relaxed ordering — the registry observes the service,
// it never synchronizes it — so reads taken while traffic is in flight are
// individually exact but only approximately consistent with each other.
class MetricsRegistry {
 public:
  std::atomic<uint64_t> submitted{0};   // Submit() calls (incl. cache hits)
  std::atomic<uint64_t> completed{0};   // finished with an OK result
  std::atomic<uint64_t> rejected{0};    // refused by admission control
  std::atomic<uint64_t> cancelled{0};   // ended by a CancelToken
  std::atomic<uint64_t> timed_out{0};   // ended by a deadline
  std::atomic<uint64_t> errors{0};      // any other non-OK terminal status
  std::atomic<uint64_t> cache_hits{0};  // served straight from the result cache
  std::atomic<uint64_t> cache_misses{0};  // cacheable but not present
  // Queries refused by a memory budget (per-query or service-wide); counted
  // separately from `rejected`, which is admission-queue overflow.
  std::atomic<uint64_t> resource_exhausted{0};

  // Result-cache entries dropped by path-id-scoped mutation invalidation
  // (QueryService::InvalidateMutation), including generation-bump
  // fallbacks, which count every entry alive at the time.
  std::atomic<uint64_t> cache_entries_invalidated{0};

  // Cumulative batches the vectorized executor handed to result sinks
  // across all completed (uncached) queries; batches / completed ≈ batches
  // per query, a rough read on how well the batch pipeline amortizes
  // per-batch costs at the serving layer.
  std::atomic<uint64_t> batches_emitted{0};

  // Morsel-driven intra-query parallelism: Dewey-range morsels dispatched
  // across all completed queries, how many ran on a thread other than the
  // submitting worker (steals), and the largest per-query thread fan-out
  // observed since startup.
  std::atomic<uint64_t> morsels_scheduled{0};
  std::atomic<uint64_t> morsel_steals{0};
  std::atomic<uint64_t> max_query_threads{0};

  // Gauges sampled from the service-wide memory budget after each query:
  // bytes currently reserved and the high-water mark since startup.
  std::atomic<uint64_t> mem_used{0};
  std::atomic<uint64_t> mem_peak{0};

  LatencyHistogram queue_wait;  // admission -> worker pickup
  LatencyHistogram latency;     // worker pickup -> terminal status

  // Per-backend × per-outcome terminal counters, the labeled series behind
  // xprel_queries_total{backend=...,outcome=...}. Backend indices follow
  // engine::Backend's enum order (the registry deliberately doesn't include
  // the engine header; RenderPrometheus names them positionally).
  enum class Outcome {
    kOk = 0,
    kCacheHit,
    kCancelled,
    kTimedOut,
    kResourceExhausted,
    kError,
    kRejected,
  };
  static constexpr int kOutcomes = 7;
  static constexpr int kMaxBackends = 8;
  std::array<std::array<std::atomic<uint64_t>, kOutcomes>, kMaxBackends>
      by_backend_outcome{};

  void RecordOutcome(int backend, Outcome outcome) {
    if (backend < 0 || backend >= kMaxBackends) return;
    by_backend_outcome[static_cast<size_t>(backend)]
                      [static_cast<size_t>(outcome)]
                          .fetch_add(1, std::memory_order_relaxed);
  }

  double CacheHitRate() const {
    uint64_t h = cache_hits.load(std::memory_order_relaxed);
    uint64_t m = cache_misses.load(std::memory_order_relaxed);
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }

  // Multi-line human-readable dump of every counter and histogram.
  std::string Dump() const;

  // Prometheus text exposition (version 0.0.4): every counter as
  // xprel_*_total, the memory gauges, the labeled per-backend/per-outcome
  // series, and both histograms as cumulative le-buckets with _sum/_count.
  // Buckets above the highest populated one are collapsed into +Inf.
  std::string RenderPrometheus() const;
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_METRICS_H_
