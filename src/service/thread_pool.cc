#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace xprel::service {

ThreadPool::ThreadPool(int workers, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  int n = std::max(1, workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    if (queue_capacity_ != 0 && queue_.size() >= queue_capacity_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::TrySubmitHelper(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    helper_queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    bool helper = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() {
        return stopping_ || !queue_.empty() || !helper_queue_.empty();
      });
      if (!helper_queue_.empty()) {
        // Helpers first: a running query's morsels finish before new work
        // starts, which bounds per-query latency under load.
        task = std::move(helper_queue_.front());
        helper_queue_.pop_front();
        helper = true;
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stopping_ and both lanes fully drained
      }
    }
    task();
    (helper ? helper_tasks_run_ : tasks_run_)
        .fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace xprel::service
