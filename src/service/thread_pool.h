#ifndef XPREL_SERVICE_THREAD_POOL_H_
#define XPREL_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/task_runner.h"

namespace xprel::service {

// A fixed-size worker pool over a bounded FIFO work queue — the execution
// substrate of the query service. Admission control happens at submission:
// TrySubmit refuses (returns false) once `queue_capacity` tasks are waiting,
// so overload surfaces as backpressure at the caller instead of unbounded
// queue growth. Destruction drains: tasks already admitted still run before
// the workers join, so every admitted promise gets fulfilled.
//
// A second, unbounded "helper" lane carries intra-query morsels. It is
// separate from the admission queue on purpose: morsels spawned by a query
// that is already running must never count against (or be refused by) the
// admission capacity meant for whole queries, and workers drain helpers
// first so a query's own shards jump ahead of queued new work. Helper
// submission still refuses during shutdown — callers fall back to running
// the task inline (see TaskRunner's caller-runs contract), which is also
// what keeps nested submission from a pooled thread deadlock-free.
class ThreadPool {
 public:
  // `workers` is clamped to at least 1. `queue_capacity` bounds the number
  // of tasks waiting to run (tasks being executed don't count); 0 means
  // unbounded.
  explicit ThreadPool(int workers, size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` unless the queue is at capacity or the pool is shutting
  // down; returns whether the task was admitted.
  bool TrySubmit(std::function<void()> task);

  // Enqueues on the helper lane (no capacity bound; drained before the main
  // queue); refuses only during shutdown.
  bool TrySubmitHelper(std::function<void()> task);

  // Caller-runs fallback: admit `task` to the helper lane, or execute it on
  // the calling thread if the pool refuses. Either way the task runs exactly
  // once before or concurrently with this call returning work to the caller,
  // so a pool thread submitting nested tasks can never deadlock — the worst
  // case is serial execution on the submitter.
  void TrySubmitOrRun(std::function<void()> task) {
    if (!TrySubmitHelper(task)) task();
  }

  // Tasks admitted but not yet picked up by a worker (main lane only; the
  // helper lane is not part of admission control).
  size_t queue_depth() const;

  int worker_count() const { return static_cast<int>(workers_.size()); }
  size_t queue_capacity() const { return queue_capacity_; }

  // TaskRunner view of the helper lane, for handing to rel::ExecControl.
  TaskRunner& intra_runner() { return intra_; }

  // Monotonic counters of tasks a worker has finished running, per lane —
  // the pool-utilization signal behind the Prometheus export. Relaxed reads.
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  uint64_t helper_tasks_run() const {
    return helper_tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  // Adapts the helper lane to the executor-facing TaskRunner interface.
  class IntraRunner : public TaskRunner {
   public:
    explicit IntraRunner(ThreadPool* pool) : pool_(pool) {}
    bool TrySubmit(std::function<void()> task) override {
      return pool_->TrySubmitHelper(std::move(task));
    }
    int width() const override { return pool_->worker_count(); }

   private:
    ThreadPool* pool_;
  };

  void WorkerLoop();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> helper_queue_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> helper_tasks_run_{0};
  IntraRunner intra_{this};
  std::vector<std::thread> workers_;
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_THREAD_POOL_H_
