#ifndef XPREL_SERVICE_THREAD_POOL_H_
#define XPREL_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xprel::service {

// A fixed-size worker pool over a bounded FIFO work queue — the execution
// substrate of the query service. Admission control happens at submission:
// TrySubmit refuses (returns false) once `queue_capacity` tasks are waiting,
// so overload surfaces as backpressure at the caller instead of unbounded
// queue growth. Destruction drains: tasks already admitted still run before
// the workers join, so every admitted promise gets fulfilled.
class ThreadPool {
 public:
  // `workers` is clamped to at least 1. `queue_capacity` bounds the number
  // of tasks waiting to run (tasks being executed don't count); 0 means
  // unbounded.
  explicit ThreadPool(int workers, size_t queue_capacity = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task` unless the queue is at capacity or the pool is shutting
  // down; returns whether the task was admitted.
  bool TrySubmit(std::function<void()> task);

  // Tasks admitted but not yet picked up by a worker.
  size_t queue_depth() const;

  int worker_count() const { return static_cast<int>(workers_.size()); }
  size_t queue_capacity() const { return queue_capacity_; }

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xprel::service

#endif  // XPREL_SERVICE_THREAD_POOL_H_
