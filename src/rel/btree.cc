#include "rel/btree.h"

#include <algorithm>
#include <cassert>

namespace xprel::rel {

// Node layout. Leaves hold sorted (key, row) entries and a next-leaf link;
// internal nodes hold sorted separator keys and children, with
// children[i] covering keys < keys[i] and children.back() the rest.
struct BTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BTree::LeafNode : BTree::Node {
  LeafNode() : Node(true) {}
  std::vector<std::string> keys;
  std::vector<RowId> rows;
  LeafNode* next = nullptr;
};

struct BTree::InternalNode : BTree::Node {
  InternalNode() : Node(false) {}
  std::vector<std::string> keys;
  std::vector<std::unique_ptr<Node>> children;
};

BTree::BTree() : root_(std::make_unique<LeafNode>()) {}
BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

namespace {

// First position whose key is >= `key` (lower bound).
size_t LowerBound(const std::vector<std::string>& keys, std::string_view key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key,
                       [](const std::string& a, std::string_view b) {
                         return std::string_view(a) < b;
                       }) -
      keys.begin());
}

// First position whose key is > `key` (upper bound). Used on insert so that
// duplicate keys keep insertion order.
size_t UpperBound(const std::vector<std::string>& keys, std::string_view key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key,
                       [](std::string_view a, const std::string& b) {
                         return a < std::string_view(b);
                       }) -
      keys.begin());
}

}  // namespace

BTree::LeafNode* BTree::FindLeaf(std::string_view key) const {
  // Search descent uses lower-bound: with duplicate keys, a leaf split can
  // leave entries equal to the separator on its left sibling, so the
  // leftmost candidate leaf is the child at the first separator >= key;
  // later duplicates are reached through the leaf links.
  Node* node = root_.get();
  while (!node->is_leaf) {
    auto* in = static_cast<InternalNode*>(node);
    size_t i = LowerBound(in->keys, key);
    node = in->children[i].get();
  }
  return static_cast<LeafNode*>(node);
}

void BTree::InsertIntoLeaf(LeafNode* leaf, std::string_view key, RowId row,
                           std::string* split_key, Node** split_node) {
  size_t pos = UpperBound(leaf->keys, key);
  leaf->keys.insert(leaf->keys.begin() + static_cast<ptrdiff_t>(pos),
                    std::string(key));
  leaf->rows.insert(leaf->rows.begin() + static_cast<ptrdiff_t>(pos), row);
  if (leaf->keys.size() <= kLeafCapacity) {
    *split_node = nullptr;
    return;
  }
  // Split in half; the right sibling's first key becomes the separator.
  auto right = std::make_unique<LeafNode>();
  size_t mid = leaf->keys.size() / 2;
  right->keys.assign(std::make_move_iterator(leaf->keys.begin() + mid),
                     std::make_move_iterator(leaf->keys.end()));
  right->rows.assign(leaf->rows.begin() + static_cast<ptrdiff_t>(mid),
                     leaf->rows.end());
  leaf->keys.resize(mid);
  leaf->rows.resize(mid);
  right->next = leaf->next;
  LeafNode* right_raw = right.get();
  leaf->next = right_raw;
  *split_key = right_raw->keys.front();
  *split_node = right.release();
}

void BTree::InsertIntoInternal(InternalNode* node, std::string_view key,
                               RowId row, std::string* split_key,
                               Node** split_node) {
  size_t i = UpperBound(node->keys, key);
  Node* child = node->children[i].get();
  std::string child_split_key;
  Node* child_split = nullptr;
  if (child->is_leaf) {
    InsertIntoLeaf(static_cast<LeafNode*>(child), key, row, &child_split_key,
                   &child_split);
  } else {
    InsertIntoInternal(static_cast<InternalNode*>(child), key, row,
                       &child_split_key, &child_split);
  }
  *split_node = nullptr;
  if (child_split == nullptr) return;

  node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(i),
                    std::move(child_split_key));
  node->children.insert(node->children.begin() + static_cast<ptrdiff_t>(i) + 1,
                        std::unique_ptr<Node>(child_split));
  if (node->keys.size() <= kInternalCapacity) return;

  // Split: middle key moves up.
  auto right = std::make_unique<InternalNode>();
  size_t mid = node->keys.size() / 2;
  *split_key = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() +
                                             static_cast<ptrdiff_t>(mid) + 1),
                     std::make_move_iterator(node->keys.end()));
  for (size_t c = mid + 1; c < node->children.size(); ++c) {
    right->children.push_back(std::move(node->children[c]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  *split_node = right.release();
}

void BTree::Insert(std::string_view key, RowId row) {
  std::string split_key;
  Node* split = nullptr;
  if (root_->is_leaf) {
    InsertIntoLeaf(static_cast<LeafNode*>(root_.get()), key, row, &split_key,
                   &split);
  } else {
    InsertIntoInternal(static_cast<InternalNode*>(root_.get()), key, row,
                       &split_key, &split);
  }
  if (split != nullptr) {
    auto new_root = std::make_unique<InternalNode>();
    new_root->keys.push_back(std::move(split_key));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::unique_ptr<Node>(split));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
}

std::string_view BTree::Iterator::key() const {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->keys[index_];
}

RowId BTree::Iterator::row() const {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->rows[index_];
}

void BTree::Iterator::CheckEnd() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  if (leaf == nullptr) return;
  if (index_ >= leaf->keys.size()) {
    // Advance to the next non-empty leaf.
    const LeafNode* next = leaf->next;
    while (next != nullptr && next->keys.empty()) next = next->next;
    leaf_ = next;
    index_ = 0;
    if (leaf_ == nullptr) return;
    leaf = static_cast<const LeafNode*>(leaf_);
  }
  if (!unbounded_ && std::string_view(leaf->keys[index_]) >= end_) {
    leaf_ = nullptr;
  }
}

void BTree::Iterator::Next() {
  ++index_;
  CheckEnd();
}

bool BTree::Delete(std::string_view key, RowId row) {
  // Duplicates of one key can span leaves (splits leave equal keys on both
  // sides of a separator), so walk the leaf links from the leftmost
  // candidate until the key range ends.
  LeafNode* leaf = FindLeaf(key);
  size_t i = LowerBound(leaf->keys, key);
  while (leaf != nullptr) {
    if (i >= leaf->keys.size()) {
      leaf = leaf->next;
      i = 0;
      continue;
    }
    if (std::string_view(leaf->keys[i]) != key) return false;
    if (leaf->rows[i] == row) {
      leaf->keys.erase(leaf->keys.begin() + static_cast<ptrdiff_t>(i));
      leaf->rows.erase(leaf->rows.begin() + static_cast<ptrdiff_t>(i));
      --size_;
      return true;
    }
    ++i;
  }
  return false;
}

BTree::Iterator BTree::Scan(std::string_view lower,
                            std::string_view upper) const {
  Iterator it;
  LeafNode* leaf = FindLeaf(lower);
  it.leaf_ = leaf;
  it.index_ = LowerBound(leaf->keys, lower);
  it.end_ = upper;
  it.unbounded_ = false;
  it.CheckEnd();
  return it;
}

BTree::Iterator BTree::ScanFrom(std::string_view lower) const {
  Iterator it;
  LeafNode* leaf = FindLeaf(lower);
  it.leaf_ = leaf;
  it.index_ = LowerBound(leaf->keys, lower);
  it.unbounded_ = true;
  it.CheckEnd();
  return it;
}

BTree::Iterator BTree::ScanAll() const {
  Iterator it;
  Node* node = root_.get();
  while (!node->is_leaf) {
    node = static_cast<InternalNode*>(node)->children.front().get();
  }
  it.leaf_ = static_cast<LeafNode*>(node);
  it.index_ = 0;
  it.unbounded_ = true;
  it.CheckEnd();
  return it;
}

std::vector<RowId> BTree::Lookup(std::string_view key) const {
  std::vector<RowId> out;
  LeafNode* leaf = FindLeaf(key);
  size_t i = LowerBound(leaf->keys, key);
  Iterator it;
  it.leaf_ = leaf;
  it.index_ = i;
  it.unbounded_ = true;
  it.CheckEnd();
  while (it.Valid() && it.key() == key) {
    out.push_back(it.row());
    it.Next();
  }
  return out;
}

bool BTree::CheckInvariants() const {
  // Walk the tree checking key ordering within nodes and across separators.
  struct Walker {
    bool ok = true;
    size_t counted = 0;
    const std::string* last_key = nullptr;

    void Visit(const Node* node, const std::string* lo, const std::string* hi) {
      if (!ok) return;
      if (node->is_leaf) {
        const auto* leaf = static_cast<const LeafNode*>(node);
        for (const std::string& k : leaf->keys) {
          if (lo && k < *lo) ok = false;
          // Duplicates may equal the upper separator (see FindLeaf).
          if (hi && k > *hi) ok = false;
          if (last_key && k < *last_key) ok = false;
          last_key = &k;
          ++counted;
        }
        return;
      }
      const auto* in = static_cast<const InternalNode*>(node);
      if (in->children.size() != in->keys.size() + 1) {
        ok = false;
        return;
      }
      for (size_t i = 0; i + 1 < in->keys.size(); ++i) {
        if (in->keys[i + 1] < in->keys[i]) ok = false;
      }
      for (size_t i = 0; i < in->children.size(); ++i) {
        const std::string* child_lo = (i == 0) ? lo : &in->keys[i - 1];
        const std::string* child_hi = (i == in->keys.size()) ? hi : &in->keys[i];
        Visit(in->children[i].get(), child_lo, child_hi);
      }
    }
  };
  Walker w;
  w.Visit(root_.get(), nullptr, nullptr);
  return w.ok && w.counted == size_;
}

}  // namespace xprel::rel
