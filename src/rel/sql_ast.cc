#include "rel/sql_ast.h"

#include <cassert>
#include <sstream>

namespace xprel::rel {

SqlExprPtr Col(std::string alias, std::string column) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kColumn;
  e->table_alias = std::move(alias);
  e->column = std::move(column);
  return e;
}

SqlExprPtr Lit(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr LitStr(std::string s) { return Lit(Value::Str(std::move(s))); }
SqlExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
SqlExprPtr LitBytes(std::string bytes) {
  return Lit(Value::Bytes(std::move(bytes)));
}

SqlExprPtr Bin(SqlExpr::BinOp op, SqlExprPtr a, SqlExprPtr b) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kBinary;
  e->op = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

SqlExprPtr And(SqlExprPtr a, SqlExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Bin(SqlExpr::BinOp::kAnd, std::move(a), std::move(b));
}

SqlExprPtr Or(SqlExprPtr a, SqlExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Bin(SqlExpr::BinOp::kOr, std::move(a), std::move(b));
}

SqlExprPtr Not(SqlExprPtr a) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kNot;
  e->args.push_back(std::move(a));
  return e;
}

SqlExprPtr Eq(SqlExprPtr a, SqlExprPtr b) {
  return Bin(SqlExpr::BinOp::kEq, std::move(a), std::move(b));
}

SqlExprPtr Between(SqlExprPtr v, SqlExprPtr lo, SqlExprPtr hi) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kBetween;
  e->args.push_back(std::move(v));
  e->args.push_back(std::move(lo));
  e->args.push_back(std::move(hi));
  return e;
}

SqlExprPtr Concat(SqlExprPtr a, SqlExprPtr b) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kConcat;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

SqlExprPtr Exists(std::unique_ptr<SelectStmt> subquery) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kExists;
  e->subquery = std::move(subquery);
  return e;
}

SqlExprPtr RegexpLike(SqlExprPtr text, std::string pattern) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kRegexpLike;
  e->args.push_back(std::move(text));
  e->args.push_back(LitStr(std::move(pattern)));
  return e;
}

SqlExprPtr Length(SqlExprPtr a) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kLength;
  e->args.push_back(std::move(a));
  return e;
}

SqlExprPtr Add(SqlExprPtr a, SqlExprPtr b) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExpr::Kind::kAdd;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

SqlExprPtr CloneSqlExpr(const SqlExpr& src) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = src.kind;
  e->op = src.op;
  e->table_alias = src.table_alias;
  e->column = src.column;
  e->literal = src.literal;
  for (const SqlExprPtr& a : src.args) e->args.push_back(CloneSqlExpr(*a));
  if (src.subquery != nullptr) e->subquery = CloneSelect(*src.subquery);
  return e;
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& src) {
  auto s = std::make_unique<SelectStmt>();
  s->distinct = src.distinct;
  for (const SelectItem& it : src.select) {
    s->select.push_back({CloneSqlExpr(*it.expr), it.label});
  }
  s->from = src.from;
  if (src.where != nullptr) s->where = CloneSqlExpr(*src.where);
  for (const OrderByItem& ob : src.order_by) {
    s->order_by.push_back({CloneSqlExpr(*ob.expr), ob.ascending});
  }
  return s;
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

namespace {

const char* BinOpSql(SqlExpr::BinOp op) {
  switch (op) {
    case SqlExpr::BinOp::kAnd:
      return "AND";
    case SqlExpr::BinOp::kOr:
      return "OR";
    case SqlExpr::BinOp::kEq:
      return "=";
    case SqlExpr::BinOp::kNe:
      return "<>";
    case SqlExpr::BinOp::kLt:
      return "<";
    case SqlExpr::BinOp::kLe:
      return "<=";
    case SqlExpr::BinOp::kGt:
      return ">";
    case SqlExpr::BinOp::kGe:
      return ">=";
  }
  return "?";
}

// Precedence for minimal parenthesization: OR < AND < NOT < comparisons.
int Precedence(const SqlExpr& e) {
  if (e.kind == SqlExpr::Kind::kBinary) {
    if (e.op == SqlExpr::BinOp::kOr) return 1;
    if (e.op == SqlExpr::BinOp::kAnd) return 2;
    return 4;
  }
  if (e.kind == SqlExpr::Kind::kNot) return 3;
  return 9;
}

void Print(const SqlExpr& e, int parent_prec, std::string& out);

void PrintChild(const SqlExpr& e, int parent_prec, std::string& out) {
  bool need_parens = Precedence(e) < parent_prec;
  if (need_parens) out += "(";
  Print(e, need_parens ? 0 : parent_prec, out);
  if (need_parens) out += ")";
}

void Print(const SqlExpr& e, int parent_prec, std::string& out) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      if (!e.table_alias.empty()) {
        out += e.table_alias;
        out += ".";
      }
      out += e.column;
      return;
    case SqlExpr::Kind::kLiteral:
      out += e.literal.ToSqlLiteral();
      return;
    case SqlExpr::Kind::kBinary: {
      int prec = Precedence(e);
      PrintChild(*e.args[0], prec, out);
      out += " ";
      out += BinOpSql(e.op);
      out += " ";
      PrintChild(*e.args[1], prec + 1, out);
      return;
    }
    case SqlExpr::Kind::kNot:
      out += "NOT ";
      PrintChild(*e.args[0], 4, out);
      return;
    case SqlExpr::Kind::kBetween:
      PrintChild(*e.args[0], 5, out);
      out += " BETWEEN ";
      PrintChild(*e.args[1], 5, out);
      out += " AND ";
      PrintChild(*e.args[2], 5, out);
      return;
    case SqlExpr::Kind::kConcat:
      PrintChild(*e.args[0], 6, out);
      out += " || ";
      PrintChild(*e.args[1], 6, out);
      return;
    case SqlExpr::Kind::kExists:
      out += "EXISTS (";
      out += SqlToString(*e.subquery);
      out += ")";
      return;
    case SqlExpr::Kind::kRegexpLike:
      out += "REGEXP_LIKE(";
      Print(*e.args[0], 0, out);
      out += ", ";
      Print(*e.args[1], 0, out);
      out += ")";
      return;
    case SqlExpr::Kind::kLike:
      PrintChild(*e.args[0], 5, out);
      out += " LIKE ";
      PrintChild(*e.args[1], 5, out);
      return;
    case SqlExpr::Kind::kIsNull:
      PrintChild(*e.args[0], 5, out);
      out += " IS NULL";
      return;
    case SqlExpr::Kind::kLength:
      out += "LENGTH(";
      Print(*e.args[0], 0, out);
      out += ")";
      return;
    case SqlExpr::Kind::kAdd:
      PrintChild(*e.args[0], 6, out);
      out += " + ";
      PrintChild(*e.args[1], 6, out);
      return;
  }
  (void)parent_prec;
}

}  // namespace

std::string SqlToString(const SqlExpr& e) {
  std::string out;
  Print(e, 0, out);
  return out;
}

std::string SqlToString(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  if (s.select.empty()) {
    out += "NULL";
  } else {
    for (size_t i = 0; i < s.select.size(); ++i) {
      if (i > 0) out += ", ";
      out += SqlToString(*s.select[i].expr);
      if (!s.select[i].label.empty()) {
        out += " AS " + s.select[i].label;
      }
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < s.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += s.from[i].table;
    if (!s.from[i].alias.empty() && s.from[i].alias != s.from[i].table) {
      out += " " + s.from[i].alias;
    }
  }
  if (s.where != nullptr) {
    out += " WHERE ";
    out += SqlToString(*s.where);
  }
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += SqlToString(*s.order_by[i].expr);
      if (!s.order_by[i].ascending) out += " DESC";
    }
  }
  return out;
}

std::string SqlToString(const SqlQuery& q) {
  std::string out;
  for (size_t i = 0; i < q.selects.size(); ++i) {
    if (i > 0) out += "\nUNION\n";
    out += SqlToString(*q.selects[i]);
  }
  return out;
}

}  // namespace xprel::rel
