#include "rel/value.h"

#include <cmath>
#include <functional>

#include "common/string_util.h"

namespace xprel::rel {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
    case ValueType::kBytes:
      return "RAW";
  }
  return "?";
}

std::optional<double> Value::ToNumber() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      return ParseDouble(AsString());
    default:
      return std::nullopt;
  }
}

std::optional<std::string> Value::ToText() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      double intpart = 0;
      if (std::modf(AsDouble(), &intpart) == 0.0 &&
          std::abs(AsDouble()) < 1e15) {
        return std::to_string(static_cast<long long>(intpart));
      }
      return std::to_string(AsDouble());
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kBytes:
      return AsBytes();
    case ValueType::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return *ToText();
    case ValueType::kString: {
      // SQL-style quote doubling.
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
    case ValueType::kBytes:
      return "HEXTORAW('" + HexEncode(AsBytes()) + "')";
  }
  return "?";
}

std::string Value::ToDebugString() const {
  if (type() == ValueType::kBytes) return "0x" + HexEncode(AsBytes());
  if (is_null()) return "NULL";
  return *ToText();
}

namespace {

// boost-style hash combine.
inline size_t Combine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

}  // namespace

size_t ValueHash::operator()(const Value& v) const {
  size_t seed = static_cast<size_t>(v.type()) * 0x9e3779b97f4a7c15ull;
  switch (v.type()) {
    case ValueType::kNull:
      return seed;
    case ValueType::kInt64:
      return Combine(seed, std::hash<int64_t>{}(v.AsInt()));
    case ValueType::kDouble:
      return Combine(seed, std::hash<double>{}(v.AsDouble()));
    case ValueType::kString:
    case ValueType::kBytes:
      return Combine(seed, std::hash<std::string>{}(v.AsStringLike()));
  }
  return seed;
}

size_t RowHash::operator()(const Row& r) const {
  size_t seed = r.size();
  ValueHash h;
  for (const Value& v : r) seed = Combine(seed, h(v));
  return seed;
}

bool operator<(const Value& a, const Value& b) {
  if (a.rep_.index() != b.rep_.index()) {
    return a.rep_.index() < b.rep_.index();
  }
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return a.AsInt() < b.AsInt();
    case ValueType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case ValueType::kString:
      return a.AsString() < b.AsString();
    case ValueType::kBytes:
      return a.AsBytes() < b.AsBytes();
  }
  return false;
}

}  // namespace xprel::rel
