#ifndef XPREL_REL_KEY_CODEC_H_
#define XPREL_REL_KEY_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "rel/value.h"

namespace xprel::rel {

// Order-preserving key encoding for composite B+-tree keys: for any two
// tuples of values, memcmp(Encode(a), Encode(b)) has the same sign as the
// column-wise comparison of a and b (nulls first). This lets the B+-tree
// store plain byte strings and lets a range on a *prefix* of a composite
// index — e.g. the (dewey_pos, path_id) index scanned by a Dewey BETWEEN —
// be expressed as one contiguous key range.
//
// Layout per value: a 1-byte type tag (null sorts lowest), then
//   int64  : 8 bytes big-endian with the sign bit flipped
//   double : IEEE-754 bits, sign-flipped for positives / fully inverted for
//            negatives (standard total-order trick)
//   string/bytes : payload with 0x00 escaped as (0x00 0xFF), terminated by
//            (0x00 0x01) so that prefixes sort before extensions
void AppendEncodedValue(const Value& v, std::string& out);

// Appends the encoding of a kBytes value with payload `bytes` — identical to
// AppendEncodedValue(Value::Bytes(...), out) without materializing the Value.
// The executor's Dewey prefix probes encode each prefix of a bound position
// this way, reusing one buffer across probes.
void AppendEncodedBytes(std::string_view bytes, std::string& out);

// Encodes a full or prefix key.
std::string EncodeKey(const std::vector<Value>& values);

// Smallest encoded key having `values` as its column prefix (== EncodeKey).
std::string EncodeKeyPrefixLowerBound(const std::vector<Value>& values);

// Strict upper bound for all encoded keys having `values` as a column
// prefix: EncodeKey(values) with the final terminator bumped so that every
// extension sorts below it.
std::string EncodeKeyPrefixUpperBound(const std::vector<Value>& values);

// Allocation-free variants: clear `out` and write the bound into it, so hot
// call sites can reuse one buffer across probes.
void EncodeKeyPrefixLowerBoundTo(const std::vector<Value>& values,
                                 std::string& out);
void EncodeKeyPrefixUpperBoundTo(const std::vector<Value>& values,
                                 std::string& out);

// Turns an encoded lower bound (in place) into the matching strict prefix
// upper bound.
inline void BumpToPrefixUpperBound(std::string& key) { key.push_back('\xFF'); }

}  // namespace xprel::rel

#endif  // XPREL_REL_KEY_CODEC_H_
