#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "rel/key_codec.h"
#include "rel/query.h"

namespace xprel::rel {

namespace {

// ---------------------------------------------------------------------------
// Value semantics: SQL comparison with implicit numeric coercion.
// ---------------------------------------------------------------------------

bool IsStringLike(const Value& v) {
  return v.type() == ValueType::kString || v.type() == ValueType::kBytes;
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble;
}

// Three-valued comparison: nullopt = unknown (SQL NULL semantics, and also
// "string does not parse as a number" in a numeric comparison).
std::optional<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (IsStringLike(a) && IsStringLike(b)) {
    int c = a.AsStringLike().compare(b.AsStringLike());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (IsNumeric(a) || IsNumeric(b)) {
    auto x = a.ToNumber();
    auto y = b.ToNumber();
    if (!x || !y) return std::nullopt;
    return *x < *y ? -1 : (*x > *y ? 1 : 0);
  }
  return std::nullopt;
}

// SQL LIKE with % and _ wildcards.
bool MatchLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// Truth of a boolean Value (null = unknown).
enum class Truth { kTrue, kFalse, kUnknown };

Truth TruthOf(const Value& v) {
  if (v.is_null()) return Truth::kUnknown;
  if (v.type() == ValueType::kInt64) {
    return v.AsInt() != 0 ? Truth::kTrue : Truth::kFalse;
  }
  return Truth::kFalse;
}

// ---------------------------------------------------------------------------
// Evaluation context
// ---------------------------------------------------------------------------

struct ExecContext {
  QueryStats* stats = nullptr;
  // Lazily built hash tables for kHashProbe steps, keyed by step address.
  std::map<const AccessStep*, std::map<std::string, std::vector<RowId>>>
      hash_tables;
};

Value EvalExpr(const Plan& plan, const SqlExpr& e, const Row& row,
               ExecContext& ctx);

bool ExecExists(const Plan& subplan, const Row& outer_row, ExecContext& ctx);

Value EvalExpr(const Plan& plan, const SqlExpr& e, const Row& row,
               ExecContext& ctx) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn: {
      int slot = plan.layout.SlotOf(e.table_alias, e.column);
      assert(slot >= 0 && "unresolvable column; planner should have caught");
      return row[static_cast<size_t>(slot)];
    }
    case SqlExpr::Kind::kLiteral:
      return e.literal;
    case SqlExpr::Kind::kBinary: {
      if (e.op == SqlExpr::BinOp::kAnd || e.op == SqlExpr::BinOp::kOr) {
        Truth a = TruthOf(EvalExpr(plan, *e.args[0], row, ctx));
        // Short-circuit.
        if (e.op == SqlExpr::BinOp::kAnd && a == Truth::kFalse) {
          return Value::Int(0);
        }
        if (e.op == SqlExpr::BinOp::kOr && a == Truth::kTrue) {
          return Value::Int(1);
        }
        Truth b = TruthOf(EvalExpr(plan, *e.args[1], row, ctx));
        if (e.op == SqlExpr::BinOp::kAnd) {
          if (b == Truth::kFalse) return Value::Int(0);
          if (a == Truth::kTrue && b == Truth::kTrue) return Value::Int(1);
          return Value::Null();
        }
        if (b == Truth::kTrue) return Value::Int(1);
        if (a == Truth::kFalse && b == Truth::kFalse) return Value::Int(0);
        return Value::Null();
      }
      Value a = EvalExpr(plan, *e.args[0], row, ctx);
      Value b = EvalExpr(plan, *e.args[1], row, ctx);
      auto cmp = CompareValues(a, b);
      if (!cmp) return Value::Null();
      bool r = false;
      switch (e.op) {
        case SqlExpr::BinOp::kEq:
          r = *cmp == 0;
          break;
        case SqlExpr::BinOp::kNe:
          r = *cmp != 0;
          break;
        case SqlExpr::BinOp::kLt:
          r = *cmp < 0;
          break;
        case SqlExpr::BinOp::kLe:
          r = *cmp <= 0;
          break;
        case SqlExpr::BinOp::kGt:
          r = *cmp > 0;
          break;
        case SqlExpr::BinOp::kGe:
          r = *cmp >= 0;
          break;
        default:
          return Value::Null();
      }
      return Value::Int(r ? 1 : 0);
    }
    case SqlExpr::Kind::kNot: {
      Truth t = TruthOf(EvalExpr(plan, *e.args[0], row, ctx));
      if (t == Truth::kUnknown) return Value::Null();
      return Value::Int(t == Truth::kFalse ? 1 : 0);
    }
    case SqlExpr::Kind::kBetween: {
      Value v = EvalExpr(plan, *e.args[0], row, ctx);
      Value lo = EvalExpr(plan, *e.args[1], row, ctx);
      Value hi = EvalExpr(plan, *e.args[2], row, ctx);
      auto c1 = CompareValues(v, lo);
      auto c2 = CompareValues(v, hi);
      if (!c1 || !c2) return Value::Null();
      return Value::Int((*c1 >= 0 && *c2 <= 0) ? 1 : 0);
    }
    case SqlExpr::Kind::kConcat: {
      Value a = EvalExpr(plan, *e.args[0], row, ctx);
      Value b = EvalExpr(plan, *e.args[1], row, ctx);
      if (a.is_null() || b.is_null()) return Value::Null();
      auto at = a.ToText();
      auto bt = b.ToText();
      if (!at || !bt) return Value::Null();
      bool bytes = a.type() == ValueType::kBytes || b.type() == ValueType::kBytes;
      std::string s = *at + *bt;
      return bytes ? Value::Bytes(std::move(s)) : Value::Str(std::move(s));
    }
    case SqlExpr::Kind::kExists: {
      auto it = plan.subplans.find(&e);
      assert(it != plan.subplans.end());
      if (ctx.stats != nullptr) ++ctx.stats->subquery_evals;
      return Value::Int(ExecExists(*it->second, row, ctx) ? 1 : 0);
    }
    case SqlExpr::Kind::kRegexpLike: {
      Value text = EvalExpr(plan, *e.args[0], row, ctx);
      if (text.is_null()) return Value::Null();
      auto t = text.ToText();
      if (!t) return Value::Null();
      auto it = plan.regexes.find(&e);
      assert(it != plan.regexes.end());
      return Value::Int(it->second.Matches(*t) ? 1 : 0);
    }
    case SqlExpr::Kind::kLike: {
      Value text = EvalExpr(plan, *e.args[0], row, ctx);
      Value pattern = EvalExpr(plan, *e.args[1], row, ctx);
      auto t = text.ToText();
      auto p = pattern.ToText();
      if (!t || !p) return Value::Null();
      return Value::Int(MatchLike(*t, *p) ? 1 : 0);
    }
    case SqlExpr::Kind::kIsNull: {
      Value v = EvalExpr(plan, *e.args[0], row, ctx);
      return Value::Int(v.is_null() ? 1 : 0);
    }
    case SqlExpr::Kind::kLength: {
      Value v = EvalExpr(plan, *e.args[0], row, ctx);
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kString || v.type() == ValueType::kBytes) {
        return Value::Int(static_cast<int64_t>(v.AsStringLike().size()));
      }
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Int(static_cast<int64_t>(t->size()));
    }
    case SqlExpr::Kind::kAdd: {
      Value a = EvalExpr(plan, *e.args[0], row, ctx);
      Value b = EvalExpr(plan, *e.args[1], row, ctx);
      if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
        return Value::Int(a.AsInt() + b.AsInt());
      }
      auto x = a.ToNumber();
      auto y = b.ToNumber();
      if (!x || !y) return Value::Null();
      return Value::Real(*x + *y);
    }
  }
  return Value::Null();
}

// Coerces `v` to the storage type of a column so encoded index keys compare
// correctly (e.g. a concatenated Dewey bound arrives as kBytes for a kBytes
// column; an int literal probes an int column).
Value CoerceForColumn(const Value& v, ValueType target) {
  if (v.is_null() || v.type() == target) return v;
  switch (target) {
    case ValueType::kInt64: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Int(static_cast<int64_t>(*n));
    }
    case ValueType::kDouble: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Real(*n);
    }
    case ValueType::kString: {
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Str(std::move(*t));
    }
    case ValueType::kBytes: {
      if (IsStringLike(v)) return Value::Bytes(v.AsStringLike());
      return Value::Null();
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// ---------------------------------------------------------------------------
// Step enumeration
// ---------------------------------------------------------------------------

// Copies table row `rid` into the binding row at the alias's offset.
void BindRow(const Table& table, RowId rid, int offset, Row& row) {
  const Row& src = table.row(rid);
  for (size_t c = 0; c < src.size(); ++c) {
    row[static_cast<size_t>(offset) + c] = src[c];
  }
}

// Runs steps [i..) of the plan; calls `emit` on every full binding. `emit`
// returns false to abort enumeration (EXISTS short-circuit). Returns false
// if enumeration was aborted.
bool RunSteps(const Plan& plan, size_t i, Row& row, ExecContext& ctx,
              const std::function<bool()>& emit) {
  if (i == plan.steps.size()) return emit();
  const AccessStep& step = plan.steps[i];
  const Layout::Entry* entry = plan.layout.FindAlias(step.alias);
  assert(entry != nullptr);
  const Table& table = *step.table;

  auto try_row = [&](RowId rid) -> bool {
    if (ctx.stats != nullptr) ++ctx.stats->rows_scanned;
    BindRow(table, rid, entry->offset, row);
    for (const SqlExpr* f : step.filters) {
      if (TruthOf(EvalExpr(plan, *f, row, ctx)) != Truth::kTrue) return true;
    }
    return RunSteps(plan, i + 1, row, ctx, emit);
  };

  switch (step.path) {
    case AccessPathKind::kSeqScan: {
      for (RowId rid = 0; rid < table.row_count(); ++rid) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
    case AccessPathKind::kIndexPoint: {
      std::vector<Value> keys;
      const IndexDef* def = nullptr;
      // Recover the index definition to learn key column types.
      for (const IndexDef& d : table.schema().indexes) {
        if (table.FindIndex(d.name) == step.index) {
          def = &d;
          break;
        }
      }
      assert(def != nullptr);
      for (size_t k = 0; k < step.point_keys.size(); ++k) {
        Value v = EvalExpr(plan, *step.point_keys[k], row, ctx);
        ValueType t = table.schema()
                          .columns[static_cast<size_t>(def->column_indexes[k])]
                          .type;
        v = CoerceForColumn(v, t);
        if (v.is_null()) return true;  // NULL key matches nothing
        keys.push_back(std::move(v));
      }
      if (ctx.stats != nullptr) ++ctx.stats->index_probes;
      std::string lo = EncodeKeyPrefixLowerBound(keys);
      std::string hi = EncodeKeyPrefixUpperBound(keys);
      for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
        if (!try_row(it.row())) return false;
      }
      return true;
    }
    case AccessPathKind::kIndexRange: {
      // Bounds are on the first index column.
      const IndexDef* def = nullptr;
      for (const IndexDef& d : table.schema().indexes) {
        if (table.FindIndex(d.name) == step.index) {
          def = &d;
          break;
        }
      }
      assert(def != nullptr);
      ValueType t = table.schema()
                        .columns[static_cast<size_t>(def->column_indexes[0])]
                        .type;
      std::string lo;
      if (step.range_lo != nullptr) {
        Value v = CoerceForColumn(EvalExpr(plan, *step.range_lo, row, ctx), t);
        if (v.is_null()) return true;
        lo = step.range_lo_inclusive ? EncodeKeyPrefixLowerBound({v})
                                     : EncodeKeyPrefixUpperBound({v});
      }
      if (ctx.stats != nullptr) ++ctx.stats->index_probes;
      if (step.range_hi != nullptr) {
        Value v = CoerceForColumn(EvalExpr(plan, *step.range_hi, row, ctx), t);
        if (v.is_null()) return true;
        std::string hi = step.range_hi_inclusive
                             ? EncodeKeyPrefixUpperBound({v})
                             : EncodeKeyPrefixLowerBound({v});
        for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      } else {
        for (auto it = step.index->ScanFrom(lo); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      }
      return true;
    }
    case AccessPathKind::kPrefixProbe: {
      Value v = EvalExpr(plan, *step.probe_value, row, ctx);
      if (v.is_null() || !IsStringLike(v)) return true;
      const std::string& d = v.AsStringLike();
      // Probe each Dewey prefix (ancestors are exactly the prefixes whose
      // length is a multiple of the 3-byte component size).
      for (size_t len = 3; len <= d.size(); len += 3) {
        Value prefix = Value::Bytes(d.substr(0, len));
        if (ctx.stats != nullptr) ++ctx.stats->index_probes;
        std::string lo = EncodeKeyPrefixLowerBound({prefix});
        std::string hi = EncodeKeyPrefixUpperBound({prefix});
        for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      }
      return true;
    }
    case AccessPathKind::kIndexUnion: {
      std::set<RowId> rows;
      for (const AccessStep::UnionProbe& p : step.union_probes) {
        Value v = EvalExpr(plan, *p.key, row, ctx);
        ValueType t =
            table.schema().columns[static_cast<size_t>(p.column)].type;
        v = CoerceForColumn(v, t);
        if (v.is_null()) continue;
        if (ctx.stats != nullptr) ++ctx.stats->index_probes;
        std::string lo = EncodeKeyPrefixLowerBound({v});
        std::string hi = EncodeKeyPrefixUpperBound({v});
        for (auto it = p.index->Scan(lo, hi); it.Valid(); it.Next()) {
          rows.insert(it.row());
        }
      }
      for (RowId rid : rows) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
    case AccessPathKind::kHashProbe: {
      auto& ht = ctx.hash_tables[&step];
      if (ht.empty() && table.row_count() > 0) {
        for (RowId rid = 0; rid < table.row_count(); ++rid) {
          const Value& v = table.row(rid)[static_cast<size_t>(step.hash_column)];
          auto t = v.ToText();
          if (t) ht[*t].push_back(rid);
        }
      }
      Value key = EvalExpr(plan, *step.hash_key, row, ctx);
      auto kt = key.ToText();
      if (!kt) return true;
      if (ctx.stats != nullptr) ++ctx.stats->index_probes;
      auto it = ht.find(*kt);
      if (it == ht.end()) return true;
      for (RowId rid : it->second) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
  }
  return true;
}

bool ExecExists(const Plan& subplan, const Row& outer_row, ExecContext& ctx) {
  Row row = outer_row;
  row.resize(static_cast<size_t>(subplan.layout.total_slots));
  // Filters that involve only outer aliases.
  for (const SqlExpr* f : subplan.post_filters) {
    if (TruthOf(EvalExpr(subplan, *f, row, ctx)) != Truth::kTrue) return false;
  }
  bool found = false;
  RunSteps(subplan, 0, row, ctx, [&]() {
    found = true;
    return false;  // abort on first witness
  });
  return found;
}

}  // namespace

Result<QueryResult> ExecutePlan(const Plan& plan, QueryStats* stats) {
  ExecContext ctx;
  ctx.stats = stats;

  const SelectStmt& stmt = *plan.stmt;
  QueryResult result;
  for (const SelectItem& it : stmt.select) {
    result.column_labels.push_back(
        !it.label.empty() ? it.label : SqlToString(*it.expr));
  }

  Row row(static_cast<size_t>(plan.layout.total_slots));
  // Constant conjuncts.
  for (const SqlExpr* f : plan.post_filters) {
    if (TruthOf(EvalExpr(plan, *f, row, ctx)) != Truth::kTrue) {
      return result;
    }
  }

  struct Emitted {
    Row projected;
    Row sort_key;
  };
  std::vector<Emitted> emitted;

  RunSteps(plan, 0, row, ctx, [&]() {
    Emitted e;
    e.projected.reserve(stmt.select.size());
    for (const SelectItem& it : stmt.select) {
      e.projected.push_back(EvalExpr(plan, *it.expr, row, ctx));
    }
    e.sort_key.reserve(stmt.order_by.size());
    for (const OrderByItem& ob : stmt.order_by) {
      e.sort_key.push_back(EvalExpr(plan, *ob.expr, row, ctx));
    }
    emitted.push_back(std::move(e));
    return true;
  });

  if (!stmt.order_by.empty()) {
    std::stable_sort(emitted.begin(), emitted.end(),
                     [&](const Emitted& a, const Emitted& b) {
                       for (size_t k = 0; k < a.sort_key.size(); ++k) {
                         bool asc = stmt.order_by[k].ascending;
                         if (a.sort_key[k] < b.sort_key[k]) return asc;
                         if (b.sort_key[k] < a.sort_key[k]) return !asc;
                       }
                       return false;
                     });
  }

  if (stmt.distinct) {
    std::set<Row> seen;
    for (Emitted& e : emitted) {
      if (seen.insert(e.projected).second) {
        result.rows.push_back(std::move(e.projected));
      }
    }
  } else {
    for (Emitted& e : emitted) result.rows.push_back(std::move(e.projected));
  }
  if (stats != nullptr) stats->output_rows = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                                  QueryStats* stats) {
  auto plan = PlanSelect(db, stmt, nullptr);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(*plan.value(), stats);
}

Result<QueryResult> ExecuteQuery(const Database& db, const SqlQuery& query,
                                 QueryStats* stats) {
  if (query.selects.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (query.selects.size() == 1) {
    return ExecuteSelect(db, *query.selects[0], stats);
  }
  // UNION with set semantics; rows from all blocks deduplicated, then
  // ordered by the first block's ORDER BY columns (the translators emit the
  // same ORDER BY positionally in every block).
  QueryResult combined;
  std::set<Row> seen;
  std::vector<int> order_cols;
  for (size_t b = 0; b < query.selects.size(); ++b) {
    const SelectStmt& stmt = *query.selects[b];
    QueryStats local;
    auto r = ExecuteSelect(db, stmt, &local);
    if (!r.ok()) return r.status();
    if (stats != nullptr) {
      stats->rows_scanned += local.rows_scanned;
      stats->index_probes += local.index_probes;
      stats->subquery_evals += local.subquery_evals;
    }
    if (b == 0) {
      combined.column_labels = r.value().column_labels;
      // Map ORDER BY expressions to projected column positions.
      for (const OrderByItem& ob : stmt.order_by) {
        for (size_t i = 0; i < stmt.select.size(); ++i) {
          const SqlExpr& se = *stmt.select[i].expr;
          const SqlExpr& oe = *ob.expr;
          if (se.kind == SqlExpr::Kind::kColumn &&
              oe.kind == SqlExpr::Kind::kColumn &&
              se.table_alias == oe.table_alias && se.column == oe.column) {
            order_cols.push_back(static_cast<int>(i));
            break;
          }
        }
      }
    }
    for (Row& row : r.value().rows) {
      if (seen.insert(row).second) {
        combined.rows.push_back(std::move(row));
      }
    }
  }
  if (!order_cols.empty()) {
    std::sort(combined.rows.begin(), combined.rows.end(),
              [&](const Row& a, const Row& b) {
                for (int c : order_cols) {
                  const Value& x = a[static_cast<size_t>(c)];
                  const Value& y = b[static_cast<size_t>(c)];
                  if (x < y) return true;
                  if (y < x) return false;
                }
                return a < b;
              });
  }
  if (stats != nullptr) stats->output_rows = combined.rows.size();
  return combined;
}

}  // namespace xprel::rel
